//! Property-based tests of the workload generators: address-space hygiene,
//! calibration, and workload-table invariants for arbitrary applications and
//! slots.

use noclat_cpu::{Instr, InstrStream};
use noclat_sim::check::{self, pick};
use noclat_sim::rng::SimRng;
use noclat_workloads::{workload, MemClass, SpecApp, SyntheticStream};

#[test]
fn addresses_stay_in_the_slot_space() {
    check::cases(48, |rng| {
        let app = pick(rng, SpecApp::ALL);
        let slot = rng.index(32);
        let seed = rng.next_u64();
        let mut s = SyntheticStream::new(app, slot, &SimRng::new(seed));
        for _ in 0..2_000 {
            if let Instr::Load { addr } | Instr::Store { addr } = s.next_instr() {
                assert_eq!(
                    addr >> 40,
                    slot as u64 + 1,
                    "address {addr:#x} escaped slot {slot}"
                );
            }
        }
    });
}

#[test]
fn counts_are_internally_consistent() {
    check::cases(48, |rng| {
        let app = pick(rng, SpecApp::ALL);
        let seed = rng.next_u64();
        let mut s = SyntheticStream::new(app, 0, &SimRng::new(seed));
        let n = 20_000;
        for _ in 0..n {
            let _ = s.next_instr();
        }
        let c = s.counts();
        assert_eq!(c.instructions, n);
        assert!(c.mem_ops <= c.instructions);
        assert!(c.stores <= c.mem_ops);
        assert!(c.stream_ops <= c.mem_ops);
    });
}

#[test]
fn resident_set_sizes_match_profile() {
    check::cases(48, |rng| {
        let app = pick(rng, SpecApp::ALL);
        let slot = rng.index(32);
        let s = SyntheticStream::new(app, slot, &SimRng::new(1));
        let r = s.resident_lines();
        let p = app.profile();
        assert_eq!(r.l1.len() as u64, p.hot_lines);
        assert_eq!(r.l2.len() as u64, p.warm_lines);
        // Resident lines live in the slot's space too.
        for &a in r.l1.iter().chain(&r.l2) {
            assert_eq!(a >> 40, slot as u64 + 1);
        }
    });
}

#[test]
fn hot_phase_intensity_exceeds_cold() {
    let intensive: Vec<SpecApp> = SpecApp::ALL
        .iter()
        .copied()
        .filter(|a| a.profile().class == MemClass::Intensive)
        .collect();
    check::cases(12, |rng| {
        let app = pick(rng, &intensive);
        let seed = rng.next_u64();
        let mut s = SyntheticStream::new(app, 0, &SimRng::new(seed));
        let mut hot = (0u64, 0u64); // (stream ops, instrs)
        let mut cold = (0u64, 0u64);
        for _ in 0..300_000u64 {
            let before = s.counts().stream_ops;
            let _ = s.next_instr();
            let d = s.counts().stream_ops - before;
            if s.in_hot_phase() {
                hot.0 += d;
                hot.1 += 1;
            } else {
                cold.0 += d;
                cold.1 += 1;
            }
        }
        if hot.1 <= 20_000 || cold.1 <= 20_000 {
            return; // too few samples in one phase for a stable rate estimate
        }
        let hot_rate = hot.0 as f64 / hot.1 as f64;
        let cold_rate = cold.0 as f64 / cold.1 as f64;
        assert!(
            hot_rate > cold_rate * 1.5,
            "hot {hot_rate:.4} not clearly above cold {cold_rate:.4}"
        );
    });
}

#[test]
fn hot_phases_concentrate_stream_jumps_spatially() {
    // During a hot phase, random jumps stay inside a narrow window, so the
    // spread of distinct 4 KB pages touched per window of accesses must be
    // far smaller than in cold phases.
    let mut s = SyntheticStream::new(SpecApp::Lbm, 0, &SimRng::new(3));
    let mut hot_pages = std::collections::HashSet::new();
    let mut cold_pages = std::collections::HashSet::new();
    let mut hot_n = 0u64;
    let mut cold_n = 0u64;
    for _ in 0..600_000 {
        let before = s.counts().stream_ops;
        let instr = s.next_instr();
        if s.counts().stream_ops == before {
            continue;
        }
        if let Instr::Load { addr } | Instr::Store { addr } = instr {
            // Page-hash scatters addresses; measure diversity as distinct
            // physical pages per access.
            if s.in_hot_phase() {
                hot_pages.insert(addr >> 12);
                hot_n += 1;
            } else {
                cold_pages.insert(addr >> 12);
                cold_n += 1;
            }
        }
    }
    assert!(
        hot_n > 1_000 && cold_n > 1_000,
        "need samples in both phases"
    );
    let hot_diversity = hot_pages.len() as f64 / hot_n as f64;
    let cold_diversity = cold_pages.len() as f64 / cold_n as f64;
    assert!(
        hot_diversity < cold_diversity,
        "hot phases must revisit a narrower footprint ({hot_diversity:.3} vs {cold_diversity:.3})"
    );
}

#[test]
fn every_workload_draws_only_from_its_class() {
    for i in 1..=18 {
        let w = workload(i);
        let apps = w.apps();
        assert_eq!(apps.len(), 32);
        match w.kind {
            noclat_workloads::WorkloadKind::MemIntensive => assert!(apps
                .iter()
                .all(|a| a.profile().class == MemClass::Intensive)),
            noclat_workloads::WorkloadKind::MemNonIntensive => assert!(apps
                .iter()
                .all(|a| a.profile().class == MemClass::NonIntensive)),
            noclat_workloads::WorkloadKind::Mixed => {
                let n = apps
                    .iter()
                    .filter(|a| a.profile().class == MemClass::Intensive)
                    .count();
                assert_eq!(n, 16);
            }
        }
    }
}
