//! Synthetic SPEC CPU2006 workloads for the MICRO 2012 end-to-end-latency
//! reproduction.
//!
//! The paper evaluates 18 multiprogrammed mixes of SPEC CPU2006 benchmarks
//! (Table 2) on 32 cores. This crate substitutes SPEC traces with synthetic
//! per-application profiles ([`SpecApp::profile`]) driving address-stream
//! generators ([`SyntheticStream`]) and reproduces Table 2 exactly
//! ([`workload`]).
//!
//! # Example
//!
//! ```
//! use noclat_workloads::{workload, SpecApp, SyntheticStream, WorkloadKind};
//! use noclat_sim::rng::SimRng;
//! use noclat_cpu::InstrStream;
//!
//! let w = workload(2);
//! assert_eq!(w.kind, WorkloadKind::Mixed);
//! assert_eq!(w.apps().len(), 32);
//!
//! let mut stream = SyntheticStream::new(SpecApp::Milc, 0, &SimRng::new(1));
//! let _instr = stream.next_instr();
//! ```

pub mod generator;
pub mod mixes;
pub mod spec;

pub use generator::SyntheticStream;
pub use mixes::{all_workloads, indices_of, workload, Workload, WorkloadKind};
pub use spec::{AppProfile, MemClass, SpecApp, TrafficRate};
