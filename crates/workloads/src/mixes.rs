//! The 18 multiprogrammed workloads of the paper's Table 2.
//!
//! Workloads 1–6 are *mixed* (half memory-intensive, half non-intensive),
//! 7–12 are *memory-intensive* only, and 13–18 are *memory-non-intensive*
//! only. Each workload holds exactly 32 application instances (one per core
//! of the 4×8 system); the 16-core experiments of Figure 15 use
//! [`Workload::first_half`].

use crate::spec::{MemClass, SpecApp};
use SpecApp::*;

/// Workload category (the paper's three groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Half intensive, half non-intensive (workloads 1–6).
    Mixed,
    /// All memory-intensive (workloads 7–12).
    MemIntensive,
    /// All memory-non-intensive (workloads 13–18).
    MemNonIntensive,
}

/// One multiprogrammed workload from Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// 1-based index, matching the paper's "workload-N".
    pub index: usize,
    /// Category.
    pub kind: WorkloadKind,
    /// `(application, instance count)` pairs, in Table-2 order.
    pub entries: Vec<(SpecApp, usize)>,
}

impl Workload {
    /// The paper's name for this workload (`workload-N`).
    #[must_use]
    pub fn name(&self) -> String {
        format!("workload-{}", self.index)
    }

    /// Total application instances (always 32).
    #[must_use]
    pub fn num_apps(&self) -> usize {
        self.entries.iter().map(|&(_, n)| n).sum()
    }

    /// The 32 per-core application assignments, expanding instance counts in
    /// Table-2 order.
    #[must_use]
    pub fn apps(&self) -> Vec<SpecApp> {
        self.entries
            .iter()
            .flat_map(|&(app, n)| std::iter::repeat_n(app, n))
            .collect()
    }

    /// Per-core assignments for an `n`-core system, cycling the 32-app
    /// Table-2 mix round-robin when `n` exceeds it (the hundreds-cores
    /// topology configs: 256 cores at 16×16, 1024 at 32×32). For `n <= 32`
    /// this is a plain prefix of [`Workload::apps`].
    #[must_use]
    pub fn apps_for(&self, n: usize) -> Vec<SpecApp> {
        let base = self.apps();
        base.iter().copied().cycle().take(n).collect()
    }

    /// The 16-application subset used on the 4×4 system (Figure 15): the
    /// first half of the applications — for mixed workloads, the first half
    /// of the intensive and the first half of the non-intensive apps.
    #[must_use]
    pub fn first_half(&self) -> Vec<SpecApp> {
        let apps = self.apps();
        match self.kind {
            WorkloadKind::Mixed => {
                let intensive: Vec<SpecApp> = apps
                    .iter()
                    .copied()
                    .filter(|a| a.profile().class == MemClass::Intensive)
                    .collect();
                let non: Vec<SpecApp> = apps
                    .iter()
                    .copied()
                    .filter(|a| a.profile().class == MemClass::NonIntensive)
                    .collect();
                let mut half: Vec<SpecApp> = intensive[..intensive.len() / 2].to_vec();
                half.extend_from_slice(&non[..non.len() / 2]);
                half
            }
            _ => apps[..apps.len() / 2].to_vec(),
        }
    }
}

/// Returns Table 2's workload `index` (1-based, `1..=18`).
///
/// # Panics
///
/// Panics if `index` is not in `1..=18`.
#[must_use]
pub fn workload(index: usize) -> Workload {
    let (kind, entries): (WorkloadKind, Vec<(SpecApp, usize)>) = match index {
        1 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 3),
                (Lbm, 2),
                (Xalancbmk, 1),
                (Milc, 2),
                (Libquantum, 1),
                (Leslie3d, 5),
                (GemsFDTD, 1),
                (Soplex, 1),
                (Omnetpp, 2),
                (Perlbench, 1),
                (Astar, 1),
                (Wrf, 1),
                (Tonto, 1),
                (Sjeng, 1),
                (Namd, 1),
                (Hmmer, 1),
                (H264ref, 1),
                (Gamess, 1),
                (Calculix, 1),
                (Bzip2, 3),
                (Bwaves, 1),
            ],
        ),
        2 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 4),
                (Lbm, 2),
                (Xalancbmk, 2),
                (Milc, 3),
                (Libquantum, 2),
                (GemsFDTD, 1),
                (Soplex, 2),
                (Perlbench, 2),
                (Astar, 3),
                (Wrf, 3),
                (Povray, 1),
                (Namd, 3),
                (Hmmer, 1),
                (H264ref, 1),
                (Gcc, 1),
                (Dealii, 1),
            ],
        ),
        3 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 4),
                (Lbm, 1),
                (Milc, 2),
                (Libquantum, 5),
                (Leslie3d, 2),
                (Sphinx3, 1),
                (GemsFDTD, 1),
                (Omnetpp, 1),
                (Astar, 2),
                (Zeusmp, 2),
                (Wrf, 2),
                (Tonto, 1),
                (Sjeng, 1),
                (H264ref, 1),
                (Gobmk, 1),
                (Gcc, 1),
                (Gamess, 1),
                (Dealii, 1),
                (Calculix, 1),
                (Bwaves, 1),
            ],
        ),
        4 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 1),
                (Lbm, 2),
                (Xalancbmk, 3),
                (Milc, 2),
                (Leslie3d, 1),
                (Sphinx3, 3),
                (GemsFDTD, 1),
                (Soplex, 3),
                (Omnetpp, 1),
                (Astar, 2),
                (Zeusmp, 1),
                (Wrf, 1),
                (Tonto, 1),
                (Sjeng, 1),
                (H264ref, 2),
                (Gcc, 1),
                (Gamess, 3),
                (Bzip2, 2),
                (Bwaves, 1),
            ],
        ),
        5 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 4),
                (Lbm, 2),
                (Xalancbmk, 3),
                (Milc, 1),
                (Leslie3d, 1),
                (Sphinx3, 1),
                (Soplex, 4),
                (Astar, 2),
                (Zeusmp, 2),
                (Wrf, 1),
                (Sjeng, 1),
                (Povray, 2),
                (Namd, 1),
                (Hmmer, 1),
                (H264ref, 2),
                (Gromacs, 1),
                (Gcc, 1),
                (Calculix, 1),
                (Bwaves, 1),
            ],
        ),
        6 => (
            WorkloadKind::Mixed,
            vec![
                (Mcf, 2),
                (Xalancbmk, 2),
                (Milc, 1),
                (Libquantum, 1),
                (Leslie3d, 2),
                (Sphinx3, 3),
                (GemsFDTD, 3),
                (Soplex, 2),
                (Omnetpp, 1),
                (Perlbench, 2),
                (Wrf, 1),
                (Tonto, 2),
                (Hmmer, 1),
                (Gromacs, 1),
                (Gobmk, 1),
                (Gcc, 1),
                (Gamess, 1),
                (Dealii, 2),
                (Bzip2, 3),
            ],
        ),
        7 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 1),
                (Lbm, 5),
                (Xalancbmk, 5),
                (Milc, 1),
                (Libquantum, 5),
                (Leslie3d, 4),
                (Sphinx3, 3),
                (GemsFDTD, 6),
                (Soplex, 2),
            ],
        ),
        8 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 3),
                (Lbm, 2),
                (Xalancbmk, 4),
                (Milc, 3),
                (Libquantum, 8),
                (Leslie3d, 3),
                (Sphinx3, 4),
                (GemsFDTD, 5),
            ],
        ),
        9 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 4),
                (Lbm, 5),
                (Xalancbmk, 4),
                (Milc, 3),
                (Libquantum, 4),
                (Leslie3d, 2),
                (Sphinx3, 6),
                (GemsFDTD, 2),
                (Soplex, 2),
            ],
        ),
        10 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 4),
                (Lbm, 3),
                (Xalancbmk, 3),
                (Milc, 2),
                (Libquantum, 4),
                (Leslie3d, 3),
                (Sphinx3, 4),
                (GemsFDTD, 8),
                (Soplex, 1),
            ],
        ),
        11 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 3),
                (Lbm, 6),
                (Xalancbmk, 2),
                (Milc, 5),
                (Libquantum, 1),
                (Leslie3d, 2),
                (Sphinx3, 4),
                (GemsFDTD, 4),
                (Soplex, 5),
            ],
        ),
        12 => (
            WorkloadKind::MemIntensive,
            vec![
                (Mcf, 2),
                (Lbm, 3),
                (Xalancbmk, 3),
                (Milc, 6),
                (Libquantum, 5),
                (Leslie3d, 4),
                (Sphinx3, 4),
                (GemsFDTD, 5),
            ],
        ),
        13 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Perlbench, 1),
                (Astar, 3),
                (Zeusmp, 2),
                (Wrf, 2),
                (Sjeng, 3),
                (Povray, 2),
                (Hmmer, 1),
                (Gromacs, 2),
                (Gcc, 1),
                (Gamess, 2),
                (Dealii, 2),
                (Calculix, 5),
                (Bzip2, 2),
                (Bwaves, 4),
            ],
        ),
        14 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Omnetpp, 3),
                (Perlbench, 1),
                (Zeusmp, 2),
                (Tonto, 1),
                (Sjeng, 1),
                (Povray, 2),
                (Namd, 2),
                (Hmmer, 4),
                (H264ref, 3),
                (Gromacs, 2),
                (Gobmk, 3),
                (Gamess, 3),
                (Bzip2, 1),
                (Bwaves, 4),
            ],
        ),
        15 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Omnetpp, 2),
                (Perlbench, 2),
                (Astar, 1),
                (Zeusmp, 3),
                (Sjeng, 1),
                (Povray, 1),
                (Namd, 1),
                (Hmmer, 2),
                (H264ref, 1),
                (Gromacs, 2),
                (Gobmk, 3),
                (Gcc, 2),
                (Gamess, 1),
                (Dealii, 4),
                (Calculix, 2),
                (Bzip2, 2),
                (Bwaves, 2),
            ],
        ),
        16 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Omnetpp, 3),
                (Perlbench, 3),
                (Astar, 2),
                (Zeusmp, 1),
                (Wrf, 2),
                (Sjeng, 3),
                (Povray, 3),
                (Namd, 1),
                (Hmmer, 2),
                (H264ref, 1),
                (Gobmk, 1),
                (Gcc, 4),
                (Gamess, 2),
                (Dealii, 2),
                (Bzip2, 1),
                (Bwaves, 1),
            ],
        ),
        17 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Omnetpp, 2),
                (Perlbench, 2),
                (Astar, 1),
                (Zeusmp, 2),
                (Wrf, 1),
                (Tonto, 2),
                (Sjeng, 1),
                (Povray, 2),
                (Namd, 1),
                (Hmmer, 4),
                (H264ref, 1),
                (Gobmk, 2),
                (Gcc, 2),
                (Gamess, 1),
                (Dealii, 3),
                (Calculix, 2),
                (Bzip2, 3),
            ],
        ),
        18 => (
            WorkloadKind::MemNonIntensive,
            vec![
                (Omnetpp, 2),
                (Perlbench, 4),
                (Zeusmp, 2),
                (Wrf, 2),
                (Tonto, 2),
                (Sjeng, 2),
                (Namd, 1),
                (Hmmer, 2),
                (H264ref, 1),
                (Gromacs, 2),
                (Gobmk, 2),
                (Gcc, 4),
                (Gamess, 2),
                (Calculix, 2),
                (Bzip2, 1),
                (Bwaves, 1),
            ],
        ),
        _ => panic!("workload index {index} out of range 1..=18"),
    };
    Workload {
        index,
        kind,
        entries,
    }
}

/// All 18 workloads, in order.
#[must_use]
pub fn all_workloads() -> Vec<Workload> {
    (1..=18).map(workload).collect()
}

/// The workload indices of one category.
#[must_use]
pub fn indices_of(kind: WorkloadKind) -> std::ops::RangeInclusive<usize> {
    match kind {
        WorkloadKind::Mixed => 1..=6,
        WorkloadKind::MemIntensive => 7..=12,
        WorkloadKind::MemNonIntensive => 13..=18,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_32_apps() {
        for w in all_workloads() {
            assert_eq!(w.num_apps(), 32, "{}", w.name());
            assert_eq!(w.apps().len(), 32);
        }
    }

    #[test]
    fn categories_match_table2() {
        for i in 1..=6 {
            assert_eq!(workload(i).kind, WorkloadKind::Mixed);
        }
        for i in 7..=12 {
            assert_eq!(workload(i).kind, WorkloadKind::MemIntensive);
        }
        for i in 13..=18 {
            assert_eq!(workload(i).kind, WorkloadKind::MemNonIntensive);
        }
    }

    #[test]
    fn mixed_workloads_are_half_and_half() {
        for i in 1..=6 {
            let w = workload(i);
            let intensive = w
                .apps()
                .iter()
                .filter(|a| a.profile().class == MemClass::Intensive)
                .count();
            assert_eq!(intensive, 16, "{}: intensive count {intensive}", w.name());
        }
    }

    #[test]
    fn intensity_pure_workloads_are_pure() {
        for i in 7..=12 {
            let w = workload(i);
            assert!(w
                .apps()
                .iter()
                .all(|a| a.profile().class == MemClass::Intensive));
        }
        for i in 13..=18 {
            let w = workload(i);
            assert!(w
                .apps()
                .iter()
                .all(|a| a.profile().class == MemClass::NonIntensive));
        }
    }

    #[test]
    fn workload2_contains_milc() {
        // Figures 4, 5 and 9 study milc within workload-2.
        assert!(workload(2).apps().contains(&SpecApp::Milc));
    }

    #[test]
    fn workload1_contains_lbm() {
        // Figure 12c studies lbm within workload-1.
        assert!(workload(1).apps().contains(&SpecApp::Lbm));
    }

    #[test]
    fn first_half_is_16_apps_and_balanced_for_mixed() {
        for w in all_workloads() {
            let half = w.first_half();
            assert_eq!(half.len(), 16, "{}", w.name());
            if w.kind == WorkloadKind::Mixed {
                let intensive = half
                    .iter()
                    .filter(|a| a.profile().class == MemClass::Intensive)
                    .count();
                assert_eq!(intensive, 8, "{}", w.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = workload(0);
    }

    #[test]
    fn apps_for_cycles_table2_round_robin() {
        let w = workload(2);
        let base = w.apps();
        assert_eq!(w.apps_for(16), base[..16].to_vec());
        assert_eq!(w.apps_for(32), base);
        let big = w.apps_for(256);
        assert_eq!(big.len(), 256);
        assert_eq!(&big[..32], &base[..]);
        assert_eq!(&big[224..], &base[..]);
        assert_eq!(big[32], base[0]);
    }
}
