//! Synthetic profiles for the SPEC CPU2006 applications used in the paper's
//! Table 2.
//!
//! We cannot run SPEC binaries, so each benchmark is modeled by a profile
//! that drives a synthetic instruction/address stream (see
//! [`crate::generator::SyntheticStream`]). The profiles are calibrated from
//! published SPEC CPU2006 memory characterizations (approximate L2 MPKI,
//! row-buffer locality and access-pattern class) and, most importantly,
//! preserve the paper's grouping into memory-intensive and non-intensive
//! applications (Section 4.1) — that grouping, not the third decimal of any
//! MPKI value, is what the evaluation depends on.

/// Memory-intensity class (Section 4.1's workload grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemClass {
    /// High MPKI: stresses the NoC and memory controllers.
    Intensive,
    /// Low MPKI: mostly L1/L2-resident.
    NonIntensive,
}

/// Tunable behavior of one synthetic application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Benchmark name (SPEC CPU2006).
    pub name: &'static str,
    /// Intensity class.
    pub class: MemClass,
    /// Approximate target L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Fraction of instructions that are loads/stores.
    pub mem_fraction: f64,
    /// Fraction of memory operations that are stores.
    pub write_fraction: f64,
    /// Probability that a streaming (off-chip) access continues
    /// sequentially within the current DRAM row rather than jumping.
    pub row_locality: f64,
    /// Mean length of off-chip access bursts (memory-level parallelism).
    pub burst_mean: f64,
    /// Lines in the L1-resident hot set.
    pub hot_lines: u64,
    /// Lines in the L2-resident warm region (misses L1, hits L2).
    pub warm_lines: u64,
    /// Lines in the streaming footprint (misses L2).
    pub footprint_lines: u64,
    /// Fraction of memory operations that target the warm region.
    pub warm_fraction: f64,
    /// Off-chip intensity multiplier during hot phases (SPEC applications
    /// are strongly phased; hot phases create the transient congestion and
    /// latency tails of Figures 5–7).
    pub phase_boost: f64,
    /// Long-run fraction of instructions spent in hot phases.
    pub phase_hot_frac: f64,
    /// During a hot phase, random stream jumps stay within a window of this
    /// many lines (spatial concentration → transient bank pressure,
    /// Motivation 2).
    pub hot_window_lines: u64,
}

/// Open-loop traffic descriptor derived from a profile: the per-instruction
/// off-chip demand an application places on the memory system, independent
/// of how fast the system lets it run. This is the injection-rate input of
/// the analytic latency model (`noclat-analytic`); the cycle simulator
/// never reads it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficRate {
    /// Expected off-chip (L2-miss) accesses per committed instruction,
    /// phase-weighted.
    pub offchip_per_instr: f64,
    /// Memory-level parallelism: off-chip accesses in flight per stall
    /// (mean burst length, at least 1).
    pub mlp: f64,
    /// Fraction of off-chip traffic that is write-back (data-carrying
    /// request packets rather than single-flit read requests).
    pub write_fraction: f64,
}

impl AppProfile {
    /// The open-loop traffic descriptor for this profile.
    ///
    /// `l2_mpki` is the long-run per-kilo-instruction miss target; hot
    /// phases (`phase_boost` over `phase_hot_frac` of instructions)
    /// redistribute those misses in time but the generator holds the
    /// long-run mean, so no boost term appears here. Burstiness shows up
    /// instead as `mlp` (how many of those misses overlap) and in the
    /// analytic model's batch-arrival correction.
    #[must_use]
    pub fn traffic_rate(&self) -> TrafficRate {
        TrafficRate {
            offchip_per_instr: self.l2_mpki / 1000.0,
            mlp: self.burst_mean.max(1.0),
            write_fraction: self.write_fraction,
        }
    }
}

macro_rules! profiles {
    ($(($variant:ident, $name:literal, $class:ident, $mpki:literal, $memf:literal,
        $wrf:literal, $rowloc:literal, $burst:literal, $warmf:literal, $boost:literal)),+ $(,)?) => {
        /// A SPEC CPU2006 benchmark from the paper's Table 2.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(non_camel_case_types)]
        pub enum SpecApp {
            $(
                #[doc = concat!("SPEC CPU2006 `", $name, "`." )]
                $variant,
            )+
        }

        impl SpecApp {
            /// Every modeled benchmark.
            pub const ALL: &'static [SpecApp] = &[$(SpecApp::$variant),+];

            /// The benchmark's synthetic profile.
            #[must_use]
            pub fn profile(self) -> AppProfile {
                match self {
                    $(
                        SpecApp::$variant => AppProfile {
                            name: $name,
                            class: MemClass::$class,
                            l2_mpki: $mpki,
                            mem_fraction: $memf,
                            write_fraction: $wrf,
                            row_locality: $rowloc,
                            burst_mean: $burst,
                            hot_lines: 192,
                            warm_lines: 1024,
                            footprint_lines: 1 << 22,
                            warm_fraction: $warmf,
                            phase_boost: $boost,
                            phase_hot_frac: 0.2,
                            hot_window_lines: 2048,
                        },
                    )+
                }
            }

            /// The benchmark's name.
            #[must_use]
            pub fn name(self) -> &'static str {
                self.profile().name
            }

            /// Looks a benchmark up by name.
            #[must_use]
            pub fn by_name(name: &str) -> Option<SpecApp> {
                Self::ALL.iter().copied().find(|a| a.name() == name)
            }
        }
    };
}

profiles! {
    // (variant, name, class, L2 MPKI, mem frac, write frac, row locality,
    //  burst mean, warm fraction)
    //
    // MPKI values are scaled for this system's 16 MB shared L2 (published
    // per-benchmark characterizations assume 1–2 MB LLCs and run ~2.5×
    // higher); the *relative ordering* and the intensive/non-intensive split
    // follow the paper's Table-2 grouping.
    (Mcf,        "mcf",        Intensive,    33.0, 0.38, 0.25, 0.30, 6.0, 0.10, 3.0),
    (Lbm,        "lbm",        Intensive,    30.0, 0.34, 0.45, 0.90, 5.0, 0.06, 4.0),
    (Libquantum, "libquantum", Intensive,    24.0, 0.30, 0.10, 0.95, 4.0, 0.04, 4.0),
    (Milc,       "milc",       Intensive,    13.0, 0.36, 0.35, 0.85, 3.0, 0.08, 3.0),
    (Sphinx3,    "sphinx3",    Intensive,    12.5, 0.33, 0.15, 0.70, 2.5, 0.10, 2.5),
    (GemsFDTD,   "GemsFDTD",   Intensive,    10.0, 0.35, 0.40, 0.85, 3.0, 0.08, 3.5),
    (Soplex,     "soplex",     Intensive,     9.0, 0.37, 0.20, 0.60, 2.5, 0.10, 2.5),
    (Leslie3d,   "leslie3d",   Intensive,     8.0, 0.36, 0.35, 0.90, 3.0, 0.08, 3.5),
    (Xalancbmk,  "xalancbmk",  Intensive,     6.5, 0.37, 0.20, 0.45, 2.0, 0.12, 2.0),
    (Omnetpp,    "omnetpp",    NonIntensive,  2.2, 0.36, 0.30, 0.40, 1.5, 0.15, 2.0),
    (Astar,      "astar",      NonIntensive,  1.6, 0.38, 0.25, 0.40, 1.5, 0.15, 2.0),
    (Zeusmp,     "zeusmp",     NonIntensive,  1.4, 0.34, 0.35, 0.80, 2.0, 0.10, 2.0),
    (Wrf,        "wrf",        NonIntensive,  1.0, 0.33, 0.30, 0.80, 2.0, 0.10, 1.5),
    (Bwaves,     "bwaves",     NonIntensive,  1.0, 0.35, 0.30, 0.90, 2.5, 0.08, 1.5),
    (Gcc,        "gcc",        NonIntensive,  0.70, 0.35, 0.30, 0.50, 1.5, 0.15, 1.5),
    (Bzip2,      "bzip2",      NonIntensive,  0.60, 0.34, 0.30, 0.60, 1.5, 0.15, 1.5),
    (Dealii,     "dealII",     NonIntensive,  0.50, 0.36, 0.25, 0.55, 1.5, 0.12, 1.5),
    (Hmmer,      "hmmer",      NonIntensive,  0.40, 0.40, 0.30, 0.70, 1.2, 0.12, 1.5),
    (Gobmk,      "gobmk",      NonIntensive,  0.35, 0.32, 0.25, 0.50, 1.2, 0.12, 1.5),
    (Sjeng,      "sjeng",      NonIntensive,  0.35, 0.30, 0.25, 0.45, 1.2, 0.12, 1.5),
    (H264ref,    "h264ref",    NonIntensive,  0.25, 0.37, 0.30, 0.70, 1.2, 0.12, 1.5),
    (Perlbench,  "perlbench",  NonIntensive,  0.25, 0.38, 0.35, 0.50, 1.2, 0.15, 1.5),
    (Gromacs,    "gromacs",    NonIntensive,  0.25, 0.34, 0.30, 0.70, 1.2, 0.10, 1.5),
    (Tonto,      "tonto",      NonIntensive,  0.20, 0.35, 0.30, 0.60, 1.2, 0.10, 1.5),
    (Calculix,   "calculix",   NonIntensive,  0.16, 0.33, 0.25, 0.75, 1.2, 0.08, 1.5),
    (Namd,       "namd",       NonIntensive,  0.16, 0.35, 0.25, 0.70, 1.2, 0.08, 1.5),
    (Gamess,     "gamess",     NonIntensive,  0.10, 0.36, 0.30, 0.60, 1.1, 0.08, 1.5),
    (Povray,     "povray",     NonIntensive,  0.10, 0.35, 0.30, 0.50, 1.1, 0.08, 1.5),
}

impl std::fmt::Display for SpecApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_28_table2_apps_present() {
        assert_eq!(SpecApp::ALL.len(), 28);
    }

    #[test]
    fn classes_match_paper_grouping() {
        // Table 2's memory-intensive workloads (7–12) draw only from these.
        for app in [
            SpecApp::Mcf,
            SpecApp::Lbm,
            SpecApp::Xalancbmk,
            SpecApp::Milc,
            SpecApp::Libquantum,
            SpecApp::Leslie3d,
            SpecApp::Sphinx3,
            SpecApp::GemsFDTD,
            SpecApp::Soplex,
        ] {
            assert_eq!(app.profile().class, MemClass::Intensive, "{app}");
        }
        assert_eq!(SpecApp::Omnetpp.profile().class, MemClass::NonIntensive);
        assert_eq!(SpecApp::Bwaves.profile().class, MemClass::NonIntensive);
    }

    #[test]
    fn intensive_apps_have_higher_mpki() {
        let min_intensive = SpecApp::ALL
            .iter()
            .filter(|a| a.profile().class == MemClass::Intensive)
            .map(|a| a.profile().l2_mpki)
            .fold(f64::INFINITY, f64::min);
        let max_non = SpecApp::ALL
            .iter()
            .filter(|a| a.profile().class == MemClass::NonIntensive)
            .map(|a| a.profile().l2_mpki)
            .fold(0.0, f64::max);
        assert!(min_intensive > max_non);
    }

    #[test]
    fn profiles_are_sane() {
        for app in SpecApp::ALL {
            let p = app.profile();
            assert!((0.0..=1.0).contains(&p.mem_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.write_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.row_locality), "{app}");
            assert!((0.0..=1.0).contains(&p.warm_fraction), "{app}");
            assert!(p.burst_mean >= 1.0, "{app}");
            assert!(p.l2_mpki > 0.0 && p.l2_mpki < 100.0, "{app}");
            // The miss probability per memory op must be a probability.
            assert!(p.l2_mpki / 1000.0 / p.mem_fraction < 1.0, "{app}");
            assert!(p.hot_lines > 0 && p.warm_lines > p.hot_lines);
            assert!(p.footprint_lines > p.warm_lines);
        }
    }

    #[test]
    fn traffic_rates_are_sane_and_ordered_by_class() {
        for app in SpecApp::ALL {
            let p = app.profile();
            let r = p.traffic_rate();
            assert!(
                r.offchip_per_instr > 0.0 && r.offchip_per_instr < 0.1,
                "{app}"
            );
            assert!(r.mlp >= 1.0, "{app}");
            assert_eq!(r.write_fraction, p.write_fraction, "{app}");
        }
        // Demand ordering follows the Table-2 intensity split.
        let min_intensive = SpecApp::ALL
            .iter()
            .filter(|a| a.profile().class == MemClass::Intensive)
            .map(|a| a.profile().traffic_rate().offchip_per_instr)
            .fold(f64::INFINITY, f64::min);
        let max_non = SpecApp::ALL
            .iter()
            .filter(|a| a.profile().class == MemClass::NonIntensive)
            .map(|a| a.profile().traffic_rate().offchip_per_instr)
            .fold(0.0, f64::max);
        assert!(min_intensive > max_non);
    }

    #[test]
    fn by_name_roundtrips() {
        for app in SpecApp::ALL {
            assert_eq!(SpecApp::by_name(app.name()), Some(*app));
        }
        assert_eq!(SpecApp::by_name("notabenchmark"), None);
    }
}
