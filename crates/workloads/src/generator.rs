//! Synthetic instruction/address stream generation.
//!
//! Each application owns a disjoint address space (multiprogrammed
//! workloads share nothing, as in the paper) containing three regions:
//!
//! * a **hot** set that stays L1-resident,
//! * a **warm** region that misses L1 but fits the application's share of
//!   the shared L2,
//! * a **streaming** footprint far larger than the L2, whose accesses miss
//!   on-chip and go to memory.
//!
//! Off-chip accesses come in bursts (memory-level parallelism) and walk the
//! footprint sequentially with probability `row_locality` (row-buffer hits,
//! even MC load) or jump randomly (row misses, transient bank hot-spots) —
//! reproducing both motivations of Section 2.4.
//!
//! Virtual region offsets are translated to "physical" addresses through a
//! per-application page hash, emulating OS physical page allocation. Without
//! this, the power-of-two bases of the per-application spaces would alias
//! every application's hot/warm pages onto the same handful of cache sets
//! and DRAM banks — a pathology real systems avoid precisely because the OS
//! scatters physical pages.

use noclat_cpu::{Instr, InstrStream, ResidentSet};
use noclat_sim::rng::{splitmix64, SimRng};

use crate::spec::{AppProfile, SpecApp};

/// Byte offset separating per-application address spaces.
const APP_SPACE_SHIFT: u32 = 40;
/// Line offset of the warm region inside an app's virtual space.
const WARM_BASE_LINE: u64 = 1 << 20;
/// Line offset of the streaming footprint inside an app's virtual space.
const STREAM_BASE_LINE: u64 = 1 << 24;
/// Cache line size used for address generation (Table 1).
const LINE_BYTES: u64 = 64;
/// Lines per 4 KB OS page.
const LINES_PER_PAGE: u64 = 64;
/// Physical pages per application space (4 M pages = 16 GB; sparse).
const PHYS_PAGE_MASK: u64 = (1 << 22) - 1;
/// Cap on burst lengths.
const MAX_BURST: u32 = 16;

/// Which region a generated memory access targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// L1-resident hot set.
    Hot,
    /// L2-resident warm region.
    Warm,
    /// Off-chip streaming footprint.
    Stream,
}

/// Running counts of what the stream has produced (for calibration tests
/// and workload characterization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounts {
    /// Instructions generated.
    pub instructions: u64,
    /// Memory operations generated.
    pub mem_ops: u64,
    /// Stores among the memory operations.
    pub stores: u64,
    /// Memory operations that targeted the streaming (off-chip) region.
    pub stream_ops: u64,
}

/// An endless synthetic instruction stream for one application instance.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    profile: AppProfile,
    rng: SimRng,
    base: u64,
    page_seed: u64,
    cursor: u64,
    burst_left: u32,
    /// Probability a memory op *starts* an off-chip burst in a cold phase
    /// (scaled so the long-run rate matches the profile MPKI).
    burst_start_prob: f64,
    /// Currently in a hot phase.
    phase_hot: bool,
    /// Instructions remaining in the current phase.
    phase_left: u64,
    /// Base line (within the footprint) of the current hot window.
    hot_window_base: u64,
    counts: StreamCounts,
    last_region: Region,
}

/// Mean hot-phase length, in instructions.
const HOT_PHASE_MEAN: u64 = 8_000;

impl SyntheticStream {
    /// Creates the stream for `app` running in core slot `slot`, seeded from
    /// `rng` (split per slot, so streams are independent and reproducible).
    #[must_use]
    pub fn new(app: SpecApp, slot: usize, rng: &SimRng) -> Self {
        let profile = app.profile();
        let p_offchip = (profile.l2_mpki / 1000.0 / profile.mem_fraction).min(0.95);
        let mut rng = rng.split(0x57_ea_00 + slot as u64);
        // Start each stream at a random footprint position so co-running
        // applications do not gang up on the same DRAM banks at cold start.
        let cursor = rng.below(profile.footprint_lines);
        // Scale the cold-phase rate so that the long-run average over hot
        // (boosted) and cold phases still meets the MPKI target.
        let f = profile.phase_hot_frac.clamp(0.0, 1.0);
        let long_run_scale = (1.0 - f) + profile.phase_boost.max(1.0) * f;
        let hot_window_base = rng.below(profile.footprint_lines);
        let phase_left = 1 + rng.below(2 * HOT_PHASE_MEAN);
        SyntheticStream {
            profile,
            base: (slot as u64 + 1) << APP_SPACE_SHIFT,
            page_seed: splitmix64(page_seed_salt(slot)),
            rng,
            cursor,
            burst_left: 0,
            burst_start_prob: p_offchip / profile.burst_mean.max(1.0) / long_run_scale,
            phase_hot: false,
            phase_left,
            hot_window_base,
            counts: StreamCounts::default(),
            last_region: Region::Hot,
        }
    }

    /// Advances the two-state phase machine by one instruction.
    fn tick_phase(&mut self) {
        self.phase_left = self.phase_left.saturating_sub(1);
        if self.phase_left > 0 {
            return;
        }
        self.phase_hot = !self.phase_hot;
        let f = self.profile.phase_hot_frac.clamp(0.01, 0.99);
        let mean = if self.phase_hot {
            HOT_PHASE_MEAN
        } else {
            (HOT_PHASE_MEAN as f64 * (1.0 - f) / f) as u64
        };
        self.phase_left = 1 + self.rng.below(2 * mean.max(1));
        if self.phase_hot {
            // Each hot phase hammers a fresh, narrow slice of the footprint.
            self.hot_window_base = self.rng.below(
                self.profile.footprint_lines
                    - self
                        .profile
                        .hot_window_lines
                        .min(self.profile.footprint_lines),
            );
            self.cursor = self.hot_window_base;
        }
    }

    /// Whether the stream is currently in a hot (high-intensity) phase.
    #[must_use]
    pub fn in_hot_phase(&self) -> bool {
        self.phase_hot
    }

    /// The profile driving this stream.
    #[must_use]
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Base address of this application's space.
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Generation counters so far.
    #[must_use]
    pub fn counts(&self) -> StreamCounts {
        self.counts
    }

    /// Region of the most recent memory operation.
    #[must_use]
    pub fn last_region(&self) -> Region {
        self.last_region
    }

    /// Virtual→physical translation: hashes the 4 KB page number with the
    /// application's page seed (emulating OS physical allocation), keeping
    /// line position within the page. Consecutive lines of one page stay
    /// consecutive physically, so spatial streaming still earns row-buffer
    /// hits.
    fn translate(&self, line_offset: u64) -> u64 {
        let page = line_offset / LINES_PER_PAGE;
        let in_page = line_offset % LINES_PER_PAGE;
        let phys_page = splitmix64(page ^ self.page_seed) & PHYS_PAGE_MASK;
        self.base + (phys_page * LINES_PER_PAGE + in_page) * LINE_BYTES
    }

    fn hot_addr(&mut self) -> u64 {
        let line = self.rng.below(self.profile.hot_lines);
        self.translate(line)
    }

    fn warm_addr(&mut self) -> u64 {
        let line = WARM_BASE_LINE + self.rng.below(self.profile.warm_lines);
        self.translate(line)
    }

    fn stream_addr(&mut self) -> u64 {
        let line = STREAM_BASE_LINE + self.cursor;
        // Advance: sequential with probability `row_locality` (stays in the
        // current DRAM row and keeps the MC load even), random jump
        // otherwise (row miss, new bank). Hot-phase jumps stay within the
        // phase's narrow window, concentrating pressure on a few banks.
        if self.rng.chance(self.profile.row_locality) {
            self.cursor = (self.cursor + 1) % self.profile.footprint_lines;
        } else if self.phase_hot {
            let window = self
                .profile
                .hot_window_lines
                .min(self.profile.footprint_lines);
            self.cursor = self.hot_window_base + self.rng.below(window.max(1));
            self.cursor %= self.profile.footprint_lines;
        } else {
            self.cursor = self.rng.below(self.profile.footprint_lines);
        }
        self.translate(line)
    }

    /// Burst-start probability for the current phase.
    fn effective_burst_start(&self) -> f64 {
        if self.phase_hot {
            (self.burst_start_prob * self.profile.phase_boost.max(1.0)).min(0.95)
        } else {
            self.burst_start_prob
        }
    }

    fn mem_instr(&mut self) -> Instr {
        let addr = if self.burst_left > 0 {
            self.burst_left -= 1;
            self.last_region = Region::Stream;
            self.stream_addr()
        } else if self.rng.chance(self.effective_burst_start()) {
            let extra = self
                .rng
                .geometric(1.0 / self.profile.burst_mean.max(1.0), MAX_BURST);
            self.burst_left = extra;
            self.last_region = Region::Stream;
            self.stream_addr()
        } else if self.rng.chance(self.profile.warm_fraction) {
            self.last_region = Region::Warm;
            self.warm_addr()
        } else {
            self.last_region = Region::Hot;
            self.hot_addr()
        };
        self.counts.mem_ops += 1;
        if self.last_region == Region::Stream {
            self.counts.stream_ops += 1;
        }
        if self.rng.chance(self.profile.write_fraction) {
            self.counts.stores += 1;
            Instr::Store { addr }
        } else {
            Instr::Load { addr }
        }
    }
}

/// Salt for the per-application page seed.
fn page_seed_salt(slot: usize) -> u64 {
    0x9a6e_5eed_0000_0000 ^ (slot as u64)
}

impl InstrStream for SyntheticStream {
    fn next_instr(&mut self) -> Instr {
        self.counts.instructions += 1;
        self.tick_phase();
        if self.rng.chance(self.profile.mem_fraction) {
            self.mem_instr()
        } else {
            Instr::Compute { latency: 1 }
        }
    }

    /// After a long fast-forward, the hot set is L1-resident and the warm
    /// region is L2-resident.
    fn resident_lines(&self) -> ResidentSet {
        ResidentSet {
            l1: (0..self.profile.hot_lines)
                .map(|l| self.translate(l))
                .collect(),
            l2: (0..self.profile.warm_lines)
                .map(|l| self.translate(WARM_BASE_LINE + l))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(app: SpecApp, slot: usize) -> SyntheticStream {
        SyntheticStream::new(app, slot, &SimRng::new(7))
    }

    #[test]
    fn deterministic_given_seed_and_slot() {
        let mut a = stream(SpecApp::Milc, 3);
        let mut b = stream(SpecApp::Milc, 3);
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_slots_have_disjoint_address_spaces() {
        let mut a = stream(SpecApp::Milc, 0);
        let mut b = stream(SpecApp::Milc, 1);
        let addrs = |s: &mut SyntheticStream| -> std::collections::HashSet<u64> {
            (0..5000)
                .filter_map(|_| match s.next_instr() {
                    Instr::Load { addr } | Instr::Store { addr } => Some(addr),
                    Instr::Compute { .. } => None,
                })
                .collect()
        };
        let sa = addrs(&mut a);
        let sb = addrs(&mut b);
        assert!(sa.is_disjoint(&sb));
    }

    #[test]
    fn mem_fraction_is_calibrated() {
        let mut s = stream(SpecApp::Mcf, 0);
        for _ in 0..50_000 {
            let _ = s.next_instr();
        }
        let c = s.counts();
        let frac = c.mem_ops as f64 / c.instructions as f64;
        let target = SpecApp::Mcf.profile().mem_fraction;
        assert!(
            (frac - target).abs() < 0.02,
            "mem fraction {frac} vs target {target}"
        );
    }

    #[test]
    fn offchip_rate_tracks_mpki() {
        for app in [SpecApp::Mcf, SpecApp::Libquantum, SpecApp::Gcc] {
            let mut s = stream(app, 0);
            for _ in 0..400_000 {
                let _ = s.next_instr();
            }
            let c = s.counts();
            let mpki = c.stream_ops as f64 / c.instructions as f64 * 1000.0;
            let target = app.profile().l2_mpki;
            assert!(
                mpki > target * 0.7 && mpki < target * 1.4,
                "{app}: generated MPKI {mpki:.1} vs target {target}"
            );
        }
    }

    #[test]
    fn row_locality_shapes_sequentiality() {
        let seq_fraction = |app: SpecApp| -> f64 {
            let mut s = stream(app, 0);
            let mut last: Option<u64> = None;
            let mut seq = 0u64;
            let mut total = 0u64;
            for _ in 0..400_000 {
                let before = s.counts().stream_ops;
                let instr = s.next_instr();
                let is_stream = s.counts().stream_ops > before;
                if let Instr::Load { addr } | Instr::Store { addr } = instr {
                    if is_stream {
                        if let Some(prev) = last {
                            total += 1;
                            if addr == prev + LINE_BYTES {
                                seq += 1;
                            }
                        }
                        last = Some(addr);
                    }
                }
            }
            seq as f64 / total.max(1) as f64
        };
        let streaming = seq_fraction(SpecApp::Libquantum);
        let pointer_chasing = seq_fraction(SpecApp::Mcf);
        assert!(
            streaming > pointer_chasing + 0.2,
            "libquantum ({streaming:.2}) must be more sequential than mcf ({pointer_chasing:.2})"
        );
    }

    #[test]
    fn writes_happen_at_roughly_the_configured_rate() {
        let mut s = stream(SpecApp::Lbm, 0);
        for _ in 0..100_000 {
            let _ = s.next_instr();
        }
        let c = s.counts();
        let frac = c.stores as f64 / c.mem_ops as f64;
        let target = SpecApp::Lbm.profile().write_fraction;
        assert!(
            (frac - target).abs() < 0.05,
            "write frac {frac} vs {target}"
        );
    }

    #[test]
    fn page_translation_preserves_in_page_contiguity() {
        let s = stream(SpecApp::Libquantum, 0);
        let a = s.translate(LINES_PER_PAGE * 10);
        let b = s.translate(LINES_PER_PAGE * 10 + 1);
        assert_eq!(b, a + LINE_BYTES, "lines within a page stay adjacent");
    }

    #[test]
    fn page_translation_scatters_pages() {
        let s = stream(SpecApp::Libquantum, 0);
        // Consecutive virtual pages must not map to consecutive physical
        // pages (that would recreate the aliasing the hash is there to
        // break).
        let consecutive = (0..64u64)
            .filter(|&p| {
                let a = s.translate(p * LINES_PER_PAGE);
                let b = s.translate((p + 1) * LINES_PER_PAGE);
                b == a + LINES_PER_PAGE * LINE_BYTES
            })
            .count();
        assert!(consecutive < 4, "pages look identity-mapped");
    }

    #[test]
    fn translation_stays_in_app_space() {
        for slot in [0usize, 7, 31] {
            let s = stream(SpecApp::Mcf, slot);
            for off in [0u64, WARM_BASE_LINE, STREAM_BASE_LINE + 12345] {
                let addr = s.translate(off);
                assert_eq!(addr >> APP_SPACE_SHIFT, slot as u64 + 1);
            }
        }
    }

    #[test]
    fn warm_regions_of_different_apps_do_not_alias() {
        // The (S-NUCA bank, L2 set) pairs of many applications' warm lines
        // must spread over the cache, not collapse onto a shared handful —
        // the aliasing pathology the page hash exists to break.
        let mut pairs = std::collections::HashSet::new();
        for slot in 0..8usize {
            let s = stream(SpecApp::Mcf, slot);
            for w in 0..1024u64 {
                let addr = s.translate(WARM_BASE_LINE + w);
                let global_line = addr / LINE_BYTES;
                let bank = global_line % 32;
                let set = (global_line / 32) % 512;
                pairs.insert((bank, set));
            }
        }
        assert!(
            pairs.len() > 3000,
            "8 x 1024 warm lines collapsed onto {} (bank, set) pairs",
            pairs.len()
        );
    }
}
