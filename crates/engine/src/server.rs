//! `sweepd`: a persistent sweep service over TCP.
//!
//! The figure binaries pay full simulation cost on every invocation even
//! when the requested cell was computed minutes ago by a sibling process.
//! This module keeps the engine resident: clients submit cells over a
//! line-delimited JSON protocol, identical in-flight submissions from
//! concurrent clients deduplicate onto one simulation, and completed cells
//! land in the content-addressed [`crate::cache::ResultCache`] so repeats
//! are served verbatim without recompute.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests carry an `op`:
//!
//! * `{"op":"submit","cell":{…},"wait":true}` — run (or fetch) a cell.
//!   The ack reports `status` `cached` (with the `result` inline),
//!   `queued` or `running` (with `dedup:true` when an identical cell was
//!   already in flight, and the analytic model's `estimate` when it can
//!   rank the cell). With `wait:true` the connection then streams
//!   `{"event":"state",…}` transitions followed by a terminal
//!   `{"event":"done"|"failed"|"cancelled",…}` line.
//! * `{"op":"status","key":"<16-hex>"}` — state of one cell.
//! * `{"op":"result","key":"<16-hex>","wait":bool}` — fetch (optionally
//!   await) a submitted cell's result.
//! * `{"op":"cancel","key":"<16-hex>"}` — fire the cell's cancel token.
//! * `{"op":"stats"}` — daemon counters (the dedup/cache-hit proof the
//!   integration suite pins).
//! * `{"op":"shutdown"}` — stop accepting connections and exit `serve`.
//!
//! Cached results are spliced into responses as the stored payload string,
//! byte-for-byte — two clients asking for the same cell always read
//! identical result bytes, whether computed or cached.
//!
//! # Cell addressing
//!
//! A cell's key is the fnv1a64 of its canonical spec rendering
//! ([`CellSpec::canonical`]), which covers every result-determining field
//! (size, fabric, MC placement, scheme, workload, seed, window, kernel) —
//! the service-side analogue of [`crate::sweep_fingerprint`] +
//! [`crate::job_key`]. The cache file itself pins the constant
//! [`crate::cache::sweepd_cache_fingerprint`] since it spans many sweeps.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use noclat::{run_mix, KernelKind, McPlacement, RunLengths, SystemConfig, TopologyOverride};
use noclat_analytic::AnalyticModel;
use noclat_sim::cancel::CancelToken;
use noclat_sim::journal::fnv1a64;
use noclat_sim::pool::{run_jobs_supervised, Job, RetryPolicy};
use noclat_sim::stats::Histogram;
use noclat_workloads::workload;

use crate::cache::{sweepd_cache_fingerprint, ResultCache};
use crate::json::{Json, Obj};

/// One simulation request: everything that determines the cell's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Mesh side: 4 (16 cores), 8 (the paper's 8×4), 16 (256) or 32 (1024).
    pub size: u16,
    /// Fabric override spec (`mesh`, `torus`, `cmesh:c=4`, `express:skip=2`…).
    pub fabric: String,
    /// Memory-controller placement.
    pub mc: McPlacement,
    /// Scheme combination: `baseline`, `s1`, `s2` or `both`.
    pub scheme: String,
    /// Table-2 workload index (1..=18).
    pub workload: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Simulation kernel (results are kernel-independent by contract).
    pub kernel: KernelKind,
}

impl CellSpec {
    /// Decodes a `cell` object from a submit request, applying defaults for
    /// omitted fields (8×4 baseline mesh, workload 2, standard windows).
    ///
    /// # Errors
    ///
    /// A protocol-level message naming the offending field.
    pub fn from_json(json: &Json) -> Result<CellSpec, String> {
        let Json::Obj(_) = json else {
            return Err("cell must be an object".into());
        };
        let str_field = |key: &str, default: &str| -> Result<String, String> {
            match json.get(key) {
                None => Ok(default.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("cell.{key} must be a string")),
            }
        };
        let u64_field = |key: &str, default: u64| -> Result<u64, String> {
            match json.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("cell.{key} must be an unsigned integer")),
            }
        };
        let lengths = RunLengths::standard();
        let size = u64_field("size", 8)?;
        let size = u16::try_from(size)
            .ok()
            .filter(|s| base_config(*s).is_some());
        let Some(size) = size else {
            return Err("cell.size must be 4, 8, 16 or 32".into());
        };
        let spec = CellSpec {
            size,
            fabric: str_field("fabric", "mesh")?,
            mc: McPlacement::parse(&str_field("mc", "corner")?)
                .map_err(|e| format!("cell.mc: {e}"))?,
            scheme: str_field("scheme", "baseline")?,
            workload: usize::try_from(u64_field("workload", 2)?).unwrap_or(0),
            seed: u64_field("seed", SystemConfig::baseline_32().seed)?,
            warmup: u64_field("warmup", lengths.warmup)?,
            measure: u64_field("measure", lengths.measure)?,
            kernel: KernelKind::parse(&str_field("kernel", KernelKind::default().name())?)
                .map_err(|e| format!("cell.kernel: {e}"))?,
        };
        if !matches!(spec.scheme.as_str(), "baseline" | "s1" | "s2" | "both") {
            return Err("cell.scheme must be baseline, s1, s2 or both".into());
        }
        if !(1..=18).contains(&spec.workload) {
            return Err("cell.workload must be in 1..=18".into());
        }
        if spec.measure == 0 {
            return Err("cell.measure must be at least 1 cycle".into());
        }
        // Validate the fabric eagerly so a bad spec is a protocol error at
        // submit time, not a quarantined job later.
        spec.build().map_err(|e| format!("cell: {e}"))?;
        Ok(spec)
    }

    /// Canonical single-line rendering: the content-address preimage. Every
    /// result-determining field appears; formatting never changes once
    /// released (cache keys must stay stable across versions).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "cell v1 size={} fabric={} mc={} scheme={} workload={} seed={} warmup={} measure={} kernel={}",
            self.size,
            self.fabric,
            self.mc.name(),
            self.scheme,
            self.workload,
            self.seed,
            self.warmup,
            self.measure,
            self.kernel.name(),
        )
    }

    /// The cell's content address.
    #[must_use]
    pub fn key(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// Simulation window.
    #[must_use]
    pub fn lengths(&self) -> RunLengths {
        RunLengths {
            warmup: self.warmup,
            measure: self.measure,
        }
    }

    /// Builds the validated configuration and per-tile app placement this
    /// spec describes (the same construction as the `topo_sweep` harness).
    ///
    /// # Errors
    ///
    /// The fabric/config validation message.
    pub fn build(&self) -> Result<(SystemConfig, Vec<noclat_workloads::SpecApp>), String> {
        let mut cfg = base_config(self.size).expect("size validated at parse");
        cfg.seed = self.seed;
        cfg = match self.scheme.as_str() {
            "baseline" => cfg,
            "s1" => cfg.with_scheme1(),
            "s2" => cfg.with_scheme2(),
            "both" => cfg.with_both_schemes(),
            other => return Err(format!("unknown scheme {other}")),
        };
        let ov = TopologyOverride::parse(&self.fabric)?;
        ov.apply(&mut cfg);
        cfg.topology.mc_placement = self.mc;
        cfg.kernel = self.kernel;
        cfg.validate()
            .map_err(|e| format!("{} at {}x{}: {e}", self.fabric, self.size, self.size))?;
        let apps = workload(self.workload).apps_for(cfg.num_cores());
        Ok((cfg, apps))
    }

    /// Runs the cell and renders its metrics payload (compact, single-line;
    /// the bytes stored in the cache and spliced into responses).
    #[must_use]
    pub fn run(&self) -> String {
        let (cfg, apps) = self.build().expect("spec validated at submit");
        let r = run_mix(&cfg, &apps, self.lengths());
        let mut merged = Histogram::new(25, 4000);
        for c in 0..r.per_app.len() {
            merged.merge(&r.system.tracker().app(c).total);
        }
        let offchip: u64 = r.per_app.iter().map(|a| a.offchip).sum();
        let ipc_sum: f64 = r.per_app.iter().map(|a| a.ipc).sum();
        Obj::new()
            .field("offchip", offchip)
            .field("ipc_sum", ipc_sum)
            .field("mean_latency", merged.mean())
            .field("p95_latency", merged.percentile(0.95))
            .build()
            .to_compact_string()
    }

    /// The analytic model's take on this cell, as a response fragment:
    /// `{"mean_latency":…,"stable":…}`, or [`Json::Null`] when the model
    /// cannot rank the configuration.
    #[must_use]
    pub fn estimate(&self) -> Json {
        let Ok((cfg, apps)) = self.build() else {
            return Json::Null;
        };
        match AnalyticModel::new(&cfg, &apps) {
            Ok(model) => {
                let report = model.with_lengths(self.warmup, self.measure).evaluate();
                Obj::new()
                    .field("mean_latency", report.mean_latency)
                    .field("stable", report.stability.is_stable())
                    .build()
            }
            Err(_) => Json::Null,
        }
    }
}

/// Baseline configuration for a mesh side, `None` for unsupported sizes.
fn base_config(size: u16) -> Option<SystemConfig> {
    match size {
        4 => Some(SystemConfig::baseline_16()),
        8 => Some(SystemConfig::baseline_32()),
        16 => Some(SystemConfig::baseline_256()),
        32 => Some(SystemConfig::baseline_1024()),
        _ => None,
    }
}

/// Lifecycle of an in-flight cell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Completed; the stored payload string.
    Done(String),
    /// Quarantined after retries; the error rendering.
    Failed(String),
    Cancelled,
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// One deduplicated in-flight cell: every concurrent submitter of the same
/// key shares this entry (and therefore the single simulation).
#[derive(Debug)]
struct JobEntry {
    key: u64,
    spec: CellSpec,
    state: Mutex<JobState>,
    changed: Condvar,
    /// The running attempt's cancel token, published by the job closure.
    cancel: Mutex<Option<CancelToken>>,
    /// Set by the `cancel` op so the server can tell an operator cancel
    /// from a deadline timeout (the pool classifies both as timeouts).
    cancel_requested: AtomicBool,
}

impl JobEntry {
    fn set_state(&self, next: JobState) {
        *self.state.lock().expect("job state") = next;
        self.changed.notify_all();
    }

    fn state(&self) -> JobState {
        self.state.lock().expect("job state").clone()
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads (concurrent simulations).
    pub workers: usize,
    /// Deadline/retry budget applied to every cell.
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            retry: RetryPolicy::default(),
        }
    }
}

/// Shared daemon state.
struct ServerState {
    cache: Mutex<ResultCache>,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    queue: Mutex<mpsc::Sender<Arc<JobEntry>>>,
    retry: RetryPolicy,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Simulations actually executed (the dedup proof: a cache-served or
    /// deduplicated submission never increments this).
    jobs_run: AtomicU64,
    /// Submissions answered straight from the cache.
    cache_hits: AtomicU64,
    /// Submissions answered by joining an identical in-flight cell.
    dedup_joins: AtomicU64,
}

/// The sweep daemon: a bound listener plus its executor pool.
pub struct SweepServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl SweepServer {
    /// Binds the listener, opens (and locks) the result cache, and spawns
    /// the executor pool. `listen` may use port 0 to let the OS pick.
    ///
    /// # Errors
    ///
    /// Socket errors as IO; a busy or unreadable cache as a rendered
    /// [`crate::cache::CacheError`] (the caller prints it and exits with
    /// the config code).
    pub fn bind(
        listen: &str,
        cache_path: &std::path::Path,
        config: &ServerConfig,
    ) -> Result<SweepServer, String> {
        let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let cache = ResultCache::open(cache_path, sweepd_cache_fingerprint())
            .map_err(|e| format!("open cache {}: {e}", cache_path.display()))?;
        let (tx, rx) = mpsc::channel::<Arc<JobEntry>>();
        let state = Arc::new(ServerState {
            cache: Mutex::new(cache),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(tx),
            retry: config.retry.clone(),
            addr,
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            dedup_joins: AtomicU64::new(0),
        });
        let rx = Arc::new(Mutex::new(rx));
        for worker in 0..config.workers.max(1) {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("sweepd-exec-{worker}"))
                .spawn(move || executor_loop(&state, &rx))
                .map_err(|e| format!("spawn executor: {e}"))?;
        }
        Ok(SweepServer { listener, state })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Accepts connections until a `shutdown` op arrives, handling each
    /// client on its own thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection failures are logged to
    /// stderr and the daemon keeps serving.
    pub fn serve(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::Builder::new()
                        .name("sweepd-conn".to_string())
                        .spawn(move || {
                            if let Err(e) = handle_connection(&state, stream) {
                                eprintln!("sweepd: connection error: {e}");
                            }
                        })?;
                }
                Err(e) => eprintln!("sweepd: accept failed: {e}"),
            }
        }
        Ok(())
    }
}

/// Executor: claims queued entries and runs them under pool supervision.
fn executor_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<mpsc::Receiver<Arc<JobEntry>>>>) {
    loop {
        // Hold the receiver lock only while claiming, never while running.
        let entry = match rx.lock().expect("executor queue").recv() {
            Ok(entry) => entry,
            Err(_) => return, // all senders gone: daemon is shutting down
        };
        run_entry(state, &entry);
        // Completed (or cancelled) entries leave the in-flight table *after*
        // their result is visible in the cache, so a submitter always finds
        // the cell in one of the two (see the submit path's re-check).
        state.jobs.lock().expect("jobs table").remove(&entry.key);
    }
}

fn run_entry(state: &Arc<ServerState>, entry: &Arc<JobEntry>) {
    if entry.cancel_requested.load(Ordering::Acquire) {
        entry.set_state(JobState::Cancelled);
        return;
    }
    entry.set_state(JobState::Running);
    let spec = entry.spec.clone();
    let publish = Arc::clone(entry);
    let job = Job::with_ctx(spec.canonical(), move |ctx| {
        // Expose the attempt's token so the cancel op can fire it.
        *publish.cancel.lock().expect("cancel slot") = Some(ctx.cancel.clone());
        spec.run()
    })
    .config_hash(format!("{:016x}", entry.key));
    let mut results = run_jobs_supervised(1, vec![job], &state.retry, None);
    match results.pop().expect("one job, one result") {
        Ok(payload) => {
            state.jobs_run.fetch_add(1, Ordering::AcqRel);
            let mut cache = state.cache.lock().expect("cache lock");
            if let Err(e) = cache.insert(entry.key, &payload) {
                // Durability degraded, not the in-flight result.
                eprintln!("sweepd: cache write failed: {e}");
            }
            drop(cache);
            entry.set_state(JobState::Done(payload));
        }
        Err(e) => {
            // An operator cancel is classified by the pool as a timeout
            // (the token fired); re-label it with the operator's intent.
            if entry.cancel_requested.load(Ordering::Acquire) {
                entry.set_state(JobState::Cancelled);
            } else {
                entry.set_state(JobState::Failed(e.to_string()));
            }
        }
    }
}

/// Renders a response line with the stored payload spliced in verbatim, so
/// result bytes are identical however the cell was obtained.
fn result_line(op: &str, key: u64, status: &str, payload: &str) -> String {
    format!(
        r#"{{"ok":true,"op":"{op}","key":"{key:016x}","status":"{status}","result":{payload}}}"#
    )
}

fn error_line(msg: &str) -> String {
    Obj::new()
        .field("ok", false)
        .field("error", msg)
        .build()
        .to_compact_string()
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                writeln!(writer, "{}", error_line(&format!("bad request: {e}")))?;
                continue;
            }
        };
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        match op {
            "submit" => handle_submit(state, &request, &mut writer)?,
            "status" => handle_status(state, &request, &mut writer)?,
            "result" => handle_result(state, &request, &mut writer)?,
            "cancel" => handle_cancel(state, &request, &mut writer)?,
            "stats" => handle_stats(state, &mut writer)?,
            "shutdown" => {
                state.shutdown.store(true, Ordering::Release);
                writeln!(writer, r#"{{"ok":true,"op":"shutdown"}}"#)?;
                // Wake the accept loop so serve() observes the flag.
                let _ = TcpStream::connect(state.addr);
                return Ok(());
            }
            other => {
                writeln!(writer, "{}", error_line(&format!("unknown op {other:?}")))?;
            }
        }
        writer.flush()?;
    }
    Ok(())
}

/// Looks the key up in cache and in-flight table, closing the race with
/// executors (which insert into the cache before leaving the table, while
/// holding the table lock for the removal).
fn find_cell(state: &ServerState, key: u64) -> (Option<String>, Option<Arc<JobEntry>>) {
    let jobs = state.jobs.lock().expect("jobs table");
    let entry = jobs.get(&key).cloned();
    let cached = state
        .cache
        .lock()
        .expect("cache lock")
        .get(key)
        .map(str::to_string);
    (cached, entry)
}

fn handle_submit(
    state: &Arc<ServerState>,
    request: &Json,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let Some(cell) = request.get("cell") else {
        return writeln!(writer, "{}", error_line("submit needs a cell object"));
    };
    let spec = match CellSpec::from_json(cell) {
        Ok(spec) => spec,
        Err(e) => return writeln!(writer, "{}", error_line(&e)),
    };
    let key = spec.key();
    let wait = request.get("wait").and_then(Json::as_bool).unwrap_or(false);

    // Fast path: answered from the cache, byte-identical to the original
    // computation's response, no simulation work.
    if let Some(payload) = state.cache.lock().expect("cache lock").get(key) {
        let line = result_line("submit", key, "cached", payload);
        state.cache_hits.fetch_add(1, Ordering::AcqRel);
        return writeln!(writer, "{line}");
    }

    // Slow path: join an identical in-flight cell or enqueue a new one.
    // Everything under the jobs lock so an executor completing concurrently
    // cannot slip between the table check and the cache re-check.
    let (entry, dedup, cached) = {
        let mut jobs = state.jobs.lock().expect("jobs table");
        if let Some(existing) = jobs.get(&key) {
            state.dedup_joins.fetch_add(1, Ordering::AcqRel);
            (Arc::clone(existing), true, None)
        } else if let Some(payload) = state.cache.lock().expect("cache lock").get(key) {
            // The cell completed between the fast path and here.
            (
                Arc::new(JobEntry {
                    key,
                    spec: spec.clone(),
                    state: Mutex::new(JobState::Done(payload.to_string())),
                    changed: Condvar::new(),
                    cancel: Mutex::new(None),
                    cancel_requested: AtomicBool::new(false),
                }),
                false,
                Some(payload.to_string()),
            )
        } else {
            let entry = Arc::new(JobEntry {
                key,
                spec: spec.clone(),
                state: Mutex::new(JobState::Queued),
                changed: Condvar::new(),
                cancel: Mutex::new(None),
                cancel_requested: AtomicBool::new(false),
            });
            jobs.insert(key, Arc::clone(&entry));
            state
                .queue
                .lock()
                .expect("queue sender")
                .send(Arc::clone(&entry))
                .expect("executor pool outlives the listener");
            (entry, false, None)
        }
    };
    if let Some(payload) = cached {
        let line = result_line("submit", key, "cached", &payload);
        state.cache_hits.fetch_add(1, Ordering::AcqRel);
        return writeln!(writer, "{line}");
    }

    // Ack with the analytic estimate: the client learns immediately roughly
    // what latency to expect and whether the cell is in a stable regime.
    let ack = Obj::new()
        .field("ok", true)
        .field("op", "submit")
        .field("key", format!("{key:016x}"))
        .field("status", entry.state().name())
        .field("dedup", dedup)
        .field("estimate", spec.estimate())
        .build()
        .to_compact_string();
    writeln!(writer, "{ack}")?;
    if !wait {
        return Ok(());
    }
    writer.flush()?;
    stream_until_terminal(&entry, writer)
}

/// Streams state-transition events for an entry until it reaches a terminal
/// state, then emits the terminal event line.
fn stream_until_terminal(entry: &JobEntry, writer: &mut TcpStream) -> std::io::Result<()> {
    let mut last: Option<JobState> = None;
    let mut guard = entry.state.lock().expect("job state");
    loop {
        let current = guard.clone();
        if last.as_ref() != Some(&current) {
            last = Some(current.clone());
            if current.is_terminal() {
                drop(guard);
                let line = match &current {
                    JobState::Done(payload) => format!(
                        r#"{{"event":"done","key":"{:016x}","result":{payload}}}"#,
                        entry.key
                    ),
                    JobState::Failed(msg) => Obj::new()
                        .field("event", "failed")
                        .field("key", format!("{:016x}", entry.key))
                        .field("error", msg.as_str())
                        .build()
                        .to_compact_string(),
                    _ => format!(r#"{{"event":"cancelled","key":"{:016x}"}}"#, entry.key),
                };
                return writeln!(writer, "{line}");
            }
            // Progress event (queued → running). Write outside the lock so a
            // slow client never stalls the executor's notify.
            drop(guard);
            writeln!(
                writer,
                r#"{{"event":"state","key":"{:016x}","state":"{}"}}"#,
                entry.key,
                current.name()
            )?;
            writer.flush()?;
            guard = entry.state.lock().expect("job state");
            continue;
        }
        guard = entry.changed.wait(guard).expect("job state");
    }
}

fn parse_key(request: &Json) -> Result<u64, String> {
    let key = request
        .get("key")
        .and_then(Json::as_str)
        .ok_or("missing key")?;
    u64::from_str_radix(key, 16).map_err(|e| format!("bad key {key:?}: {e}"))
}

fn handle_status(
    state: &Arc<ServerState>,
    request: &Json,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let key = match parse_key(request) {
        Ok(key) => key,
        Err(e) => return writeln!(writer, "{}", error_line(&e)),
    };
    let (cached, entry) = find_cell(state, key);
    let status = match (&entry, cached.is_some()) {
        (Some(entry), _) => entry.state().name().to_string(),
        (None, true) => "cached".to_string(),
        (None, false) => "unknown".to_string(),
    };
    let line = Obj::new()
        .field("ok", true)
        .field("op", "status")
        .field("key", format!("{key:016x}"))
        .field("status", status)
        .build()
        .to_compact_string();
    writeln!(writer, "{line}")
}

fn handle_result(
    state: &Arc<ServerState>,
    request: &Json,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let key = match parse_key(request) {
        Ok(key) => key,
        Err(e) => return writeln!(writer, "{}", error_line(&e)),
    };
    let wait = request.get("wait").and_then(Json::as_bool).unwrap_or(false);
    let (cached, entry) = find_cell(state, key);
    if let Some(payload) = cached {
        state.cache_hits.fetch_add(1, Ordering::AcqRel);
        return writeln!(writer, "{}", result_line("result", key, "cached", &payload));
    }
    let Some(entry) = entry else {
        return writeln!(writer, "{}", error_line("unknown key (never submitted)"));
    };
    if wait {
        return stream_until_terminal(&entry, writer);
    }
    match entry.state() {
        JobState::Done(payload) => {
            writeln!(writer, "{}", result_line("result", key, "done", &payload))
        }
        other => {
            let line = Obj::new()
                .field("ok", true)
                .field("op", "result")
                .field("key", format!("{key:016x}"))
                .field("status", other.name())
                .build()
                .to_compact_string();
            writeln!(writer, "{line}")
        }
    }
}

fn handle_cancel(
    state: &Arc<ServerState>,
    request: &Json,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let key = match parse_key(request) {
        Ok(key) => key,
        Err(e) => return writeln!(writer, "{}", error_line(&e)),
    };
    let entry = state.jobs.lock().expect("jobs table").get(&key).cloned();
    let cancelled = match entry {
        Some(entry) => {
            entry.cancel_requested.store(true, Ordering::Release);
            if let Some(token) = &*entry.cancel.lock().expect("cancel slot") {
                token.cancel();
            }
            true
        }
        None => false,
    };
    let line = Obj::new()
        .field("ok", true)
        .field("op", "cancel")
        .field("key", format!("{key:016x}"))
        .field("cancelled", cancelled)
        .build()
        .to_compact_string();
    writeln!(writer, "{line}")
}

fn handle_stats(state: &Arc<ServerState>, writer: &mut TcpStream) -> std::io::Result<()> {
    let line = Obj::new()
        .field("ok", true)
        .field("op", "stats")
        .field("jobs_run", state.jobs_run.load(Ordering::Acquire))
        .field("cache_hits", state.cache_hits.load(Ordering::Acquire))
        .field("dedup_joins", state.dedup_joins.load(Ordering::Acquire))
        .field(
            "cache_size",
            state.cache.lock().expect("cache lock").len() as u64,
        )
        .field(
            "inflight",
            state.jobs.lock().expect("jobs table").len() as u64,
        )
        .build()
        .to_compact_string();
    writeln!(writer, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_json(fields: &str) -> Json {
        Json::parse(&format!("{{{fields}}}")).unwrap()
    }

    #[test]
    fn cell_spec_parses_defaults_and_validates() {
        let spec = CellSpec::from_json(&spec_json("")).unwrap();
        assert_eq!(spec.size, 8);
        assert_eq!(spec.fabric, "mesh");
        assert_eq!(spec.mc, McPlacement::Corner);
        assert_eq!(spec.scheme, "baseline");
        assert_eq!(spec.workload, 2);
        assert_eq!(spec.lengths(), RunLengths::standard());

        let spec = CellSpec::from_json(&spec_json(
            r#""size":16,"fabric":"torus","mc":"edge","scheme":"both","workload":3,"seed":9,"warmup":100,"measure":1000,"kernel":"event""#,
        ))
        .unwrap();
        assert_eq!(spec.size, 16);
        assert_eq!(spec.fabric, "torus");
        assert_eq!(spec.mc, McPlacement::Edge);
        assert_eq!(spec.kernel, KernelKind::Event);
        let (cfg, apps) = spec.build().unwrap();
        assert_eq!(cfg.num_cores(), 256);
        assert_eq!(apps.len(), 256);

        assert!(CellSpec::from_json(&spec_json(r#""size":7"#)).is_err());
        assert!(CellSpec::from_json(&spec_json(r#""scheme":"s3""#)).is_err());
        assert!(CellSpec::from_json(&spec_json(r#""workload":19"#)).is_err());
        assert!(CellSpec::from_json(&spec_json(r#""measure":0"#)).is_err());
        assert!(CellSpec::from_json(&spec_json(r#""fabric":"donut""#)).is_err());
        assert!(CellSpec::from_json(&Json::Uint(3)).is_err());
    }

    #[test]
    fn cell_key_covers_every_result_determining_field() {
        let base = CellSpec::from_json(&spec_json("")).unwrap();
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(base.key()));
        for fields in [
            r#""size":4"#,
            r#""fabric":"torus""#,
            r#""mc":"center""#,
            r#""scheme":"s1""#,
            r#""workload":5"#,
            r#""seed":123"#,
            r#""warmup":777"#,
            r#""measure":888"#,
        ] {
            let spec = CellSpec::from_json(&spec_json(fields)).unwrap();
            assert!(seen.insert(spec.key()), "key collision for {fields}");
        }
        // Same spec → same key (the dedup invariant).
        let again = CellSpec::from_json(&spec_json("")).unwrap();
        assert_eq!(base.key(), again.key());
    }

    #[test]
    fn estimate_ranks_valid_cells() {
        let spec = CellSpec::from_json(&spec_json(r#""warmup":100,"measure":1000"#)).unwrap();
        let estimate = spec.estimate();
        let mean = estimate.get("mean_latency");
        assert!(
            mean.is_some(),
            "baseline cell must be rankable: {estimate:?}"
        );
    }

    #[test]
    fn result_line_splices_payload_verbatim() {
        let a = result_line("submit", 0xabc, "cached", r#"{"x":1.5}"#);
        let b = result_line("submit", 0xabc, "cached", r#"{"x":1.5}"#);
        assert_eq!(a, b);
        assert!(a.contains(r#""result":{"x":1.5}"#));
        assert!(Json::parse(&a).is_ok(), "response lines are valid JSON");
    }
}
