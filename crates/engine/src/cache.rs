//! Content-addressed result cache: the PR 7 resume journal promoted to a
//! first-class service-facing store.
//!
//! The on-disk format is exactly the journal's (`noclat-journal v1` header,
//! checksummed `r <key> <checksum> <payload>` records, valid-prefix crash
//! recovery), so every existing `--resume` file *is* a valid cache. On top
//! of it this module adds the two things a long-running service needs:
//!
//! * **read-through lookup** — [`ResultCache::get`] answers from the
//!   in-memory map loaded at open (plus everything inserted since), and
//!   [`read_snapshot`] gives lock-free readers the current valid prefix of
//!   a cache file someone else is writing;
//! * **a single-writer guard** — at most one [`ResultCache`] may have a
//!   cache file open for writing, enforced by a sidecar `<path>.lock` file
//!   created atomically and holding the writer's PID. A second writer gets
//!   the typed [`CacheError::Busy`], never silent interleaving. A lock
//!   whose holder died (SIGKILL included) is detected as stale via the
//!   PID and reclaimed.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use noclat_sim::error::JournalError;
use noclat_sim::journal::{self, fnv1a64, Journal};

/// Fingerprint pinned by `sweepd`-managed cache files. Unlike a sweep
/// journal (whose fingerprint digests the sweep arguments), a service cache
/// holds cells of *many* argument sets; each cell's key digests its full
/// request instead, and the file-level fingerprint only guards against
/// pointing the daemon at an unrelated journal.
#[must_use]
pub fn sweepd_cache_fingerprint() -> u64 {
    fnv1a64(b"sweepd v1")
}

/// Why a cache could not be opened or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Another live process holds the write lock.
    Busy {
        /// The lock file that is in the way.
        lock: PathBuf,
        /// PID recorded in the lock file, when it parsed.
        holder: Option<u32>,
    },
    /// The underlying journal failed (bad header, fingerprint mismatch, IO).
    Journal(JournalError),
    /// Lock-file manipulation failed.
    Io(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Busy { lock, holder } => match holder {
                Some(pid) => write!(
                    f,
                    "result cache is busy: {} held by live pid {pid}",
                    lock.display()
                ),
                None => write!(f, "result cache is busy: {} exists", lock.display()),
            },
            CacheError::Journal(e) => write!(f, "{e}"),
            CacheError::Io(msg) => write!(f, "cache lock: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<JournalError> for CacheError {
    fn from(e: JournalError) -> CacheError {
        CacheError::Journal(e)
    }
}

/// The sidecar lock path of a cache file.
#[must_use]
pub fn lock_path(cache: &Path) -> PathBuf {
    let mut os = cache.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

/// Whether the PID recorded in a lock file still names a live process.
/// Conservative: unparseable contents or an unsupported platform count as
/// live, so we never steal a lock we cannot prove stale.
fn holder_is_live(holder: Option<u32>) -> bool {
    let Some(pid) = holder else { return true };
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Tries to create the lock file atomically, claiming it for this process.
/// A stale lock (holder provably dead) is removed and the claim retried
/// once; a live holder is reported as [`CacheError::Busy`].
fn acquire_lock(lock: &Path) -> Result<(), CacheError> {
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(lock) {
            Ok(mut f) => {
                // Best-effort: a lock file without a PID is still a lock
                // (it just can never be detected as stale).
                let _ = writeln!(f, "{}", std::process::id());
                let _ = f.flush();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(lock)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                if attempt == 0 && !holder_is_live(holder) {
                    // Stale: the writer died without cleanup. Reclaim and
                    // retry the atomic create (racing reclaimers are fine —
                    // exactly one create_new wins).
                    let _ = std::fs::remove_file(lock);
                    continue;
                }
                return Err(CacheError::Busy {
                    lock: lock.to_path_buf(),
                    holder,
                });
            }
            Err(e) => {
                return Err(CacheError::Io(format!("{}: {e}", lock.display())));
            }
        }
    }
    unreachable!("second attempt either creates the lock or returns Busy");
}

/// A writable result cache: an open journal, its records indexed by key,
/// and the single-writer lock (released on drop).
#[derive(Debug)]
pub struct ResultCache {
    journal: Journal,
    lock: PathBuf,
    map: HashMap<u64, String>,
}

impl ResultCache {
    /// Opens (or creates) the cache at `path` for writing.
    ///
    /// # Errors
    ///
    /// [`CacheError::Busy`] when another live process holds the write lock,
    /// [`CacheError::Journal`] for fingerprint/format/IO problems with the
    /// cache file itself.
    pub fn open(path: &Path, fingerprint: u64) -> Result<ResultCache, CacheError> {
        let lock = lock_path(path);
        acquire_lock(&lock)?;
        match Journal::open(path, fingerprint) {
            Ok((journal, records)) => Ok(ResultCache {
                journal,
                lock,
                map: journal::as_map(records),
            }),
            Err(e) => {
                // Don't hold the lock for a cache we failed to open.
                let _ = std::fs::remove_file(&lock);
                Err(e.into())
            }
        }
    }

    /// Read-through lookup: the stored payload of `key`, if any.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&str> {
        self.map.get(&key).map(String::as_str)
    }

    /// Stores `payload` under `key`, durably (appended and flushed before
    /// returning) and visibly to subsequent [`ResultCache::get`] calls.
    ///
    /// # Errors
    ///
    /// [`CacheError::Journal`] on write failures; the in-memory entry is
    /// still updated so this process keeps serving the result it computed.
    pub fn insert(&mut self, key: u64, payload: &str) -> Result<(), CacheError> {
        let result = self.journal.append(key, payload).map_err(CacheError::from);
        self.map.insert(key, payload.to_string());
        result
    }

    /// Number of cached cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cache file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        self.journal.path()
    }
}

impl Drop for ResultCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock);
    }
}

/// Lock-free read-only snapshot of a cache file: the `key → payload` map of
/// its current valid prefix. A concurrent writer's torn final record is
/// dropped exactly as journal crash recovery drops it — readers only ever
/// see checksummed-complete records. A missing file is an empty cache.
///
/// # Errors
///
/// [`CacheError::Journal`] when the file exists but is not a journal or
/// pins a different fingerprint, [`CacheError::Io`] on read failures.
pub fn read_snapshot(path: &Path, fingerprint: u64) -> Result<HashMap<u64, String>, CacheError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => return Err(CacheError::Io(format!("{}: {e}", path.display()))),
    };
    if text.is_empty() {
        // A writer that just created the file may not have flushed the
        // header yet; an empty file is an empty cache, not corruption.
        return Ok(HashMap::new());
    }
    let scanned = journal::scan(&text)?;
    if scanned.fingerprint != fingerprint {
        return Err(CacheError::Journal(JournalError::FingerprintMismatch {
            expected: fingerprint,
            found: scanned.fingerprint,
        }));
    }
    Ok(journal::as_map(scanned.records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("noclat-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.nj")
    }

    #[test]
    fn cache_roundtrips_and_rereads() {
        let path = tmp("roundtrip");
        let fp = sweepd_cache_fingerprint();
        {
            let mut cache = ResultCache::open(&path, fp).unwrap();
            assert!(cache.is_empty());
            assert_eq!(cache.get(7), None);
            cache.insert(7, "[1,2]").unwrap();
            cache.insert(9, "[3]").unwrap();
            assert_eq!(cache.get(7), Some("[1,2]"));
            assert_eq!(cache.len(), 2);
        }
        // Lock released on drop; reopening sees the same records.
        let cache = ResultCache::open(&path, fp).unwrap();
        assert_eq!(cache.get(7), Some("[1,2]"));
        assert_eq!(cache.get(9), Some("[3]"));
    }

    #[test]
    fn second_writer_gets_typed_busy() {
        let path = tmp("busy");
        let fp = sweepd_cache_fingerprint();
        let _first = ResultCache::open(&path, fp).unwrap();
        match ResultCache::open(&path, fp) {
            Err(CacheError::Busy { lock, holder }) => {
                assert_eq!(lock, lock_path(&path));
                assert_eq!(holder, Some(std::process::id()));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        let path = tmp("stale");
        let fp = sweepd_cache_fingerprint();
        // A lock whose holder is provably dead: PIDs cycle, but u32::MAX is
        // beyond the default pid_max on any Linux.
        std::fs::write(lock_path(&path), format!("{}\n", u32::MAX)).unwrap();
        let cache = ResultCache::open(&path, fp);
        assert!(cache.is_ok(), "stale lock must be reclaimed: {cache:?}");
    }

    #[test]
    fn snapshot_reads_valid_prefix_only() {
        let path = tmp("snapshot");
        let fp = sweepd_cache_fingerprint();
        {
            let mut cache = ResultCache::open(&path, fp).unwrap();
            cache.insert(1, "[10]").unwrap();
            cache.insert(2, "[20]").unwrap();
        }
        // Simulate a concurrent writer's torn final record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"r 00000000000000ff 0000");
        std::fs::write(&path, &bytes).unwrap();
        let map = read_snapshot(&path, fp).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&1).map(String::as_str), Some("[10]"));
        // Missing file: empty cache.
        assert!(read_snapshot(Path::new("/nonexistent/cache.nj"), fp)
            .unwrap()
            .is_empty());
        // Wrong fingerprint: typed rejection.
        assert!(matches!(
            read_snapshot(&path, fp ^ 1),
            Err(CacheError::Journal(
                JournalError::FingerprintMismatch { .. }
            ))
        ));
    }
}
