//! Reusable sweep engine for the MICRO 2012 reproduction.
//!
//! Everything a sweep harness needs, hoisted out of the `noclat-bench`
//! binaries so other frontends (the `sweepd` daemon, future drivers) can
//! run the same grids with the same guarantees:
//!
//! * [`SweepArgs`]/[`PruneSpec`] — the shared command-line surface and the
//!   [`sweep_fingerprint`]/[`job_key`] content addressing;
//! * [`run_grid`]/[`try_run_grid`]/[`run_pruned_grid`] — deterministic
//!   parallel grid execution over [`noclat_sim::pool`], with journal
//!   resume and two-tier analytic pruning;
//! * [`AloneMap`] — the weighted-speedup denominator phase;
//! * [`Json`]/[`Obj`]/[`CellCodec`] — dependency-free, deterministic
//!   serialization (bit-exact for floats via [`f64::to_bits`]);
//! * [`cache`] — the journal promoted to a content-addressed result cache
//!   with a single-writer lock and lock-free snapshot readers;
//! * [`server`] — the `sweepd` daemon: submit/status/result/cancel over
//!   line-delimited JSON, deduplicating identical in-flight cells and
//!   serving cache hits without recompute;
//! * [`ExitCode`] — the typed process exit codes every binary shares.
//!
//! Determinism is preserved by construction: each job is self-contained
//! and seeded only from `(base seed, job index)` via [`job_seed`], results
//! come back in job-index order regardless of scheduling, and all
//! rendering happens after the grid completes. Running the same sweep with
//! `--jobs 1` and `--jobs 8` produces byte-identical reports; progress
//! notes go to stderr so stdout stays comparable across worker counts.

pub mod args;
pub mod cache;
pub mod codec;
pub mod exit;
pub mod grid;
pub mod json;
pub mod report;
pub mod server;

// Flat re-exports preserving the original `bench::sweep` surface, so the
// 27 figure binaries and the compatibility `pub use` in `noclat-bench`
// keep exactly the paths they had before the extraction.
pub use args::{job_key, sweep_fingerprint, PruneSpec, SweepArgs, DEFAULT_SHARDS, SWEEP_USAGE};
pub use cache::{read_snapshot, sweepd_cache_fingerprint, CacheError, ResultCache};
pub use codec::CellCodec;
pub use exit::{exit_code, ExitCode};
pub use grid::{
    alone_key, run_grid, run_pruned_grid, run_shards, try_run_grid, try_run_pruned_grid, AloneMap,
    GridCell, PruneInfo, PruneOutcome, PrunedResults,
};
pub use json::{Json, Obj, MAX_PARSE_DEPTH};
pub use noclat_sim::pool::{
    job_rng, job_seed, run_jobs, run_jobs_supervised, Job, JobCtx, RetryPolicy,
};
pub use report::{finish, histogram_json, report, write_json_file};
pub use server::{CellSpec, ServerConfig, SweepServer};
