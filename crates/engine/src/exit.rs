//! Centralized process exit codes for every sweep binary and `sweepd`.
//!
//! PR 7 defined the codes as loose constants in `bench::sweep` and each
//! binary re-matched them by hand; now that a long-running server also has
//! to classify failures, the classification lives in one typed enum so the
//! CLIs and the daemon can never drift.

use noclat::SimError;

/// Typed process exit codes, so CI and scripts can tell failure classes
/// apart without parsing stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// Clean exit.
    Success,
    /// Catch-all failure (IO errors, wedged drains without a watchdog…).
    Generic,
    /// Invalid arguments or configuration (also journal-resume mismatches
    /// and a busy result cache).
    Config,
    /// At least one sweep job panicked after exhausting its retries.
    JobPanic,
    /// At least one sweep job exceeded `--job-timeout` after exhausting its
    /// retries (and none panicked — panics take precedence).
    JobTimeout,
    /// The liveness watchdog reported violations (deadlock/starvation).
    Watchdog,
    /// `--prune` eliminated every cell of a non-empty grid: nothing was
    /// simulated, so a report of "zero cells, success" would be a lie.
    PrunedEmpty,
}

impl ExitCode {
    /// The numeric process exit code.
    #[must_use]
    pub const fn code(self) -> i32 {
        match self {
            ExitCode::Success => 0,
            ExitCode::Generic => 1,
            ExitCode::Config => 2,
            ExitCode::JobPanic => 3,
            ExitCode::JobTimeout => 4,
            ExitCode::Watchdog => 5,
            ExitCode::PrunedEmpty => 6,
        }
    }

    /// The enum variant of a numeric exit code, if it is one of ours.
    #[must_use]
    pub const fn from_code(code: i32) -> Option<ExitCode> {
        match code {
            0 => Some(ExitCode::Success),
            1 => Some(ExitCode::Generic),
            2 => Some(ExitCode::Config),
            3 => Some(ExitCode::JobPanic),
            4 => Some(ExitCode::JobTimeout),
            5 => Some(ExitCode::Watchdog),
            6 => Some(ExitCode::PrunedEmpty),
            _ => None,
        }
    }

    /// Classifies a list of quarantined cell errors the way every sweep
    /// binary reports them: panics beat timeouts beat the generic failure
    /// code (and an empty list is a success).
    pub fn from_quarantined<'a, I>(errors: I) -> ExitCode
    where
        I: IntoIterator<Item = &'a SimError>,
    {
        let mut worst = ExitCode::Success;
        for e in errors {
            let this = ExitCode::from(e);
            // Severity order for quarantine reporting only: panic > timeout
            // > everything else. (Config/journal problems abort the sweep
            // before any cell is quarantined, so they never compete here.)
            let rank = |c: ExitCode| match c {
                ExitCode::JobPanic => 3,
                ExitCode::JobTimeout => 2,
                ExitCode::Success => 0,
                _ => 1,
            };
            if rank(this) > rank(worst) {
                worst = this;
            }
        }
        worst
    }

    /// Terminates the process with this code.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }
}

impl From<ExitCode> for i32 {
    fn from(c: ExitCode) -> i32 {
        c.code()
    }
}

impl From<&SimError> for ExitCode {
    fn from(e: &SimError) -> ExitCode {
        match e {
            SimError::JobPanicked { .. } => ExitCode::JobPanic,
            SimError::JobTimeout { .. } => ExitCode::JobTimeout,
            SimError::Config(_) | SimError::Journal(_) => ExitCode::Config,
            _ => ExitCode::Generic,
        }
    }
}

impl std::fmt::Display for ExitCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} ({})", self, self.code())
    }
}

/// Numeric constants mirroring [`ExitCode`], kept for source compatibility
/// with the pre-engine `bench::sweep::exit_code` module (binaries and tests
/// match on these; new code should prefer the enum).
pub mod exit_code {
    use super::ExitCode;

    /// Catch-all failure (IO errors, wedged drains without a watchdog…).
    pub const GENERIC: i32 = ExitCode::Generic.code();
    /// Invalid arguments or configuration (also journal-resume mismatches).
    pub const CONFIG: i32 = ExitCode::Config.code();
    /// At least one sweep job panicked after exhausting its retries.
    pub const JOB_PANIC: i32 = ExitCode::JobPanic.code();
    /// At least one sweep job exceeded `--job-timeout` after exhausting its
    /// retries (and none panicked — panics take precedence).
    pub const JOB_TIMEOUT: i32 = ExitCode::JobTimeout.code();
    /// The liveness watchdog reported violations (deadlock/starvation).
    pub const WATCHDOG: i32 = ExitCode::Watchdog.code();
    /// `--prune` eliminated every cell of a non-empty grid: nothing was
    /// simulated, so a report of "zero cells, success" would be a lie.
    pub const PRUNED_EMPTY: i32 = ExitCode::PrunedEmpty.code();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_match_the_legacy_constants() {
        for c in [
            ExitCode::Success,
            ExitCode::Generic,
            ExitCode::Config,
            ExitCode::JobPanic,
            ExitCode::JobTimeout,
            ExitCode::Watchdog,
            ExitCode::PrunedEmpty,
        ] {
            assert_eq!(ExitCode::from_code(c.code()), Some(c));
            assert_eq!(i32::from(c), c.code());
        }
        assert_eq!(ExitCode::from_code(99), None);
        assert_eq!(exit_code::GENERIC, 1);
        assert_eq!(exit_code::CONFIG, 2);
        assert_eq!(exit_code::JOB_PANIC, 3);
        assert_eq!(exit_code::JOB_TIMEOUT, 4);
        assert_eq!(exit_code::WATCHDOG, 5);
        assert_eq!(exit_code::PRUNED_EMPTY, 6);
    }

    #[test]
    fn quarantine_classification_ranks_panics_over_timeouts() {
        let panic = SimError::JobPanicked {
            job: "a".into(),
            index: 0,
            message: "boom".into(),
            config_hash: None,
            attempts: 1,
        };
        let timeout = SimError::JobTimeout {
            job: "b".into(),
            index: 1,
            config_hash: None,
            timeout_ms: 10,
            attempts: 1,
        };
        let other = SimError::ZeroFlitPacket;
        assert_eq!(ExitCode::from_quarantined([]), ExitCode::Success);
        assert_eq!(ExitCode::from_quarantined([&other]), ExitCode::Generic);
        assert_eq!(
            ExitCode::from_quarantined([&other, &timeout]),
            ExitCode::JobTimeout
        );
        assert_eq!(
            ExitCode::from_quarantined([&timeout, &panic, &other]),
            ExitCode::JobPanic
        );
    }

    #[test]
    fn sim_errors_map_to_codes() {
        assert_eq!(ExitCode::from(&SimError::ZeroFlitPacket), ExitCode::Generic);
        let timeout = SimError::JobTimeout {
            job: "b".into(),
            index: 1,
            config_hash: None,
            timeout_ms: 10,
            attempts: 1,
        };
        assert_eq!(ExitCode::from(&timeout), ExitCode::JobTimeout);
    }
}
