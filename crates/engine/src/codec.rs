//! Cell codec: lossless (de)serialization of grid results for the journal
//! and the result cache.

use noclat::{AppLatency, LatencyTracker, SegmentRow};
use noclat_noc::LoadPoint;
use noclat_sim::stats::{Histogram, RunningMean};

use crate::json::Json;

/// Lossless serialization of one grid cell's result, used by the `--resume`
/// journal and the `sweepd` result cache. The contract is exactness:
/// `decode_cell(encode_cell(x)) == x` bit-for-bit, so a resumed sweep
/// renders byte-identical reports. Floats are therefore encoded as their
/// IEEE-754 bit patterns ([`f64::to_bits`] as [`Json::Uint`]), never as
/// decimal text.
///
/// `decode_cell` returns `None` on any shape mismatch — the sweep layer
/// treats an undecodable record as absent and recomputes the cell.
pub trait CellCodec: Sized {
    /// Encodes the cell value as a JSON tree.
    fn encode_cell(&self) -> Json;
    /// Decodes a cell value; `None` if `json` does not have the right shape.
    fn decode_cell(json: &Json) -> Option<Self>;
}

fn dec_u64(json: &Json) -> Option<u64> {
    match json {
        Json::Uint(v) => Some(*v),
        _ => None,
    }
}

impl CellCodec for u64 {
    fn encode_cell(&self) -> Json {
        Json::Uint(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)
    }
}

impl CellCodec for u32 {
    fn encode_cell(&self) -> Json {
        Json::Uint(u64::from(*self))
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)?.try_into().ok()
    }
}

impl CellCodec for usize {
    fn encode_cell(&self) -> Json {
        Json::Uint(*self as u64)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json)?.try_into().ok()
    }
}

impl CellCodec for i64 {
    fn encode_cell(&self) -> Json {
        Json::Int(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        // Non-negative integers parse back as Uint; accept both renderings.
        match json {
            Json::Int(v) => Some(*v),
            Json::Uint(v) => (*v).try_into().ok(),
            _ => None,
        }
    }
}

impl CellCodec for bool {
    fn encode_cell(&self) -> Json {
        Json::Bool(*self)
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl CellCodec for f64 {
    fn encode_cell(&self) -> Json {
        Json::Uint(self.to_bits())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        dec_u64(json).map(f64::from_bits)
    }
}

impl CellCodec for String {
    fn encode_cell(&self) -> Json {
        Json::Str(self.clone())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
}

impl<T: CellCodec> CellCodec for Vec<T> {
    fn encode_cell(&self) -> Json {
        Json::Arr(self.iter().map(CellCodec::encode_cell).collect())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        match json {
            Json::Arr(items) => items.iter().map(T::decode_cell).collect(),
            _ => None,
        }
    }
}

impl CellCodec for [u64; 5] {
    fn encode_cell(&self) -> Json {
        Json::Arr(self.iter().map(|&v| Json::Uint(v)).collect())
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        Vec::<u64>::decode_cell(json)?.try_into().ok()
    }
}

/// Tuples encode positionally as arrays.
macro_rules! tuple_codec {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: CellCodec),+> CellCodec for ($($name,)+) {
            fn encode_cell(&self) -> Json {
                Json::Arr(vec![$(self.$idx.encode_cell()),+])
            }
            fn decode_cell(json: &Json) -> Option<Self> {
                let Json::Arr(items) = json else { return None };
                let mut it = items.iter();
                let out = ($($name::decode_cell(it.next()?)?,)+);
                if it.next().is_some() {
                    return None;
                }
                Some(out)
            }
        }
    };
}

tuple_codec!(A: 0, B: 1);
tuple_codec!(A: 0, B: 1, C: 2);
tuple_codec!(A: 0, B: 1, C: 2, D: 3);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

impl CellCodec for Histogram {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            Json::Uint(self.bin_width()),
            self.bins().to_vec().encode_cell(),
            Json::Uint(self.count()),
            Json::Uint(self.sum()),
            Json::Uint(self.max()),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (bin_width, bins, count, sum, max) =
            <(u64, Vec<u64>, u64, u64, u64)>::decode_cell(json)?;
        // Guard from_raw_parts' panics: a record failing these is corrupt
        // and the cell recomputes.
        if bin_width == 0 || bins.is_empty() {
            return None;
        }
        Some(Histogram::from_raw_parts(bin_width, bins, count, sum, max))
    }
}

impl CellCodec for RunningMean {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![Json::Uint(self.count()), self.sum().encode_cell()])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (count, sum) = <(u64, f64)>::decode_cell(json)?;
        Some(RunningMean::from_parts(count, sum))
    }
}

impl CellCodec for SegmentRow {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            Json::Uint(self.count),
            Json::Arr(self.sums.iter().map(|s| s.encode_cell()).collect()),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (count, sums) = <(u64, Vec<f64>)>::decode_cell(json)?;
        Some(SegmentRow {
            count,
            sums: sums.try_into().ok()?,
        })
    }
}

impl CellCodec for AppLatency {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            self.total.encode_cell(),
            self.so_far.encode_cell(),
            self.rows().to_vec().encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (total, so_far, rows) = <(Histogram, Histogram, Vec<SegmentRow>)>::decode_cell(json)?;
        // from_parts asserts the standard geometry; pre-check so a corrupt
        // record recomputes instead of panicking.
        if rows.len() != AppLatency::empty().rows().len() {
            return None;
        }
        Some(AppLatency::from_parts(total, so_far, rows))
    }
}

impl CellCodec for LatencyTracker {
    fn encode_cell(&self) -> Json {
        let apps: Vec<AppLatency> = (0..self.num_apps()).map(|c| self.app(c).clone()).collect();
        let (expedited, normal) = self.return_legs();
        Json::Arr(vec![
            apps.encode_cell(),
            expedited.encode_cell(),
            normal.encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (apps, expedited, normal) =
            <(Vec<AppLatency>, RunningMean, RunningMean)>::decode_cell(json)?;
        Some(LatencyTracker::from_parts(apps, expedited, normal))
    }
}

impl CellCodec for LoadPoint {
    fn encode_cell(&self) -> Json {
        Json::Arr(vec![
            self.offered_load.encode_cell(),
            Json::Uint(self.delivered),
            self.avg_latency.encode_cell(),
            self.backlog.encode_cell(),
        ])
    }
    fn decode_cell(json: &Json) -> Option<Self> {
        let (offered_load, delivered, avg_latency, backlog) =
            <(f64, u64, f64, usize)>::decode_cell(json)?;
        Some(LoadPoint {
            offered_load,
            delivered,
            avg_latency,
            backlog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: CellCodec + PartialEq + std::fmt::Debug>(value: &T) {
        let encoded = value.encode_cell().to_compact_string();
        let decoded = T::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(&decoded, value, "codec must roundtrip exactly");
    }

    #[test]
    fn cell_codec_roundtrips_primitives_exactly() {
        roundtrip(&42u64);
        roundtrip(&7u32);
        roundtrip(&9usize);
        roundtrip(&-3i64);
        roundtrip(&true);
        roundtrip(&"hello\nworld".to_string());
        roundtrip(&vec![1.5f64, 2.25, f64::MIN_POSITIVE]);
        roundtrip(&[1u64, 2, 3, 4, 5]);
        roundtrip(&(1u64, 2.5f64, "x".to_string()));
        roundtrip(&(1u64, 2.0f64, 3u64, 4u64, 5u64, 6u64, 7u64));
        // The exactness cases decimal rendering would lose:
        roundtrip(&0.1f64);
        roundtrip(&(-0.0f64));
        let nan = f64::NAN;
        let bits = nan.encode_cell();
        assert_eq!(f64::decode_cell(&bits).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn cell_codec_roundtrips_metric_containers_exactly() {
        let mut h = Histogram::new(25, 4000);
        for v in [10, 200, 480, 999, 50_000] {
            h.record(v);
        }
        roundtrip(&h);
        let mut m = RunningMean::new();
        m.record(0.1);
        m.record(123.456);
        roundtrip(&m);
        roundtrip(&SegmentRow {
            count: 3,
            sums: [0.1, 2.0, 3.5, 4.25, 5.0],
        });
        roundtrip(&LoadPoint {
            offered_load: 0.3,
            delivered: 1234,
            avg_latency: 56.789,
            backlog: 42,
        });

        let mut tracker = LatencyTracker::new(2);
        tracker.record_so_far(0, 150);
        tracker.record_return_leg(true, 80);
        tracker.record_return_leg(false, 33);
        let encoded = tracker.encode_cell().to_compact_string();
        let decoded = LatencyTracker::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.num_apps(), 2);
        assert_eq!(decoded.return_leg_means(), tracker.return_leg_means());
        assert_eq!(decoded.app(0).so_far, tracker.app(0).so_far);
        assert_eq!(decoded.app(1).total, tracker.app(1).total);

        let app = decoded.app(0).clone();
        let encoded = app.encode_cell().to_compact_string();
        let decoded = AppLatency::decode_cell(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.so_far, app.so_far);
        assert_eq!(decoded.breakdown(), app.breakdown());
    }

    #[test]
    fn cell_codec_rejects_shape_mismatches() {
        assert!(u64::decode_cell(&Json::Str("nope".into())).is_none());
        assert!(<(u64, u64)>::decode_cell(&Json::Arr(vec![Json::Uint(1)])).is_none());
        assert!(
            <(u64, u64)>::decode_cell(&Json::Arr(vec![
                Json::Uint(1),
                Json::Uint(2),
                Json::Uint(3)
            ]))
            .is_none(),
            "extra elements are a shape mismatch"
        );
        assert!(Histogram::decode_cell(&Json::parse("[0,[],0,0,0]").unwrap()).is_none());
        assert!(AppLatency::decode_cell(&Json::parse("[1,2,3]").unwrap()).is_none());
    }
}
