//! `sweepd` — the persistent sweep daemon.
//!
//! Serves simulation cells over a line-delimited JSON protocol (see
//! `noclat_engine::server` for the schema), deduplicating identical
//! in-flight requests and answering repeats from the content-addressed
//! result cache without recompute.
//!
//! ```text
//! sweepd --listen 127.0.0.1:0 --cache /tmp/sweepd.nj --jobs 4
//! ```
//!
//! The bound address is printed to stdout (`sweepd: listening on …`) so
//! scripts using port 0 can discover the port; everything else goes to
//! stderr.

use std::path::PathBuf;
use std::time::Duration;

use noclat_engine::{ExitCode, ServerConfig, SweepServer};

const USAGE: &str =
    "sweepd [--listen ADDR:PORT] [--cache PATH] [--jobs N] [--job-timeout SECS] [--retries N]";

struct Args {
    listen: String,
    cache: PathBuf,
    config: ServerConfig,
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {USAGE}");
    ExitCode::Config.exit();
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:7777".to_string(),
        cache: PathBuf::from("sweepd-cache.nj"),
        config: ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            ..ServerConfig::default()
        },
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if matches!(key, "--help" | "-h") {
            eprintln!("usage: {USAGE}");
            std::process::exit(0);
        }
        let Some(value) = argv.get(i + 1) else {
            fail_usage(&format!("{key} needs a value"));
        };
        match key {
            "--listen" => args.listen = value.clone(),
            "--cache" => args.cache = PathBuf::from(value),
            "--jobs" => {
                args.config.workers = value
                    .parse()
                    .unwrap_or_else(|e| fail_usage(&format!("--jobs: {e}")));
                if args.config.workers == 0 {
                    fail_usage("--jobs must be at least 1");
                }
            }
            "--job-timeout" => {
                let secs: f64 = value
                    .parse()
                    .unwrap_or_else(|e| fail_usage(&format!("--job-timeout: {e}")));
                if !(secs > 0.0 && secs.is_finite()) {
                    fail_usage("--job-timeout must be a positive number of seconds");
                }
                args.config.retry.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--retries" => {
                args.config.retry.retries = value
                    .parse()
                    .unwrap_or_else(|e| fail_usage(&format!("--retries: {e}")));
            }
            other => fail_usage(&format!("unknown argument {other}")),
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let server = match SweepServer::bind(&args.listen, &args.cache, &args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::Config.exit();
        }
    };
    // Stdout, single line, parse-friendly: scripts binding port 0 read the
    // actual address from here. Flushed explicitly — stdout is block-
    // buffered under a pipe, and the whole point is that a script reads
    // this line before the daemon blocks in accept.
    println!("sweepd: listening on {}", server.local_addr());
    {
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    eprintln!(
        "sweepd: cache {} with {} worker(s)",
        args.cache.display(),
        args.config.workers
    );
    if let Err(e) = server.serve() {
        eprintln!("error: {e}");
        ExitCode::Generic.exit();
    }
}
