//! Shared command-line surface of every sweep binary, and the fingerprint
//! that content-addresses a sweep's results.

use std::path::PathBuf;
use std::time::Duration;

use noclat::{KernelKind, PolicyOverride, RunLengths, SystemConfig, TopologyOverride};
use noclat_sim::journal::fnv1a64;
use noclat_sim::pool::RetryPolicy;

use crate::exit::exit_code;

/// Number of replicate shards the distribution harnesses (fig04/05/06/09/12)
/// split their measurement into. Each shard is a full, independently seeded
/// run; shard statistics merge exactly, so more shards mean both more
/// parallelism and more samples.
pub const DEFAULT_SHARDS: u64 = 8;

/// Command-line arguments shared by every sweep binary.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Worker threads for the job grid (`--jobs N`; defaults to the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Where to write the JSON report (`--json PATH`), if anywhere.
    pub json: Option<PathBuf>,
    /// Base RNG seed for the sweep (`--seed N`); per-job seeds derive from
    /// it via [`crate::job_seed`].
    pub seed: u64,
    /// Simulation window (`quick`/`--quick` shrink it; `--warmup N` and
    /// `--measure N` override individual components).
    pub lengths: RunLengths,
    /// Prioritization-policy overrides
    /// (`--policy req=<name>,resp=<name>,arb=<name>`), applied to every
    /// configuration the sweep builds via [`SweepArgs::apply_policy`].
    pub policy: PolicyOverride,
    /// Simulation kernel (`--kernel cycle|event`). Kernels are bit-identical
    /// by contract (the equivalence suite enforces it), so this only trades
    /// wall-clock time; reports are comparable across kernels.
    pub kernel: KernelKind,
    /// Fabric override (`--topology NAME[:PARAM=V,...]`), applied to every
    /// configuration the sweep builds via [`SweepArgs::apply_policy`]. Unlike
    /// `--kernel`, a topology change *does* change results, so it is part of
    /// the sweep fingerprint.
    pub topology: TopologyOverride,
    /// Journal path for durable checkpoint/resume (`--resume PATH`). Cells
    /// already present in the journal are restored instead of re-run; cells
    /// completing during this run are appended as they finish.
    pub resume: Option<PathBuf>,
    /// Per-job wall-clock deadline (`--job-timeout SECS`); overrunning jobs
    /// are cancelled cooperatively and reported as `JobTimeout`.
    pub job_timeout: Option<Duration>,
    /// Retries with exponential backoff for panicking/timing-out jobs
    /// (`--retries N`; default 0 = fail immediately).
    pub retries: u32,
    /// Two-tier search (`--prune off|analytic:top=K`): run the analytic
    /// latency model over the grid first and submit only the top-K cells
    /// (plus golden-pinned cells) to the cycle-accurate pool. Changes which
    /// cells *run*, never what a run cell contains, but is still part of
    /// the sweep fingerprint so a pruned journal never resumes an unpruned
    /// sweep (or vice versa).
    pub prune: PruneSpec,
}

/// The `--prune` strategy of a two-tier sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneSpec {
    /// Cycle-simulate every cell (the default).
    #[default]
    Off,
    /// Rank cells by the closed-form estimator (`noclat-analytic`) and
    /// keep the `top` cells with the lowest predicted mean latency, plus
    /// every golden-pinned cell and every cell the harness supplied no
    /// model inputs for.
    Analytic {
        /// Non-golden cells to keep.
        top: usize,
    },
}

impl PruneSpec {
    /// Parses `off` or `analytic:top=K`.
    pub fn parse(s: &str) -> Result<PruneSpec, String> {
        if s == "off" {
            return Ok(PruneSpec::Off);
        }
        if let Some(rest) = s.strip_prefix("analytic:top=") {
            let top = rest
                .parse()
                .map_err(|e| format!("--prune: top={rest}: {e}"))?;
            return Ok(PruneSpec::Analytic { top });
        }
        Err(format!(
            "--prune: unknown spec {s:?} (expected off or analytic:top=K)"
        ))
    }

    /// Whether any pruning strategy is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        *self != PruneSpec::Off
    }
}

impl std::fmt::Display for PruneSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneSpec::Off => f.write_str("off"),
            PruneSpec::Analytic { top } => write!(f, "analytic:top={top}"),
        }
    }
}

/// Flags accepted by [`SweepArgs::parse`], for inclusion in usage strings.
pub const SWEEP_USAGE: &str = "[--jobs N] [--json PATH] [--seed N] [--warmup N] [--measure N] \
     [--policy req=NAME,resp=NAME,arb=NAME] [--kernel cycle|event] \
     [--topology mesh|torus|cmesh|express[:c=N,skip=N,mc=corner|edge|center]] \
     [--resume PATH] [--job-timeout SECS] [--retries N] \
     [--prune off|analytic:top=K] [quick]";

impl SweepArgs {
    fn defaults() -> Self {
        SweepArgs {
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            json: None,
            seed: SystemConfig::baseline_32().seed,
            lengths: RunLengths::standard(),
            policy: PolicyOverride::default(),
            kernel: KernelKind::default(),
            topology: TopologyOverride::default(),
            resume: None,
            job_timeout: None,
            retries: 0,
            prune: PruneSpec::Off,
        }
    }

    /// Parses `std::env::args`, accepting only the shared sweep flags.
    ///
    /// Exits with status 2 (printing `usage`) on an unknown argument, and
    /// with status 0 on `--help`.
    #[must_use]
    pub fn parse(usage: &str) -> SweepArgs {
        let (args, rest) = Self::parse_with_rest(usage);
        if let Some(unknown) = rest.first() {
            eprintln!("error: unknown argument {unknown}");
            eprintln!("usage: {usage}");
            std::process::exit(2);
        }
        args
    }

    /// Parses `std::env::args`, returning unrecognized arguments for the
    /// binary to interpret (used by `faultsim`/`simulate`, which add their
    /// own flags on top of the shared set).
    #[must_use]
    pub fn parse_with_rest(usage: &str) -> (SweepArgs, Vec<String>) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_argv(&argv) {
            Ok(pair) => pair,
            Err(e) => {
                let help = e == "help";
                if !help {
                    eprintln!("error: {e}");
                }
                eprintln!("usage: {usage}");
                std::process::exit(if help { 0 } else { 2 });
            }
        }
    }

    /// Pure parsing core (testable without process state).
    pub fn parse_argv(argv: &[String]) -> Result<(SweepArgs, Vec<String>), String> {
        let mut args = Self::defaults();
        let mut quick = std::env::var("NOCLAT_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut warmup_override = None;
        let mut measure_override = None;
        let mut rest = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let value = || -> Result<&String, String> {
                argv.get(i + 1)
                    .ok_or_else(|| format!("{key} needs a value"))
            };
            match key {
                "--jobs" => {
                    args.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?;
                    if args.jobs == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    i += 2;
                }
                "--json" => {
                    args.json = Some(PathBuf::from(value()?));
                    i += 2;
                }
                "--seed" => {
                    args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value()?.parse().map_err(|e| format!("--warmup: {e}"))?);
                    i += 2;
                }
                "--measure" => {
                    let m: u64 = value()?.parse().map_err(|e| format!("--measure: {e}"))?;
                    if m == 0 {
                        return Err("--measure must be at least 1 cycle".into());
                    }
                    measure_override = Some(m);
                    i += 2;
                }
                "--policy" => {
                    // PolicyOverride::parse already prefixes its errors
                    // with "--policy:".
                    args.policy = PolicyOverride::parse(value()?)?;
                    i += 2;
                }
                "--kernel" => {
                    // KernelKind::parse already prefixes its errors with
                    // "--kernel:".
                    args.kernel = KernelKind::parse(value()?)?;
                    i += 2;
                }
                "--topology" => {
                    // TopologyOverride::parse already prefixes its errors
                    // with "--topology:".
                    args.topology = TopologyOverride::parse(value()?)?;
                    i += 2;
                }
                "--resume" => {
                    args.resume = Some(PathBuf::from(value()?));
                    i += 2;
                }
                "--job-timeout" => {
                    let secs: f64 = value()?
                        .parse()
                        .map_err(|e| format!("--job-timeout: {e}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err("--job-timeout must be a positive number of seconds".into());
                    }
                    args.job_timeout = Some(Duration::from_secs_f64(secs));
                    i += 2;
                }
                "--retries" => {
                    args.retries = value()?.parse().map_err(|e| format!("--retries: {e}"))?;
                    i += 2;
                }
                "--prune" => {
                    // PruneSpec::parse already prefixes its errors with
                    // "--prune:".
                    args.prune = PruneSpec::parse(value()?)?;
                    i += 2;
                }
                "quick" | "--quick" => {
                    quick = true;
                    i += 1;
                }
                "--help" | "-h" => return Err("help".into()),
                _ => {
                    rest.push(argv[i].clone());
                    i += 1;
                }
            }
        }
        if quick {
            args.lengths = RunLengths::quick();
        }
        if let Some(w) = warmup_override {
            args.lengths.warmup = w;
        }
        if let Some(m) = measure_override {
            args.lengths.measure = m;
        }
        Ok((args, rest))
    }

    /// Applies this sweep's `--policy`, `--kernel` and `--topology`
    /// overrides to a configuration the harness is about to run. Call on
    /// every cell of the grid so the overrides reach scheme variants and
    /// knob sweeps alike; a sweep run without any of the flags is untouched.
    pub fn apply_policy(&self, cfg: &mut SystemConfig) {
        self.policy.apply(cfg);
        cfg.kernel = self.kernel;
        self.topology.apply(cfg);
        // A `--topology` override can produce a config the grid can't
        // satisfy (a concentration that doesn't tile it, a torus without
        // dateline VCs). That's a usage error, not a cell panic — surface
        // the typed ConfigError and exit before any cell runs.
        if !self.topology.is_empty() {
            if let Err(e) = cfg.validate() {
                eprintln!("error: --topology: {e}");
                std::process::exit(exit_code::CONFIG);
            }
        }
    }

    /// The pool deadline/retry budget these arguments request.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            timeout: self.job_timeout,
            retries: self.retries,
            ..RetryPolicy::default()
        }
    }
}

/// Fingerprint of everything that determines a sweep's *results*: seed,
/// simulation window, policy overrides, kernel and topology override.
/// Arguments that only affect execution (worker count, output paths,
/// deadlines, retries) are deliberately excluded — a journal written with
/// `--jobs 8` resumes fine under `--jobs 1`, and a deadline changes which
/// cells *complete*, never what a completed cell contains.
#[must_use]
pub fn sweep_fingerprint(args: &SweepArgs) -> u64 {
    let mut text = format!(
        "seed={} warmup={} measure={} policy={:?} kernel={} topology={:?}",
        args.seed,
        args.lengths.warmup,
        args.lengths.measure,
        args.policy,
        args.kernel.name(),
        args.topology,
    );
    // Pruning decides which cells exist, so a pruned journal must never
    // satisfy an unpruned resume. Appended only when enabled to keep every
    // pre-pruning journal's fingerprint valid.
    if args.prune.enabled() {
        text.push_str(&format!(" prune={}", args.prune));
    }
    fnv1a64(text.as_bytes())
}

/// Content address of one sweep cell: the sweep fingerprint combined with
/// the cell's label (labels are unique within a harness by construction).
#[must_use]
pub fn job_key(fingerprint: u64, label: &str) -> u64 {
    fnv1a64(format!("{fingerprint:016x}/{label}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        assert!(args.jobs >= 1);
        assert!(args.json.is_none());
        assert_eq!(args.lengths, RunLengths::standard());
        assert!(rest.is_empty());

        let (args, rest) = SweepArgs::parse_argv(&argv(&[
            "--jobs",
            "4",
            "--json",
            "/tmp/x.json",
            "--seed",
            "7",
            "quick",
            "--measure",
            "123",
            "--extra",
        ]))
        .unwrap();
        assert_eq!(args.jobs, 4);
        assert_eq!(args.json.as_deref(), Some(Path::new("/tmp/x.json")));
        assert_eq!(args.seed, 7);
        assert_eq!(args.lengths.warmup, RunLengths::quick().warmup);
        assert_eq!(args.lengths.measure, 123);
        assert_eq!(rest, vec!["--extra".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_values() {
        assert!(SweepArgs::parse_argv(&argv(&["--jobs", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--jobs"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--measure", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--seed", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy", "req=donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--policy"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel", "donkey"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--kernel"])).is_err());
        assert_eq!(
            SweepArgs::parse_argv(&argv(&["--help"])).unwrap_err(),
            "help"
        );
    }

    #[test]
    fn parse_policy_override_and_apply() {
        let (args, rest) =
            SweepArgs::parse_argv(&argv(&["--policy", "req=oldest-first,resp=static"])).unwrap();
        assert!(rest.is_empty());
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.policy.request.as_deref(), Some("oldest-first"));
        assert_eq!(cfg.policy.response.as_deref(), Some("static"));
        cfg.validate().expect("override produces a valid config");
        // No --policy: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn parse_kernel_override_and_apply() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&["--kernel", "event"])).unwrap();
        assert!(rest.is_empty());
        assert_eq!(args.kernel, KernelKind::Event);
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg.kernel, KernelKind::Event);
        // No --kernel: configurations pass through untouched.
        let (args, _) = SweepArgs::parse_argv(&argv(&[])).unwrap();
        let mut cfg = SystemConfig::baseline_32();
        args.apply_policy(&mut cfg);
        assert_eq!(cfg, SystemConfig::baseline_32());
    }

    #[test]
    fn parse_resilience_flags() {
        let (args, rest) = SweepArgs::parse_argv(&argv(&[
            "--resume",
            "/tmp/run.nj",
            "--job-timeout",
            "2.5",
            "--retries",
            "3",
        ]))
        .unwrap();
        assert!(rest.is_empty());
        assert_eq!(args.resume.as_deref(), Some(Path::new("/tmp/run.nj")));
        assert_eq!(args.job_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(args.retries, 3);
        let policy = args.retry_policy();
        assert_eq!(policy.timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(policy.retries, 3);

        assert!(SweepArgs::parse_argv(&argv(&["--resume"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "0"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "-1"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--job-timeout", "inf"])).is_err());
        assert!(SweepArgs::parse_argv(&argv(&["--retries", "-1"])).is_err());
    }

    #[test]
    fn fingerprint_tracks_results_not_execution() {
        let base = SweepArgs::parse_argv(&argv(&[])).unwrap().0;
        let fp = sweep_fingerprint(&base);
        assert_eq!(fp, sweep_fingerprint(&base));
        // Execution-only knobs leave the fingerprint alone.
        let (exec, _) = SweepArgs::parse_argv(&argv(&[
            "--jobs",
            "3",
            "--json",
            "/tmp/x.json",
            "--resume",
            "/tmp/x.nj",
            "--job-timeout",
            "1",
            "--retries",
            "2",
        ]))
        .unwrap();
        assert_eq!(fp, sweep_fingerprint(&exec));
        // Result-determining knobs change it.
        let (seeded, _) = SweepArgs::parse_argv(&argv(&["--seed", "999"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&seeded));
        let (windowed, _) = SweepArgs::parse_argv(&argv(&["--measure", "12345"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&windowed));
        let (polic, _) = SweepArgs::parse_argv(&argv(&["--policy", "req=oldest-first"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&polic));
        let (topo, _) = SweepArgs::parse_argv(&argv(&["--topology", "torus"])).unwrap();
        assert_ne!(fp, sweep_fingerprint(&topo));
        let (skipped, _) = SweepArgs::parse_argv(&argv(&["--topology", "express:skip=4"])).unwrap();
        assert_ne!(sweep_fingerprint(&topo), sweep_fingerprint(&skipped));
        // Labels split keys under one fingerprint.
        assert_ne!(job_key(fp, "cell-a"), job_key(fp, "cell-b"));
        assert_eq!(job_key(fp, "cell-a"), job_key(fp, "cell-a"));
    }
}
