//! Shared JSON-report helpers for the sweep binaries.

use std::path::Path;

use crate::args::SweepArgs;
use crate::json::{Json, Obj};

/// JSON rendering of a latency histogram: the five-number summary plus the
/// non-empty PDF bins (center → fraction), in bin order.
#[must_use]
pub fn histogram_json(h: &noclat_sim::stats::Histogram) -> Json {
    let s = h.summary();
    let pdf: Vec<Json> = h
        .pdf_points()
        .iter()
        .filter(|(_, f)| *f > 0.0)
        .map(|&(center, frac)| {
            Obj::new()
                .field("center", center)
                .field("frac", frac)
                .build()
        })
        .collect();
    Obj::new()
        .field("count", s.count)
        .field("mean", s.mean)
        .field("p50", s.p50)
        .field("p90", s.p90)
        .field("p99", s.p99)
        .field("max", s.max)
        .field("pdf", Json::Arr(pdf))
        .build()
}

/// Standard envelope for a sweep's JSON report: the harness name, the seed
/// and simulation window it ran with, and the harness-specific body. Worker
/// count is deliberately excluded so reports are comparable across `--jobs`.
#[must_use]
pub fn report(name: &str, args: &SweepArgs, body: Json) -> Json {
    Obj::new()
        .field("harness", name)
        .field("seed", args.seed)
        .field("warmup", args.lengths.warmup)
        .field("measure", args.lengths.measure)
        .field("kernel", args.kernel.name())
        .field("results", body)
        .build()
}

/// Writes the report to `--json PATH` when requested (noting it on stderr).
/// Call at the end of every sweep binary.
pub fn finish(args: &SweepArgs, report: &Json) {
    if let Some(path) = &args.json {
        if let Err(e) = write_json_file(path, report) {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {}", path.display());
    }
}

/// Writes a JSON value to a file.
pub fn write_json_file(path: &Path, json: &Json) -> std::io::Result<()> {
    std::fs::write(path, json.to_json_string())
}
