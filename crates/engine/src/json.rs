//! An ordered, dependency-free JSON value with a hardened parser.
//!
//! Object fields keep their insertion order, and all numeric formatting is
//! the standard library's deterministic shortest-roundtrip rendering, so
//! serializing the same value always yields the same bytes — the property
//! the `--jobs N` equivalence checks pin.
//!
//! The parser guards both the `--resume` journal and the `sweepd` network
//! protocol, so it is deliberately strict: nesting is bounded (a hostile
//! `[[[[…` must not overflow the stack) and duplicate object keys are
//! rejected (a request whose meaning depends on which duplicate wins is a
//! protocol error, not a value).

/// Maximum container nesting depth [`Json::parse`] accepts. Nothing the
/// engine serializes comes near this; the bound exists so untrusted network
/// input cannot drive the recursive-descent parser into a stack overflow.
pub const MAX_PARSE_DEPTH: usize = 64;

/// An ordered, dependency-free JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Uint(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with explicit field order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Uint(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Uint(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Uint(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builder for [`Json::Obj`] with ergonomic field chaining.
#[derive(Debug, Default)]
pub struct Obj(Vec<(String, Json)>);

impl Obj {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Json {
    fn render(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Serializes to a pretty-printed, deterministic JSON string (trailing
    /// newline included, as written to report files).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to a single-line, whitespace-free string (the journal's
    /// payload format and the `sweepd` wire format — record payloads and
    /// protocol frames must not contain newlines).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the inverse of the serializers, used to
    /// decode journal payloads and `sweepd` protocol frames).
    ///
    /// Unsigned integer literals parse as [`Json::Uint`], negative integers
    /// as [`Json::Int`], anything fractional or exponential as
    /// [`Json::Num`] — matching what the serializers emit, so
    /// `parse(render(x)) == x` for every value the codec produces.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error. Containers
    /// nested deeper than [`MAX_PARSE_DEPTH`] and objects with duplicate
    /// keys are syntax errors too: both would be silently accepted by a
    /// laxer parser, and neither can be produced by the serializers.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup on an object; `None` for non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Recursive-descent parser over raw bytes (JSON structure is ASCII; string
/// contents pass through as UTF-8).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
        }
    }

    fn enter(&self, depth: usize) -> Result<usize, String> {
        if depth >= MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(depth + 1)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        let depth = self.enter(depth)?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        let depth = self.enter(depth)?;
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth)?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
            .char_indices();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += off + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {h:?} in \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                        );
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|(_, c)| c)));
                    }
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if fractional {
            text.parse()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else if text.starts_with('-') {
            text.parse()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse()
                .map(Json::Uint)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parse_roundtrips_serializers() {
        let j = Obj::new()
            .field("name", "fig\"09\"\n\t\\")
            .field("count", 3u64)
            .field("neg", -4i64)
            .field("bits", std::f64::consts::PI.to_bits())
            .field("flag", true)
            .field("nothing", Json::Null)
            .field("cells", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]))
            .field("nested", Obj::new().field("k", "v").build())
            .build();
        assert_eq!(Json::parse(&j.to_compact_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_json_string()).unwrap(), j);
        assert!(!j.to_compact_string().contains('\n'));
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("123 45").is_err());
        assert!(Json::parse("nulll").is_err());
    }

    #[test]
    fn json_parse_bounds_nesting_depth() {
        // At the limit: fine. One deeper: typed refusal, no stack overflow.
        let ok = format!(
            "{}{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        let deep = format!(
            "{}{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A hostile prefix with no closers must fail the same way.
        assert!(Json::parse(&"[".repeat(10_000)).is_err());
        assert!(Json::parse(&"{\"k\":".repeat(10_000)).is_err());
    }

    #[test]
    fn json_parse_rejects_duplicate_keys() {
        let err = Json::parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
        // Distinct keys at the same level are of course fine, and the same
        // key may recur at different levels.
        assert!(Json::parse(r#"{"a":1,"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn json_serialization_is_deterministic_and_escaped() {
        let j = Obj::new()
            .field("name", "fig\"09\"\n")
            .field("count", 3u64)
            .field("mean", 282.5)
            .field("whole", 2.0)
            .field("nan", f64::NAN)
            .field("flag", true)
            .field("cells", vec![1u64, 2, 3])
            .field("empty", Json::Arr(vec![]))
            .build();
        let a = j.to_json_string();
        assert_eq!(a, j.to_json_string());
        assert!(a.contains("\"fig\\\"09\\\"\\n\""));
        assert!(a.contains("\"mean\": 282.5"));
        assert!(a.contains("\"whole\": 2"));
        assert!(a.contains("\"nan\": null"));
        assert!(a.ends_with("}\n"));
        // Field order is insertion order, not alphabetical.
        assert!(a.find("name").unwrap() < a.find("count").unwrap());
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::parse(r#"{"op":"submit","n":3,"deep":{"flag":true}}"#).unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(
            j.get("deep")
                .and_then(|d| d.get("flag"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(j.get("missing").is_none());
        assert!(Json::Uint(1).get("x").is_none());
    }
}
