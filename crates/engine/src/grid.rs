//! Grid execution: fan a sweep's jobs out over the supervised pool, with
//! optional journal resume and analytic two-tier pruning.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use noclat::{alone_ipc, Journal, KernelKind, PolicyConfig, SimError, SystemConfig};
use noclat_analytic::AnalyticModel;
use noclat_sim::journal::{self, fnv1a64};
use noclat_sim::pool::{job_seed, run_jobs_supervised, Job};
use noclat_workloads::SpecApp;

use crate::args::{job_key, sweep_fingerprint, PruneSpec, SweepArgs};
use crate::codec::CellCodec;
use crate::exit::ExitCode;
use crate::json::Json;

/// Runs a job grid under the sweep's worker budget and returns results in
/// job order, aborting the process with a per-job diagnostic if any job
/// failed.
///
/// The abort path reports *every* failing cell as a quarantine list (a
/// panicking cell does not hide its siblings' outcomes) and exits with the
/// most severe applicable [`ExitCode`]: panics beat timeouts beat the
/// generic failure code. A journal problem (`--resume` mismatch, IO
/// failure) is a usage error and exits with [`ExitCode::Config`].
#[must_use]
pub fn run_grid<T: Send + CellCodec>(args: &SweepArgs, jobs: Vec<Job<T>>) -> Vec<T> {
    // A harness that fans out through this entry point has no model inputs
    // per cell; accepting `--prune` here would silently run everything.
    if args.prune.enabled() {
        eprintln!("error: this binary does not support --prune");
        ExitCode::Config.exit();
    }
    let results = match try_run_grid(args, jobs) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::Config.exit();
        }
    };
    let mut quarantined = Vec::new();
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(e) => quarantined.push(e),
        }
    }
    exit_on_quarantine(&quarantined);
    out
}

/// Reports a non-empty quarantine list on stderr and exits with the most
/// severe applicable code; returns silently when nothing was quarantined.
fn exit_on_quarantine(quarantined: &[SimError]) {
    if quarantined.is_empty() {
        return;
    }
    eprintln!("sweep: {} cell(s) quarantined:", quarantined.len());
    for e in quarantined {
        eprintln!("  error: {e}");
    }
    match ExitCode::from_quarantined(quarantined) {
        // from_quarantined maps an empty list to Success, which the guard
        // above already excluded; a non-empty list is at least Generic.
        ExitCode::Success => ExitCode::Generic.exit(),
        code => code.exit(),
    }
}

/// Like [`run_grid`], but surfaces failures as values instead of aborting
/// (the library entry point the tests drive): the outer `Err` is a journal
/// problem that prevented the sweep from running at all, the inner ones are
/// quarantined cells.
///
/// Every job gets a content address (`[config <hash>]` in error reports,
/// the record key in the journal). With `--resume`, cells whose records are
/// already journaled are decoded instead of re-run — the codec roundtrip is
/// exact by construction, so resumed output is byte-identical — and each
/// cell completing in this run is appended (and flushed) the moment it
/// finishes, making progress durable against SIGKILL.
///
/// # Errors
///
/// [`SimError::Journal`] when the `--resume` journal cannot be opened,
/// belongs to a sweep with different arguments, or is not a journal at all.
pub fn try_run_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    jobs: Vec<Job<T>>,
) -> Result<Vec<Result<T, SimError>>, SimError> {
    let fingerprint = sweep_fingerprint(args);
    let keys: Vec<u64> = jobs
        .iter()
        .map(|j| job_key(fingerprint, j.label()))
        .collect();
    let jobs: Vec<Job<T>> = jobs
        .into_iter()
        .zip(&keys)
        .map(|(j, key)| j.config_hash(format!("{key:016x}")))
        .collect();
    let n = jobs.len();
    let policy = args.retry_policy();

    let Some(path) = &args.resume else {
        if n > 1 {
            eprintln!("sweep: {} jobs on {} worker(s)", n, args.jobs.clamp(1, n));
        }
        return Ok(run_jobs_supervised(args.jobs, jobs, &policy, None));
    };

    let (journal, records) = Journal::open(path, fingerprint)?;
    let cache = journal::as_map(records);
    // A record that fails to decode (format drift, hand-edited file) is not
    // an error: the cell is simply recomputed and its record rewritten.
    let mut slots: Vec<Option<Result<T, SimError>>> = keys
        .iter()
        .map(|key| {
            let payload = cache.get(key)?;
            let value = T::decode_cell(&Json::parse(payload).ok()?)?;
            Some(Some(Ok(value)))
        })
        .map(Option::flatten)
        .collect();
    let pending: Vec<(usize, Job<T>)> = jobs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();
    let resumed = n - pending.len();
    if resumed > 0 {
        eprintln!(
            "sweep: resumed {resumed} of {n} cell(s) from {}",
            path.display()
        );
    }
    if pending.len() > 1 {
        eprintln!(
            "sweep: {} jobs on {} worker(s)",
            pending.len(),
            args.jobs.clamp(1, pending.len())
        );
    }
    let indices: Vec<usize> = pending.iter().map(|(i, _)| *i).collect();
    let pending_jobs: Vec<Job<T>> = pending.into_iter().map(|(_, j)| j).collect();
    let journal = Mutex::new(journal);
    let observer = |pi: usize, r: &Result<T, SimError>| {
        if let Ok(v) = r {
            let payload = v.encode_cell().to_compact_string();
            let mut journal = journal.lock().expect("journal lock");
            if let Err(e) = journal.append(keys[indices[pi]], &payload) {
                // Losing durability degrades resume, not this run's results.
                eprintln!("warning: {e}");
            }
        }
    };
    let results = run_jobs_supervised(args.jobs, pending_jobs, &policy, Some(&observer));
    for (pi, result) in results.into_iter().enumerate() {
        let i = indices[pi];
        // Errors report the cell's position in the full grid, not in the
        // pending subset the pool happened to run.
        let result = result.map_err(|mut e| {
            match &mut e {
                SimError::JobPanicked { index, .. } | SimError::JobTimeout { index, .. } => {
                    *index = i;
                }
                _ => {}
            }
            e
        });
        slots[i] = Some(result);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every cell is cached or computed"))
        .collect())
}

/// Model inputs the analytic pruning pre-pass needs for one cell: the
/// exact configuration the job will simulate and the per-tile application
/// placement. `golden` pins the cell past any pruning (regression anchors
/// must always run).
#[derive(Debug, Clone)]
pub struct PruneInfo {
    /// The cell's full configuration (after every override is applied —
    /// the same value the job's closure captured).
    pub cfg: SystemConfig,
    /// Per-tile application placement, exactly as `run_mix` assigns it.
    pub apps: Vec<SpecApp>,
    /// Never prune this cell (golden-pinned regression anchor).
    pub golden: bool,
}

/// One cell of a pruned grid: the cycle-accurate job plus (optionally) the
/// model inputs that let the pre-pass rank it. Cells without `prune`
/// metadata are never pruned — the estimator cannot rank what it cannot
/// model.
pub struct GridCell<T> {
    /// The cycle-accurate job.
    pub job: Job<T>,
    /// Model inputs for the pruning pre-pass.
    pub prune: Option<PruneInfo>,
}

/// What a pruned grid produced, aligned with the input cells.
pub struct PruneOutcome<T> {
    /// Per-cell outcome: `None` when the pre-pass pruned the cell,
    /// otherwise the cycle-accurate result (or its quarantined error).
    pub results: Vec<Option<Result<T, SimError>>>,
    /// The estimator's predicted mean latency per cell (`None` for cells
    /// without model inputs, or when pruning is off).
    pub predicted: Vec<Option<f64>>,
    /// How many cells were submitted to the cycle-accurate pool.
    pub kept: usize,
}

/// Two-tier grid execution: with `--prune analytic:top=K`, the closed-form
/// estimator ranks every cell that supplied [`PruneInfo`] and only the K
/// lowest-predicted-latency cells — plus all golden-pinned cells and all
/// cells without model inputs — reach the cycle-accurate pool. Surviving
/// cells run through [`try_run_grid`] with their original jobs untouched,
/// so their results are byte-identical to an unpruned run's; the pruning
/// spec is part of the sweep fingerprint, so `--resume` journals of pruned
/// and unpruned sweeps never mix.
///
/// With `--prune off` every cell runs and no prediction is computed.
///
/// # Errors
///
/// [`SimError::Journal`] exactly as [`try_run_grid`].
pub fn try_run_pruned_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    cells: Vec<GridCell<T>>,
) -> Result<PruneOutcome<T>, SimError> {
    let n = cells.len();
    let PruneSpec::Analytic { top } = args.prune else {
        let jobs: Vec<Job<T>> = cells.into_iter().map(|c| c.job).collect();
        let results = try_run_grid(args, jobs)?;
        return Ok(PruneOutcome {
            results: results.into_iter().map(Some).collect(),
            predicted: vec![None; n],
            kept: n,
        });
    };

    // Tier 1: rank by the analytic estimator. A cell whose configuration
    // the model rejects is kept conservatively (the cycle pool will report
    // the config error properly).
    let mut predicted: Vec<Option<f64>> = Vec::with_capacity(n);
    for cell in &cells {
        let p = cell.prune.as_ref().and_then(|info| {
            let model = AnalyticModel::new(&info.cfg, &info.apps).ok()?;
            let report = model
                .with_lengths(args.lengths.warmup, args.lengths.measure)
                .evaluate();
            Some(report.mean_latency)
        });
        predicted.push(p);
    }
    let mut ranked: Vec<(usize, f64)> = predicted
        .iter()
        .enumerate()
        .filter(|(i, _)| cells[*i].prune.as_ref().is_some_and(|info| !info.golden))
        .filter_map(|(i, p)| p.map(|p| (i, p)))
        .collect();
    // Ascending predicted latency; grid order breaks ties, so the
    // selection is deterministic.
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    let mut keep = vec![false; n];
    for (i, cell) in cells.iter().enumerate() {
        match &cell.prune {
            None => keep[i] = true,
            Some(info) if info.golden => keep[i] = true,
            Some(_) => {}
        }
    }
    for &(i, _) in ranked.iter().take(top) {
        keep[i] = true;
    }
    let kept = keep.iter().filter(|k| **k).count();
    eprintln!("sweep: analytic pre-pass kept {kept} of {n} cell(s) (top={top} plus pinned)");

    // Tier 2: the surviving jobs, bit-identical to an unpruned run.
    let mut survivors: Vec<Job<T>> = Vec::with_capacity(kept);
    let mut indices = Vec::with_capacity(kept);
    for (i, cell) in cells.into_iter().enumerate() {
        if keep[i] {
            indices.push(i);
            survivors.push(cell.job);
        }
    }
    let sub = try_run_grid(args, survivors)?;
    let mut results: Vec<Option<Result<T, SimError>>> = (0..n).map(|_| None).collect();
    for (si, r) in sub.into_iter().enumerate() {
        let i = indices[si];
        // Errors report the cell's position in the full grid.
        let r = r.map_err(|mut e| {
            match &mut e {
                SimError::JobPanicked { index, .. } | SimError::JobTimeout { index, .. } => {
                    *index = i;
                }
                _ => {}
            }
            e
        });
        results[i] = Some(r);
    }
    Ok(PruneOutcome {
        results,
        predicted,
        kept,
    })
}

/// A pruned grid after quarantine handling: every surviving cell's value,
/// aligned with the input cells (`None` = pruned away).
pub struct PrunedResults<T> {
    /// Per-cell value; `None` when the pre-pass pruned the cell.
    pub results: Vec<Option<T>>,
    /// The estimator's predicted mean latency per cell.
    pub predicted: Vec<Option<f64>>,
    /// How many cells ran cycle-accurately.
    pub kept: usize,
}

/// Like [`run_grid`] for pruned grids: aborts on journal problems and
/// quarantined cells with the same exit codes, and exits with
/// [`ExitCode::PrunedEmpty`] when the pre-pass eliminated every cell of
/// a non-empty grid (a sweep that simulated nothing must not look like a
/// success).
#[must_use]
pub fn run_pruned_grid<T: Send + CellCodec>(
    args: &SweepArgs,
    cells: Vec<GridCell<T>>,
) -> PrunedResults<T> {
    let n = cells.len();
    let outcome = match try_run_pruned_grid(args, cells) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::Config.exit();
        }
    };
    if outcome.kept == 0 && n > 0 {
        eprintln!(
            "error: --prune {} eliminated all {n} cell(s); nothing was simulated",
            args.prune
        );
        ExitCode::PrunedEmpty.exit();
    }
    let quarantined: Vec<SimError> = outcome
        .results
        .iter()
        .flatten()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    exit_on_quarantine(&quarantined);
    PrunedResults {
        results: outcome
            .results
            .into_iter()
            .map(|r| r.map(|v| v.expect("quarantine exit handled errors")))
            .collect(),
        predicted: outcome.predicted,
        kept: outcome.kept,
    }
}

/// Fans `shards` replicate runs of one measurement out to the pool: shard
/// `s` calls `make(s, job_seed(args.seed, s))` and the results come back in
/// shard order, ready to be merged. `make` must be deterministic in its
/// arguments.
#[must_use]
pub fn run_shards<T, F>(args: &SweepArgs, label: &str, shards: u64, make: F) -> Vec<T>
where
    T: Send + CellCodec,
    F: Fn(u64, u64) -> T + Send + Sync + 'static,
{
    let make = Arc::new(make);
    let jobs: Vec<Job<T>> = (0..shards)
        .map(|s| {
            let make = Arc::clone(&make);
            let seed = job_seed(args.seed, s);
            Job::new(format!("{label}/shard-{s}"), move || make(s, seed))
        })
        .collect();
    run_grid(args, jobs)
}

/// A table of alone-run IPCs (the weighted-speedup denominators), computed
/// as its own parallel phase so the mix-run grid never recomputes them.
///
/// Entries are keyed by the *full* hardware configuration (schemes
/// stripped, since alone runs never contend) plus the application, so
/// distinct hardware points — different meshes, VC counts, schedulers,
/// pipelines — never alias each other's denominators.
#[derive(Debug, Default)]
pub struct AloneMap {
    map: HashMap<(String, SpecApp), f64>,
}

/// Cache key of a hardware configuration for alone-run purposes: the Debug
/// rendering of the config with both schemes disabled (alone runs are
/// scheme-independent by construction — there is nothing to contend with).
#[must_use]
pub fn alone_key(cfg: &SystemConfig) -> String {
    let mut base = cfg.clone();
    base.scheme1.enabled = false;
    base.scheme2.enabled = false;
    base.policy = PolicyConfig::default();
    // Kernels are bit-identical, so cycle- and event-kernel sweeps share
    // their alone denominators (alone_ipc pins the default kernel too).
    base.kernel = KernelKind::default();
    format!("{base:?}")
}

impl AloneMap {
    /// Computes alone IPCs for every distinct `(hardware, app)` pair in
    /// `requests`, one pool job per pair.
    #[must_use]
    pub fn compute(args: &SweepArgs, requests: &[(SystemConfig, Vec<SpecApp>)]) -> AloneMap {
        let lengths = args.lengths;
        let mut pairs: Vec<(String, SystemConfig, SpecApp)> = Vec::new();
        let mut seen: HashSet<(String, SpecApp)> = HashSet::new();
        for (cfg, apps) in requests {
            let key = alone_key(cfg);
            for &app in apps {
                if seen.insert((key.clone(), app)) {
                    pairs.push((key.clone(), cfg.clone(), app));
                }
            }
        }
        let jobs: Vec<Job<f64>> = pairs
            .iter()
            .map(|(key, cfg, app)| {
                let cfg = cfg.clone();
                let app = *app;
                // The hardware key disambiguates the label: the same app on
                // two hardware points must never share a journal address.
                let hw = fnv1a64(key.as_bytes());
                Job::new(format!("alone/{}/{hw:016x}", app.name()), move || {
                    alone_ipc(&cfg, app, lengths)
                })
            })
            .collect();
        let ipcs = run_grid(args, jobs);
        let map = pairs
            .into_iter()
            .zip(ipcs)
            .map(|((key, _, app), ipc)| ((key, app), ipc))
            .collect();
        AloneMap { map }
    }

    /// The alone IPC of `app` on `cfg`'s hardware.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of [`AloneMap::compute`].
    #[must_use]
    pub fn ipc(&self, cfg: &SystemConfig, app: SpecApp) -> f64 {
        *self
            .map
            .get(&(alone_key(cfg), app))
            .unwrap_or_else(|| panic!("alone IPC of {} not precomputed", app.name()))
    }

    /// Alone IPCs for every distinct app of a workload, in the shape
    /// [`noclat::weighted_speedup_of`] consumes.
    #[must_use]
    pub fn table(&self, cfg: &SystemConfig, apps: &[SpecApp]) -> HashMap<SpecApp, f64> {
        apps.iter().map(|&a| (a, self.ipc(cfg, a))).collect()
    }

    /// Number of distinct `(hardware, app)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries have been computed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alone_key_strips_schemes_but_keeps_hardware() {
        let base = SystemConfig::baseline_32();
        assert_eq!(
            alone_key(&base),
            alone_key(&base.clone().with_both_schemes())
        );
        // Policy selection is also contention-only: alone runs share a key.
        let mut with_policy = base.clone();
        with_policy.policy.request = Some("oldest-first".to_string());
        with_policy.policy.response = Some("static".to_string());
        assert_eq!(alone_key(&base), alone_key(&with_policy));
        let mut more_vcs = base.clone();
        more_vcs.noc.vcs_per_port = 8;
        assert_ne!(alone_key(&base), alone_key(&more_vcs));
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        assert_ne!(alone_key(&base), alone_key(&other_seed));
        // Kernel selection never changes results, so it never splits keys.
        let mut event = base.clone();
        event.kernel = KernelKind::Event;
        assert_eq!(alone_key(&base), alone_key(&event));
    }
}
