//! End-to-end contract of the sweep daemon: two clients submitting the
//! identical cell cost exactly one simulation, and both read byte-identical
//! result payloads — the second served straight from the content-addressed
//! cache (or by joining the in-flight job, if it races the first). A
//! restart on the same cache file then serves the cell with no work at all.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("noclat-sweepd-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running daemon: the child process and the address it bound.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `sweepd` on an OS-assigned port and waits for its banner.
    fn spawn(cache: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sweepd"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--cache",
                cache.to_str().unwrap(),
                "--jobs",
                "2",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sweepd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .strip_prefix("sweepd: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    /// Sends the shutdown op and waits for the process to exit.
    fn shutdown(mut self) {
        let mut client = self.connect();
        let ack = client.request(r#"{"op":"shutdown"}"#);
        assert!(ack.contains(r#""ok":true"#), "{ack}");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "sweepd exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("sweepd did not exit within 30s of shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
        self.stream.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-exchange");
        line.trim_end().to_string()
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.read_line()
    }
}

/// The verbatim payload spliced into a response or event line: everything
/// after the first `"result":` with the frame's closing brace stripped.
fn result_bytes(line: &str) -> &str {
    let (_, tail) = line
        .split_once(r#""result":"#)
        .unwrap_or_else(|| panic!("no result in {line}"));
    tail.strip_suffix('}')
        .unwrap_or_else(|| panic!("unterminated frame {line}"))
}

/// A small 4×4 cell (seconds, not minutes) that still exercises the full
/// simulation path.
const CELL: &str =
    r#"{"op":"submit","cell":{"size":4,"workload":2,"warmup":200,"measure":2000},"wait":true}"#;

fn stats_field(stats: &str, field: &str) -> u64 {
    let marker = format!(r#""{field}":"#);
    let (_, tail) = stats
        .split_once(&marker)
        .unwrap_or_else(|| panic!("no {field} in {stats}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn two_clients_one_simulation_identical_bytes() {
    let dir = tmp_dir("dedup");
    let cache = dir.join("cache.nj");
    let daemon = Daemon::spawn(&cache);

    // Client 1 computes the cell, streaming progress to the terminal event.
    let mut first = daemon.connect();
    let ack = first.request(CELL);
    assert!(
        ack.contains(r#""status":"queued""#) || ack.contains(r#""status":"running""#),
        "first submission must enqueue work: {ack}"
    );
    assert!(ack.contains(r#""dedup":false"#), "{ack}");
    assert!(
        ack.contains(r#""estimate":{"#),
        "ack should carry the analytic estimate: {ack}"
    );
    let done = loop {
        let line = first.read_line();
        if line.contains(r#""event":"done""#) {
            break line;
        }
        assert!(
            line.contains(r#""event":"state""#),
            "unexpected event before done: {line}"
        );
    };
    let computed = result_bytes(&done).to_string();
    assert!(
        computed.contains(r#""offchip":"#) && computed.contains(r#""mean_latency":"#),
        "{computed}"
    );

    // Client 2 submits the identical cell: a pure cache hit, no simulation,
    // result bytes identical to what client 1 watched being computed.
    let mut second = daemon.connect();
    let hit = second.request(CELL);
    assert!(hit.contains(r#""status":"cached""#), "{hit}");
    assert_eq!(result_bytes(&hit), computed, "cache must splice verbatim");

    // The daemon's own counters corroborate: one simulation, one cache hit.
    let stats = second.request(r#"{"op":"stats"}"#);
    assert_eq!(stats_field(&stats, "jobs_run"), 1, "{stats}");
    assert!(stats_field(&stats, "cache_hits") >= 1, "{stats}");
    assert_eq!(stats_field(&stats, "cache_size"), 1, "{stats}");

    // `status` and `result` address the cell by key from any connection.
    let key = {
        let (_, tail) = hit.split_once(r#""key":""#).unwrap();
        tail[..16].to_string()
    };
    let status = second.request(&format!(r#"{{"op":"status","key":"{key}"}}"#));
    assert!(status.contains(r#""status":"cached""#), "{status}");
    let fetched = second.request(&format!(r#"{{"op":"result","key":"{key}"}}"#));
    assert_eq!(result_bytes(&fetched), computed);

    daemon.shutdown();

    // A fresh daemon on the same cache file serves the cell cold: the cache
    // is durable state, not process memory.
    let daemon = Daemon::spawn(&cache);
    let mut third = daemon.connect();
    let warm = third.request(CELL);
    assert!(warm.contains(r#""status":"cached""#), "{warm}");
    assert_eq!(result_bytes(&warm), computed, "restart must not recompute");
    let stats = third.request(r#"{"op":"stats"}"#);
    assert_eq!(stats_field(&stats, "jobs_run"), 0, "{stats}");
    daemon.shutdown();
}

#[test]
fn protocol_errors_are_typed_not_fatal() {
    let dir = tmp_dir("errors");
    let daemon = Daemon::spawn(&dir.join("cache.nj"));
    let mut client = daemon.connect();

    // Malformed JSON, unknown op, invalid cells: each a one-line error, and
    // the connection keeps serving afterwards.
    let r = client.request("{not json");
    assert!(
        r.contains(r#""ok":false"#) && r.contains("bad request"),
        "{r}"
    );
    let r = client.request(r#"{"op":"transmogrify"}"#);
    assert!(r.contains("unknown op"), "{r}");
    let r = client.request(r#"{"op":"submit","cell":{"size":7}}"#);
    assert!(r.contains("cell.size"), "{r}");
    let r = client.request(r#"{"op":"submit","cell":{"scheme":"s3"}}"#);
    assert!(r.contains("cell.scheme"), "{r}");
    let r = client.request(r#"{"op":"submit","cell":{"fabric":"donut"}}"#);
    assert!(r.contains(r#""ok":false"#), "{r}");
    let r = client.request(r#"{"op":"result","key":"00000000000000aa"}"#);
    assert!(r.contains("unknown key"), "{r}");
    let r = client.request(r#"{"op":"status","key":"zz"}"#);
    assert!(r.contains("bad key"), "{r}");

    // The connection is still healthy: stats answers.
    let stats = client.request(r#"{"op":"stats"}"#);
    assert_eq!(stats_field(&stats, "jobs_run"), 0, "{stats}");
    daemon.shutdown();
}

#[test]
fn concurrent_identical_submissions_share_one_job() {
    let dir = tmp_dir("join");
    let daemon = Daemon::spawn(&dir.join("cache.nj"));

    // A longer cell so the second submission plausibly lands in flight; the
    // assertions hold either way (joined or cached), and the stats pin the
    // invariant that matters: exactly one simulation ran.
    let cell = r#"{"op":"submit","cell":{"size":4,"workload":3,"warmup":200,"measure":20000},"wait":true}"#;
    let mut a = daemon.connect();
    let mut b = daemon.connect();
    a.send(cell);
    b.send(cell);
    let mut results = Vec::new();
    for client in [&mut a, &mut b] {
        loop {
            let line = client.read_line();
            if line.contains(r#""status":"cached""#) {
                results.push(result_bytes(&line).to_string());
                break;
            }
            if line.contains(r#""event":"done""#) {
                results.push(result_bytes(&line).to_string());
                break;
            }
        }
    }
    assert_eq!(
        results[0], results[1],
        "shared cell must agree byte-for-byte"
    );

    let stats = a.request(r#"{"op":"stats"}"#);
    assert_eq!(
        stats_field(&stats, "jobs_run"),
        1,
        "identical cells must cost one simulation: {stats}"
    );
    daemon.shutdown();
}
