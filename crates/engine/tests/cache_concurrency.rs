//! Concurrent access contracts of the content-addressed result cache:
//! a single writer appends while N lock-free readers snapshot the same
//! file, and every snapshot is a checksummed-valid prefix of the write
//! history — never a torn record, never an invented one. Meanwhile the
//! single-writer guard turns a second writer into the typed
//! [`CacheError::Busy`], not silent interleaving.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use noclat_engine::{read_snapshot, sweepd_cache_fingerprint, CacheError, ResultCache};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("noclat-cache-conc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The payload written for key `k` — deterministic, so readers can verify
/// any record they observe against the key alone.
fn payload(k: u64) -> String {
    format!(r#"{{"cell":{k},"mean":{}.5}}"#, k * 3)
}

#[test]
fn readers_see_only_valid_prefixes_while_writer_appends() {
    const CELLS: u64 = 400;
    const READERS: usize = 4;
    let path = tmp_dir("prefix").join("cache.nj");
    let fp = sweepd_cache_fingerprint();
    let done = Arc::new(AtomicBool::new(false));

    // Open the writer before the readers start so the header is durably on
    // disk; mid-write snapshots then always parse (possibly as empty).
    let mut cache = ResultCache::open(&path, fp).unwrap();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let path = path.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                let mut max_seen = 0usize;
                loop {
                    // Snapshot before checking `done`, so even a reader that
                    // loses the startup race verifies the final state once.
                    let finished = done.load(Ordering::Acquire);
                    let map = read_snapshot(&path, fp).expect("snapshot always parses");
                    // Prefix property: the writer inserts keys in order, so a
                    // valid snapshot is exactly {0..len}, each with the
                    // payload its key determines.
                    assert!(map.len() <= CELLS as usize);
                    assert!(
                        map.len() >= max_seen,
                        "snapshot shrank: {} then {}",
                        max_seen,
                        map.len()
                    );
                    max_seen = map.len();
                    for k in 0..map.len() as u64 {
                        assert_eq!(
                            map.get(&k).map(String::as_str),
                            Some(payload(k).as_str()),
                            "record {k} torn or reordered in a {}-record snapshot",
                            map.len()
                        );
                    }
                    snapshots += 1;
                    if finished {
                        break;
                    }
                }
                snapshots
            })
        })
        .collect();

    for k in 0..CELLS {
        cache.insert(k, &payload(k)).unwrap();
    }
    drop(cache);
    done.store(true, Ordering::Release);
    for reader in readers {
        let snapshots = reader.join().expect("reader panicked");
        assert!(snapshots > 0, "reader never snapshotted");
    }

    // Quiescent state: everything is visible.
    let map = read_snapshot(&path, fp).unwrap();
    assert_eq!(map.len(), CELLS as usize);
}

#[test]
fn second_writer_is_rejected_while_first_holds_the_lock() {
    let path = tmp_dir("guard").join("cache.nj");
    let fp = sweepd_cache_fingerprint();
    let mut first = ResultCache::open(&path, fp).unwrap();
    first.insert(1, r#"{"v":1}"#).unwrap();

    // Contending writers all get the typed error, concurrently.
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || ResultCache::open(&path, fp))
        })
        .collect();
    for h in handles {
        match h.join().expect("contender panicked") {
            Err(CacheError::Busy { holder, .. }) => {
                assert_eq!(holder, Some(std::process::id()), "lock names the holder");
            }
            other => panic!("expected CacheError::Busy, got {other:?}"),
        }
    }

    // Readers are never blocked by the writer lock.
    let map = read_snapshot(&path, fp).unwrap();
    assert_eq!(map.get(&1).map(String::as_str), Some(r#"{"v":1}"#));

    // Releasing the lock (drop) lets the next writer in, with the data.
    drop(first);
    let second = ResultCache::open(&path, fp).expect("lock released on drop");
    assert_eq!(second.get(1), Some(r#"{"v":1}"#));
}
