//! Property coverage for the engine's JSON layer: over randomly generated
//! values, parsing a serialization yields the original value exactly —
//! `parse(to_compact_string(v)) == v` and `parse(to_json_string(v)) == v`.
//!
//! The generator stays inside the serializers' image, because the rendering
//! is intentionally lossy outside it: a whole-valued `Json::Num(2.0)`
//! renders as `2` (reparsed as `Json::Uint`), a non-negative `Json::Int`
//! renders like a `Uint`, and non-finite floats render as `null`. Those are
//! exactly the normalizations [`noclat_engine::CellCodec`] is built to
//! avoid (it stores float *bits*), so the roundtrip property is pinned on
//! the values the engine actually serializes.
//!
//! Alongside the property, this file pins the parser's hardening: truncated
//! documents, nesting beyond [`MAX_PARSE_DEPTH`], and duplicate object keys
//! are typed errors, never hangs, stack overflows, or silent acceptance.

use noclat_engine::{Json, MAX_PARSE_DEPTH};
use noclat_sim::check::{cases, pick, range_u64};
use noclat_sim::rng::SimRng;

/// A random string mixing ASCII, escapes, control characters and non-ASCII
/// code points — every class the escaper and the `\u` decoder handle.
fn gen_string(rng: &mut SimRng) -> String {
    let alphabet: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', '→', '💾',
    ];
    let len = range_u64(rng, 0, 12) as usize;
    (0..len).map(|_| pick(rng, alphabet)).collect()
}

/// A random value from the serializers' image, with bounded nesting.
fn gen_value(rng: &mut SimRng, depth: usize) -> Json {
    // Leaves only at the bottom; containers get rarer with depth.
    let max_kind = if depth == 0 { 5 } else { 7 };
    match range_u64(rng, 0, max_kind) {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Json::Uint(rng.next_u64()),
        // Negative only: a non-negative Int renders identically to a Uint.
        3 => Json::Int(-i64::try_from(range_u64(rng, 1, 1 << 60)).unwrap()),
        4 => Json::Str(gen_string(rng)),
        5 => {
            let n = range_u64(rng, 0, 4) as usize;
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = range_u64(rng, 0, 4) as usize;
            // Keys made unique by index: the parser rejects duplicates.
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_string(rng).len()),
                            gen_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// A fractional f64 that survives `to_string` → `parse` exactly: shortest
/// roundtrip rendering guarantees the bits, we only have to avoid whole
/// values (rendered without a '.', hence reparsed as integers).
fn gen_fractional(rng: &mut SimRng) -> f64 {
    let mantissa = range_u64(rng, 1, 1 << 52) as f64;
    let v = mantissa / 1024.0 + 0.5;
    if v.fract() == 0.0 {
        v + 0.25
    } else {
        v
    }
}

#[test]
fn parse_roundtrips_generated_values() {
    cases(300, |rng| {
        let v = gen_value(rng, 4);
        let compact = v.to_compact_string();
        assert_eq!(
            Json::parse(&compact).expect(&compact),
            v,
            "compact: {compact}"
        );
        assert!(!compact.contains('\n'), "compact must be single-line");
        let pretty = v.to_json_string();
        assert_eq!(Json::parse(&pretty).expect(&pretty), v, "pretty: {pretty}");
    });
}

#[test]
fn parse_roundtrips_fractional_numbers() {
    cases(300, |rng| {
        let sign = if rng.next_u64().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        let v = Json::Num(sign * gen_fractional(rng));
        let s = v.to_compact_string();
        assert_eq!(Json::parse(&s).expect(&s), v, "{s}");
    });
}

/// Every proper prefix of a valid document is an error (or, for a prefix
/// that happens to be a complete value, parses to something — it must never
/// panic). This is the "torn network frame" case the daemon sees.
#[test]
fn truncated_documents_are_typed_errors() {
    cases(60, |rng| {
        let v = gen_value(rng, 3);
        let s = v.to_compact_string();
        for cut in 0..s.len() {
            if !s.is_char_boundary(cut) {
                continue;
            }
            // Must return, not panic; prefixes of containers/strings error.
            let _ = Json::parse(&s[..cut]);
        }
        // The empty prefix is always an error.
        assert!(Json::parse("").is_err());
    });
    // Pinned truncations of a representative protocol frame.
    let frame = r#"{"op":"submit","cell":{"size":8,"fabric":"torus"},"wait":true}"#;
    assert!(Json::parse(frame).is_ok());
    for cut in [1, 5, frame.len() - 1] {
        assert!(Json::parse(&frame[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn hostile_nesting_is_rejected_without_overflow() {
    for n in [MAX_PARSE_DEPTH + 1, 1000, 100_000] {
        let arrays = format!("{}{}", "[".repeat(n), "]".repeat(n));
        let err = Json::parse(&arrays).unwrap_err();
        assert!(err.contains("nesting"), "{n} arrays: {err}");
        let objects = format!("{}1{}", "{\"k\":".repeat(n), "}".repeat(n));
        let err = Json::parse(&objects).unwrap_err();
        assert!(err.contains("nesting"), "{n} objects: {err}");
    }
    // The bound is exact: MAX_PARSE_DEPTH itself parses.
    let at_limit = format!(
        "{}{}",
        "[".repeat(MAX_PARSE_DEPTH),
        "]".repeat(MAX_PARSE_DEPTH)
    );
    assert!(Json::parse(&at_limit).is_ok());
}

#[test]
fn duplicate_keys_are_rejected_at_any_depth() {
    for doc in [
        r#"{"a":1,"a":2}"#,
        r#"{"a":1,"b":2,"a":3}"#,
        r#"{"outer":{"x":1,"x":2}}"#,
        r#"[{"k":null,"k":null}]"#,
    ] {
        let err = Json::parse(doc).unwrap_err();
        assert!(err.contains("duplicate key"), "{doc}: {err}");
    }
    // Same key at different levels is legal.
    assert!(Json::parse(r#"{"k":{"k":{"k":1}}}"#).is_ok());
}
