//! Property-based tests of the cache models against a reference
//! implementation: hit/miss decisions, dirty-victim reporting and LRU
//! behavior must match an oracle built from plain maps.

use noclat_cache::{L1Access, L1Cache, L2Access, L2Bank, MshrAlloc, MshrFile};
use noclat_sim::check::{self, range_u64};
use std::collections::HashMap;

/// Reference model for a direct-mapped cache.
#[derive(Default)]
struct RefL1 {
    // set -> (tag, dirty)
    sets: HashMap<u64, (u64, bool)>,
}

impl RefL1 {
    fn access(&mut self, addr: u64, write: bool, num_sets: u64) -> (bool, Option<u64>) {
        let line = addr / 64;
        let set = line % num_sets;
        let tag = line / num_sets;
        match self.sets.get_mut(&set) {
            Some((t, d)) if *t == tag => {
                *d |= write;
                (true, None)
            }
            slot => {
                let wb = slot
                    .as_ref()
                    .filter(|(_, d)| *d)
                    .map(|(t, _)| (*t * num_sets + set) * 64);
                self.sets.insert(set, (tag, write));
                (false, wb)
            }
        }
    }
}

#[test]
fn l1_matches_reference_model() {
    check::cases(64, |rng| {
        let n = range_u64(rng, 1, 500) as usize;
        let ops: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.below(1 << 16), rng.chance(0.5)))
            .collect();
        let mut l1 = L1Cache::new(4 * 1024, 64); // 64 sets: force conflicts
        let mut oracle = RefL1::default();
        for (addr, write) in ops {
            let got = l1.access(addr, write);
            let (hit, wb) = oracle.access(addr, write, 64);
            match got {
                L1Access::Hit => assert!(hit, "model hit, oracle miss at {addr:#x}"),
                L1Access::Miss { writeback } => {
                    assert!(!hit, "model miss, oracle hit at {addr:#x}");
                    assert_eq!(writeback, wb, "writeback mismatch at {addr:#x}");
                }
            }
        }
    });
}

#[test]
fn l2_never_exceeds_capacity_and_recent_lines_hit() {
    check::cases(64, |rng| {
        let n = range_u64(rng, 1, 400) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        // Small bank: 16 KB, 4-way, 64 sets.
        let mut l2 = L2Bank::new(16 * 1024, 64, 4);
        for &a in &addrs {
            let _ = l2.access(a & !63, false);
            // Immediately re-accessing the same line must hit.
            assert_eq!(l2.access(a & !63, false), L2Access::Hit);
        }
        // Hits+misses add up (each address touched twice).
        let s = l2.stats();
        assert_eq!(s.hits.get() + s.misses.get(), addrs.len() as u64 * 2);
    });
}

#[test]
fn l2_interleaved_banks_partition_the_line_space() {
    check::cases(64, |rng| {
        let n = range_u64(rng, 1, 200) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.below(1 << 16)).collect();
        let banks: usize = 8;
        let mut arr: Vec<L2Bank> = (0..banks)
            .map(|b| L2Bank::new_interleaved(16 * 1024, 64, 4, banks, b))
            .collect();
        for &l in &lines {
            let addr = l * 64;
            let b = (l % banks as u64) as usize;
            let _ = arr[b].access(addr, true);
            assert!(arr[b].probe(addr));
        }
        // Every dirty line evicted from a bank must map back to that bank.
        for (b, bank) in arr.iter_mut().enumerate() {
            for probe in 0..64u64 {
                let line = probe * banks as u64 + b as u64;
                if let L2Access::Miss {
                    writeback: Some(wb),
                } = bank.access(line * 64, false)
                {
                    assert_eq!(((wb / 64) % banks as u64) as usize, b);
                }
            }
        }
    });
}

#[test]
fn mshr_waiters_conserve() {
    check::cases(64, |rng| {
        let n = range_u64(rng, 1, 300) as usize;
        let ops: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.below(32), rng.below(1000) as u32))
            .collect();
        let mut mshr: MshrFile<u32> = MshrFile::new(8);
        let mut outstanding: HashMap<u64, Vec<u32>> = HashMap::new();
        for (line, waiter) in ops {
            match mshr.alloc(line, waiter) {
                MshrAlloc::Primary => {
                    assert!(!outstanding.contains_key(&line));
                    outstanding.insert(line, vec![waiter]);
                }
                MshrAlloc::Secondary => {
                    outstanding
                        .get_mut(&line)
                        .expect("primary exists")
                        .push(waiter);
                }
                MshrAlloc::Full => {
                    assert_eq!(outstanding.len(), 8, "Full only at capacity");
                }
            }
            // Randomly complete the oldest line to keep the file churning.
            if outstanding.len() >= 6 {
                let (&l, _) = outstanding.iter().next().expect("non-empty");
                let waiters = mshr.complete(l);
                let expect = outstanding.remove(&l).expect("tracked");
                assert_eq!(waiters, expect);
            }
        }
        // Drain: every tracked line completes with its exact waiter list.
        let keys: Vec<u64> = outstanding.keys().copied().collect();
        for l in keys {
            let waiters = mshr.complete(l);
            let expect = outstanding.remove(&l).expect("tracked");
            assert_eq!(waiters, expect);
        }
        assert!(mshr.is_empty());
    });
}
