//! Property-based tests of the cache models against a reference
//! implementation: hit/miss decisions, dirty-victim reporting and LRU
//! behavior must match an oracle built from plain maps.

use noclat_cache::{L1Access, L1Cache, L2Access, L2Bank, MshrAlloc, MshrFile};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model for a direct-mapped cache.
#[derive(Default)]
struct RefL1 {
    // set -> (tag, dirty)
    sets: HashMap<u64, (u64, bool)>,
}

impl RefL1 {
    fn access(&mut self, addr: u64, write: bool, num_sets: u64) -> (bool, Option<u64>) {
        let line = addr / 64;
        let set = line % num_sets;
        let tag = line / num_sets;
        match self.sets.get_mut(&set) {
            Some((t, d)) if *t == tag => {
                *d |= write;
                (true, None)
            }
            slot => {
                let wb = slot
                    .as_ref()
                    .filter(|(_, d)| *d)
                    .map(|(t, _)| (*t * num_sets + set) * 64);
                self.sets.insert(set, (tag, write));
                (false, wb)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn l1_matches_reference_model(
        ops in prop::collection::vec((0u64..1 << 16, any::<bool>()), 1..500),
    ) {
        let mut l1 = L1Cache::new(4 * 1024, 64); // 64 sets: force conflicts
        let mut oracle = RefL1::default();
        for (addr, write) in ops {
            let got = l1.access(addr, write);
            let (hit, wb) = oracle.access(addr, write, 64);
            match got {
                L1Access::Hit => prop_assert!(hit, "model hit, oracle miss at {addr:#x}"),
                L1Access::Miss { writeback } => {
                    prop_assert!(!hit, "model miss, oracle hit at {addr:#x}");
                    prop_assert_eq!(writeback, wb, "writeback mismatch at {:#x}", addr);
                }
            }
        }
    }

    #[test]
    fn l2_never_exceeds_capacity_and_recent_lines_hit(
        addrs in prop::collection::vec(0u64..1 << 20, 1..400),
    ) {
        // Small bank: 16 KB, 4-way, 64 sets.
        let mut l2 = L2Bank::new(16 * 1024, 64, 4);
        for &a in &addrs {
            let _ = l2.access(a & !63, false);
            // Immediately re-accessing the same line must hit.
            prop_assert_eq!(l2.access(a & !63, false), L2Access::Hit);
        }
        // Hits+misses add up (each address touched twice).
        let s = l2.stats();
        prop_assert_eq!(s.hits.get() + s.misses.get(), addrs.len() as u64 * 2);
    }

    #[test]
    fn l2_interleaved_banks_partition_the_line_space(
        lines in prop::collection::vec(0u64..1 << 16, 1..200),
    ) {
        let banks: usize = 8;
        let mut arr: Vec<L2Bank> = (0..banks)
            .map(|b| L2Bank::new_interleaved(16 * 1024, 64, 4, banks, b))
            .collect();
        for &l in &lines {
            let addr = l * 64;
            let b = (l % banks as u64) as usize;
            let _ = arr[b].access(addr, true);
            prop_assert!(arr[b].probe(addr));
        }
        // Every dirty line evicted from a bank must map back to that bank.
        for (b, bank) in arr.iter_mut().enumerate() {
            for probe in 0..64u64 {
                let line = probe * banks as u64 + b as u64;
                if let L2Access::Miss { writeback: Some(wb) } = bank.access(line * 64, false) {
                    prop_assert_eq!(((wb / 64) % banks as u64) as usize, b);
                }
            }
        }
    }

    #[test]
    fn mshr_waiters_conserve(
        ops in prop::collection::vec((0u64..32, 0u32..1000), 1..300),
    ) {
        let mut mshr: MshrFile<u32> = MshrFile::new(8);
        let mut outstanding: HashMap<u64, Vec<u32>> = HashMap::new();
        for (line, waiter) in ops {
            match mshr.alloc(line, waiter) {
                MshrAlloc::Primary => {
                    prop_assert!(!outstanding.contains_key(&line));
                    outstanding.insert(line, vec![waiter]);
                }
                MshrAlloc::Secondary => {
                    outstanding.get_mut(&line).expect("primary exists").push(waiter);
                }
                MshrAlloc::Full => {
                    prop_assert_eq!(outstanding.len(), 8, "Full only at capacity");
                }
            }
            // Randomly complete the oldest line to keep the file churning.
            if outstanding.len() >= 6 {
                let (&l, _) = outstanding.iter().next().expect("non-empty");
                let waiters = mshr.complete(l);
                let expect = outstanding.remove(&l).expect("tracked");
                prop_assert_eq!(waiters, expect);
            }
        }
        // Drain: every tracked line completes with its exact waiter list.
        let keys: Vec<u64> = outstanding.keys().copied().collect();
        for l in keys {
            let waiters = mshr.complete(l);
            let expect = outstanding.remove(&l).expect("tracked");
            prop_assert_eq!(waiters, expect);
        }
        prop_assert!(mshr.is_empty());
    }
}
