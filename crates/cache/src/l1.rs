//! Private L1 data cache: direct-mapped, 32 KB, 64 B lines (Table 1).
//!
//! The tag array is exact; allocation happens at access time (the enclosing
//! transaction machinery accounts for the fill latency), and dirty evictions
//! are surfaced to the caller so it can generate writeback traffic.

use noclat_sim::stats::Counter;

/// Result of an L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; if the victim was dirty,
    /// its line-aligned address must be written back to L2.
    Miss {
        /// Dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

/// L1 hit/miss statistics.
#[derive(Debug, Clone, Default)]
pub struct L1Stats {
    /// Hits.
    pub hits: Counter,
    /// Misses.
    pub misses: Counter,
    /// Dirty victims written back.
    pub writebacks: Counter,
}

impl L1Stats {
    /// Miss ratio over all accesses (0 when no accesses).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// A direct-mapped write-back L1 cache.
#[derive(Debug, Clone)]
pub struct L1Cache {
    line_bytes: u64,
    sets: Vec<Option<Line>>,
    stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `line_bytes` and
    /// `line_bytes` is a power of two.
    #[must_use]
    pub fn new(size_bytes: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(
            size_bytes.is_multiple_of(line_bytes) && size_bytes >= line_bytes,
            "capacity must be a whole number of lines"
        );
        L1Cache {
            line_bytes: line_bytes as u64,
            sets: vec![None; size_bytes / line_bytes],
            stats: L1Stats::default(),
        }
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Number of sets (= lines, direct-mapped).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        (set, tag)
    }

    /// Line-aligned address reconstructed from a set and tag.
    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets.len() as u64 + set as u64) * self.line_bytes
    }

    /// Accesses `addr`; allocates on miss and reports any dirty victim.
    pub fn access(&mut self, addr: u64, is_write: bool) -> L1Access {
        let (set, tag) = self.split(addr);
        if let Some(line) = &mut self.sets[set] {
            if line.tag == tag {
                line.dirty |= is_write;
                self.stats.hits.inc();
                return L1Access::Hit;
            }
        }
        let writeback = self.sets[set]
            .filter(|l| l.dirty)
            .map(|l| self.addr_of(set, l.tag));
        self.sets[set] = Some(Line {
            tag,
            dirty: is_write,
        });
        self.stats.misses.inc();
        if writeback.is_some() {
            self.stats.writebacks.inc();
        }
        L1Access::Miss { writeback }
    }

    /// Whether `addr` is currently resident (no side effects).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        self.sets[set].is_some_and(|l| l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L1Cache {
        L1Cache::new(32 * 1024, 64)
    }

    #[test]
    fn table1_geometry() {
        assert_eq!(cache().num_sets(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert_eq!(c.access(0x1000, false), L1Access::Miss { writeback: None });
        assert_eq!(c.access(0x1000, false), L1Access::Hit);
        assert_eq!(c.access(0x103f, false), L1Access::Hit, "same line");
        assert_eq!(c.stats().hits.get(), 2);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = cache();
        let stride = 512 * 64; // maps to the same set
        assert!(matches!(c.access(0, false), L1Access::Miss { .. }));
        assert!(matches!(c.access(stride, false), L1Access::Miss { .. }));
        // The first line was clean: no writeback, and it is gone.
        assert!(!c.probe(0));
        assert!(c.probe(stride));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = cache();
        let stride = 512 * 64;
        c.access(64, true); // dirty line at set 1
        match c.access(64 + stride, false) {
            L1Access::Miss { writeback } => assert_eq!(writeback, Some(64)),
            other => panic!("expected a miss, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = cache();
        let stride = 512 * 64;
        c.access(0, false);
        assert_eq!(c.access(stride, false), L1Access::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = cache();
        let stride = 512 * 64;
        c.access(0, false);
        c.access(0, true); // dirty via write hit
        match c.access(stride, false) {
            L1Access::Miss { writeback } => assert_eq!(writeback, Some(0)),
            other => panic!("expected a miss, got {other:?}"),
        }
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = cache();
        c.access(0, false);
        let before = (c.stats().hits.get(), c.stats().misses.get());
        assert!(c.probe(0));
        assert!(!c.probe(0x9999_0000));
        assert_eq!((c.stats().hits.get(), c.stats().misses.get()), before);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = cache();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        c.access(64, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
