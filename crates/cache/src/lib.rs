//! Cache hierarchy for the MICRO 2012 end-to-end-latency reproduction:
//! private direct-mapped L1s, a banked shared S-NUCA L2 and miss-status
//! holding registers.
//!
//! Tag arrays are exact; lines allocate at access time (the enclosing
//! transaction machinery accounts for the fill latency) and dirty evictions
//! surface to the caller so it can generate writeback traffic toward L2 and
//! memory — the request-side load the paper's Scheme-2 balances.
//!
//! # Example
//!
//! ```
//! use noclat_cache::{L1Access, L1Cache, SnucaMap};
//!
//! let mut l1 = L1Cache::new(32 * 1024, 64);
//! assert!(matches!(l1.access(0x1000, false), L1Access::Miss { .. }));
//! assert!(matches!(l1.access(0x1000, false), L1Access::Hit));
//!
//! let snuca = SnucaMap::new(32, 64);
//! assert_ne!(snuca.bank_of(0x1000), snuca.bank_of(0x1040));
//! ```

pub mod l1;
pub mod l2;
pub mod mshr;
pub mod snuca;

pub use l1::{L1Access, L1Cache, L1Stats};
pub use l2::{L2Access, L2Bank, L2Stats};
pub use mshr::{MshrAlloc, MshrFile};
pub use snuca::SnucaMap;
