//! Static NUCA (S-NUCA) mapping of cache lines to L2 banks.
//!
//! As in the paper (Section 2.1, following Kim et al.'s S-NUCA), each cache
//! block-sized unit of memory is statically mapped to one bank based on its
//! address, interleaving consecutive lines across banks. Bank `b` lives in
//! tile `b` of the mesh.

/// Address → L2 bank mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnucaMap {
    line_bytes: u64,
    num_banks: u64,
}

impl SnucaMap {
    /// Creates a map over `num_banks` banks with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `line_bytes` is not a power of
    /// two.
    #[must_use]
    pub fn new(num_banks: usize, line_bytes: usize) -> Self {
        assert!(num_banks > 0, "need at least one bank");
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        SnucaMap {
            line_bytes: line_bytes as u64,
            num_banks: num_banks as u64,
        }
    }

    /// The L2 bank (= tile index) holding `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.num_banks) as usize
    }

    /// Number of banks.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.num_banks as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_interleave() {
        let m = SnucaMap::new(32, 64);
        let banks: Vec<usize> = (0..34u64).map(|i| m.bank_of(i * 64)).collect();
        assert_eq!(banks[0], 0);
        assert_eq!(banks[31], 31);
        assert_eq!(banks[32], 0, "wraps around");
        assert_eq!(banks[33], 1);
    }

    #[test]
    fn same_line_same_bank() {
        let m = SnucaMap::new(32, 64);
        assert_eq!(m.bank_of(0), m.bank_of(63));
        assert_ne!(m.bank_of(0), m.bank_of(64));
    }

    #[test]
    fn all_banks_used() {
        let m = SnucaMap::new(16, 64);
        let used: std::collections::HashSet<usize> =
            (0..64u64).map(|i| m.bank_of(i * 64)).collect();
        assert_eq!(used.len(), 16);
    }
}
