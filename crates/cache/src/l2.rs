//! One bank of the shared S-NUCA L2: 512 KB, 16-way, 64 B lines, LRU
//! (Table 1). The full L2 is 32 such banks, one per tile, with lines
//! statically interleaved across banks by address (see
//! [`crate::snuca::SnucaMap`]).

use noclat_sim::stats::Counter;

/// Result of an L2 bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; an off-chip fill is
    /// required, and a dirty victim (if any) must be written back to memory.
    Miss {
        /// Dirty victim to write back to memory, if any.
        writeback: Option<u64>,
    },
}

/// L2 bank statistics.
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Hits.
    pub hits: Counter,
    /// Misses.
    pub misses: Counter,
    /// Dirty victims written back to memory.
    pub writebacks: Counter,
}

impl L2Stats {
    /// Miss ratio over all accesses (0 when no accesses).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    dirty: bool,
    last_used: u64,
}

/// A set-associative write-back L2 bank with LRU replacement.
#[derive(Debug, Clone)]
pub struct L2Bank {
    line_bytes: u64,
    num_sets: usize,
    associativity: usize,
    /// S-NUCA interleaving factor: this bank holds every `interleave`-th
    /// line. Set indices are computed from the *bank-local* line number so
    /// the whole tag array is used.
    interleave: u64,
    /// This bank's position within the interleaving (`line % interleave`).
    bank_index: u64,
    /// `sets[set]` holds up to `associativity` ways.
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: L2Stats,
}

impl L2Bank {
    /// Creates an empty stand-alone bank (no interleaving).
    ///
    /// # Panics
    ///
    /// Panics unless the geometry divides evenly and `line_bytes` is a power
    /// of two.
    #[must_use]
    pub fn new(size_bytes: usize, line_bytes: usize, associativity: usize) -> Self {
        Self::new_interleaved(size_bytes, line_bytes, associativity, 1, 0)
    }

    /// Creates bank `bank_index` of an S-NUCA array of `interleave` banks:
    /// it receives exactly the lines with `line % interleave == bank_index`
    /// and indexes its sets by the bank-local line number.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry divides evenly, `line_bytes` is a power of
    /// two, and `bank_index < interleave`.
    #[must_use]
    pub fn new_interleaved(
        size_bytes: usize,
        line_bytes: usize,
        associativity: usize,
        interleave: usize,
        bank_index: usize,
    ) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(associativity > 0, "need at least one way");
        assert!(interleave > 0 && bank_index < interleave, "bad interleave");
        let lines = size_bytes / line_bytes;
        assert!(
            lines.is_multiple_of(associativity) && lines >= associativity,
            "capacity must be a whole number of sets"
        );
        let num_sets = lines / associativity;
        L2Bank {
            line_bytes: line_bytes as u64,
            num_sets,
            associativity,
            interleave: interleave as u64,
            bank_index: bank_index as u64,
            sets: vec![Vec::new(); num_sets],
            clock: 0,
            stats: L2Stats::default(),
        }
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        debug_assert_eq!(
            line % self.interleave,
            self.bank_index,
            "line routed to the wrong S-NUCA bank"
        );
        let local = line / self.interleave;
        let set = (local % self.num_sets as u64) as usize;
        let tag = local / self.num_sets as u64;
        (set, tag)
    }

    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        let local = tag * self.num_sets as u64 + set as u64;
        (local * self.interleave + self.bank_index) * self.line_bytes
    }

    /// Accesses `addr`; allocates on miss (LRU victim) and reports any dirty
    /// victim's address.
    pub fn access(&mut self, addr: u64, is_write: bool) -> L2Access {
        self.clock += 1;
        let clock = self.clock;
        let (set_idx, tag) = self.split(addr);
        let assoc = self.associativity;
        if let Some(way) = self.sets[set_idx].iter_mut().find(|w| w.tag == tag) {
            way.dirty |= is_write;
            way.last_used = clock;
            self.stats.hits.inc();
            return L2Access::Hit;
        }
        // Miss: allocate, evicting LRU if the set is full.
        let victim = if self.sets[set_idx].len() == assoc {
            let lru = self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            Some(self.sets[set_idx].swap_remove(lru))
        } else {
            None
        };
        let writeback = victim
            .filter(|v| v.dirty)
            .map(|v| self.addr_of(set_idx, v.tag));
        self.sets[set_idx].push(Way {
            tag,
            dirty: is_write,
            last_used: clock,
        });
        self.stats.misses.inc();
        if writeback.is_some() {
            self.stats.writebacks.inc();
        }
        L2Access::Miss { writeback }
    }

    /// Whether `addr` is resident (no side effects).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.split(addr);
        self.sets[set].iter().any(|w| w.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> L2Bank {
        L2Bank::new(512 * 1024, 64, 16)
    }

    #[test]
    fn table1_geometry() {
        assert_eq!(bank().num_sets(), 512);
    }

    #[test]
    fn fills_all_ways_before_evicting() {
        let mut b = bank();
        let set_stride = 512 * 64;
        for i in 0..16u64 {
            assert!(matches!(
                b.access(i * set_stride, false),
                L2Access::Miss { writeback: None }
            ));
        }
        for i in 0..16u64 {
            assert_eq!(b.access(i * set_stride, false), L2Access::Hit);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = bank();
        let s = 512 * 64;
        for i in 0..16u64 {
            b.access(i * s, false);
        }
        // Touch way 0 so way 1 becomes LRU.
        b.access(0, false);
        b.access(16 * s, false); // evicts line 1*s
        assert!(b.probe(0));
        assert!(!b.probe(s));
        assert!(b.probe(16 * s));
    }

    #[test]
    fn dirty_victim_writes_back() {
        let mut b = bank();
        let s = 512 * 64;
        b.access(0, true); // dirty
        for i in 1..16u64 {
            b.access(i * s, false);
        }
        match b.access(16 * s, false) {
            L2Access::Miss { writeback } => assert_eq!(writeback, Some(0)),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(b.stats().writebacks.get(), 1);
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut b = bank();
        b.access(0, false);
        b.access(64, false);
        assert!(b.probe(0));
        assert!(b.probe(64));
        assert_eq!(b.stats().misses.get(), 2);
    }

    #[test]
    fn miss_rate_math() {
        let mut b = bank();
        b.access(0, false);
        b.access(0, false);
        assert!((b.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
