//! Miss-status holding registers: merge outstanding misses to the same line
//! and bound the number of in-flight fills.

use std::collections::HashMap;

/// Outcome of registering a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// First miss to this line: the caller must launch the fill.
    Primary,
    /// A fill for this line is already in flight: the waiter piggybacks.
    Secondary,
    /// No MSHR available: the miss must be retried later.
    Full,
}

/// A file of miss-status holding registers keyed by line address, each
/// holding the waiters to wake when the fill returns.
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    capacity: usize,
    entries: HashMap<u64, Vec<W>>,
}

impl<W> MshrFile<W> {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            entries: HashMap::new(),
        }
    }

    /// Registers a miss on `line` with a waiter to wake on fill.
    pub fn alloc(&mut self, line: u64, waiter: W) -> MshrAlloc {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(waiter);
            return MshrAlloc::Secondary;
        }
        if self.entries.len() == self.capacity {
            return MshrAlloc::Full;
        }
        self.entries.insert(line, vec![waiter]);
        MshrAlloc::Primary
    }

    /// Completes the fill of `line`, returning all waiters (empty if the
    /// line had no entry).
    pub fn complete(&mut self, line: u64) -> Vec<W> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Whether a fill for `line` is outstanding.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Registers in use.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no fills are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.alloc(100, 1), MshrAlloc::Primary);
        assert_eq!(m.alloc(100, 2), MshrAlloc::Secondary);
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(100), vec![1, 2]);
        assert!(m.is_empty());
    }

    #[test]
    fn full_when_capacity_reached() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert_eq!(m.alloc(100, 1), MshrAlloc::Primary);
        assert_eq!(m.alloc(200, 2), MshrAlloc::Full);
        // Secondary to the existing line still works.
        assert_eq!(m.alloc(100, 3), MshrAlloc::Secondary);
        let _ = m.complete(100);
        assert_eq!(m.alloc(200, 2), MshrAlloc::Primary);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        assert!(m.complete(42).is_empty());
    }

    #[test]
    fn contains_tracks_outstanding() {
        let mut m: MshrFile<u32> = MshrFile::new(4);
        assert!(!m.contains(7));
        m.alloc(7, 0);
        assert!(m.contains(7));
        let _ = m.complete(7);
        assert!(!m.contains(7));
    }

    #[test]
    #[should_panic(expected = "at least one MSHR")]
    fn zero_capacity_rejected() {
        let _: MshrFile<u32> = MshrFile::new(0);
    }
}
