//! Property-based tests of the memory controller: every request completes,
//! service times respect the timing model, and FR-FCFS never starves a
//! request indefinitely under finite traffic.

use noclat_mem::MemoryController;
use noclat_sim::check::{self, pick, range_u64};
use noclat_sim::config::{MemSchedPolicy, SystemConfig};
use noclat_sim::rng::SimRng;

#[derive(Debug, Clone)]
struct Req {
    bank: usize,
    row: u64,
    write: bool,
    at: u64,
}

fn random_requests(rng: &mut SimRng, banks: usize, horizon: u64) -> Vec<Req> {
    let n = range_u64(rng, 1, 200) as usize;
    (0..n)
        .map(|_| Req {
            bank: rng.below(banks as u64) as usize,
            row: rng.below(64),
            write: rng.chance(0.5),
            at: rng.below(horizon),
        })
        .collect()
}

#[test]
fn every_request_completes_exactly_once() {
    check::cases(32, |rng| {
        let reqs = random_requests(rng, 16, 5_000);
        let policy = pick(rng, &[MemSchedPolicy::FrFcfs, MemSchedPolicy::Fcfs]);
        let mut cfg = SystemConfig::baseline_32().mem;
        cfg.scheduler = policy;
        let mut mc = MemoryController::new(cfg);
        let mut sorted = reqs;
        sorted.sort_by_key(|r| r.at);
        let mut done = vec![false; sorted.len()];
        let mut next = 0usize;
        let mut t = 0u64;
        while done.iter().any(|&d| !d) {
            assert!(t < 2_000_000, "requests starved (t={t})");
            while next < sorted.len() && sorted[next].at <= t {
                let r = &sorted[next];
                mc.enqueue(next as u64, r.bank, r.row, r.write, t)
                    .expect("bank index in range");
                next += 1;
            }
            for c in mc.tick(t) {
                let idx = c.req.token as usize;
                assert!(!done[idx], "duplicate completion for {idx}");
                done[idx] = true;
                // Timing sanity: total delay covers at least the front-end
                // pipeline plus one burst.
                let min =
                    cfg.ctl_latency + u64::from(cfg.burst_latency) * u64::from(cfg.bus_multiplier);
                assert!(
                    c.controller_delay >= min,
                    "impossible service time {} < {min}",
                    c.controller_delay
                );
                // Completion is never earlier than arrival.
                assert!(c.finished >= c.req.arrived);
            }
            t += 1;
        }
        assert_eq!(mc.occupancy(), 0);
    });
}

#[test]
fn row_hits_are_never_slower_than_misses_on_an_idle_bank() {
    check::cases(32, |rng| {
        let row = rng.below(64);
        let gap = range_u64(rng, 1, 49);
        let cfg = SystemConfig::baseline_32().mem;
        // First access opens the row (miss); second, after the bank is free,
        // hits it.
        let mut mc = MemoryController::new(cfg);
        mc.enqueue(0, 0, row, false, 0).expect("bank in range");
        let mut first = None;
        let mut t = 0u64;
        while first.is_none() {
            for c in mc.tick(t) {
                first = Some(c);
            }
            t += 1;
            assert!(t < 10_000);
        }
        let first = first.unwrap();
        let t1 = first.finished + gap;
        mc.enqueue(1, 0, row, false, t1).expect("bank in range");
        let mut second = None;
        let mut t = t1;
        while second.is_none() {
            for c in mc.tick(t) {
                second = Some(c);
            }
            t += 1;
            assert!(t < t1 + 10_000);
        }
        let second = second.unwrap();
        assert!(second.row_hit, "row must stay open across a short gap");
        assert!(
            second.controller_delay <= first.controller_delay,
            "hit ({}) slower than cold miss ({})",
            second.controller_delay,
            first.controller_delay
        );
    });
}
