//! Property-based tests of the memory controller: every request completes,
//! service times respect the timing model, and FR-FCFS never starves a
//! request indefinitely under finite traffic.

use noclat_mem::MemoryController;
use noclat_sim::config::{MemSchedPolicy, SystemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Req {
    bank: usize,
    row: u64,
    write: bool,
    at: u64,
}

fn req_strategy(banks: usize, horizon: u64) -> impl Strategy<Value = Req> {
    (0..banks, 0u64..64, any::<bool>(), 0..horizon).prop_map(|(bank, row, write, at)| Req {
        bank,
        row,
        write,
        at,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_request_completes_exactly_once(
        reqs in prop::collection::vec(req_strategy(16, 5_000), 1..200),
        policy in prop::sample::select(vec![MemSchedPolicy::FrFcfs, MemSchedPolicy::Fcfs]),
    ) {
        let mut cfg = SystemConfig::baseline_32().mem;
        cfg.scheduler = policy;
        let mut mc = MemoryController::new(cfg);
        let mut sorted = reqs;
        sorted.sort_by_key(|r| r.at);
        let mut done = vec![false; sorted.len()];
        let mut next = 0usize;
        let mut t = 0u64;
        while done.iter().any(|&d| !d) {
            prop_assert!(t < 2_000_000, "requests starved (t={t})");
            while next < sorted.len() && sorted[next].at <= t {
                let r = &sorted[next];
                mc.enqueue(next as u64, r.bank, r.row, r.write, t);
                next += 1;
            }
            for c in mc.tick(t) {
                let idx = c.req.token as usize;
                prop_assert!(!done[idx], "duplicate completion for {idx}");
                done[idx] = true;
                // Timing sanity: total delay covers at least the front-end
                // pipeline plus one burst.
                let min = cfg.ctl_latency
                    + u64::from(cfg.burst_latency) * u64::from(cfg.bus_multiplier);
                prop_assert!(
                    c.controller_delay >= min,
                    "impossible service time {} < {min}",
                    c.controller_delay
                );
                // Completion is never earlier than arrival.
                prop_assert!(c.finished >= c.req.arrived);
            }
            t += 1;
        }
        prop_assert_eq!(mc.occupancy(), 0);
    }

    #[test]
    fn row_hits_are_never_slower_than_misses_on_an_idle_bank(
        row in 0u64..64,
        gap in 1u64..50,
    ) {
        let cfg = SystemConfig::baseline_32().mem;
        // First access opens the row (miss); second, after the bank is free,
        // hits it.
        let mut mc = MemoryController::new(cfg);
        mc.enqueue(0, 0, row, false, 0);
        let mut first = None;
        let mut t = 0u64;
        while first.is_none() {
            for c in mc.tick(t) {
                first = Some(c);
            }
            t += 1;
            prop_assert!(t < 10_000);
        }
        let first = first.unwrap();
        let t1 = first.finished + gap;
        mc.enqueue(1, 0, row, false, t1);
        let mut second = None;
        let mut t = t1;
        while second.is_none() {
            for c in mc.tick(t) {
                second = Some(c);
            }
            t += 1;
            prop_assert!(t < t1 + 10_000);
        }
        let second = second.unwrap();
        prop_assert!(second.row_hit, "row must stay open across a short gap");
        prop_assert!(
            second.controller_delay <= first.controller_delay,
            "hit ({}) slower than cold miss ({})",
            second.controller_delay,
            first.controller_delay
        );
    }
}
