//! The memory controller: a fixed-latency front pipeline, per-bank queues,
//! FR-FCFS (or FCFS) scheduling, a shared data bus with rank and read/write
//! turnaround penalties, and periodic refresh.
//!
//! Timing model (all Table-1 parameters are in DRAM cycles and scaled by the
//! bus multiplier):
//!
//! * a row-buffer **hit** occupies its bank for `row_hit_latency`,
//! * a row **miss** (activate + access, and precharge of the old row)
//!   occupies its bank for `bank_busy`,
//! * the read data then streams over the shared data bus for
//!   `burst_latency`, plus `rank_delay` when the previous burst came from
//!   the other rank and `read_write_delay` when the bus turns around;
//! * banks overlap their access phases freely (bank-level parallelism); only
//!   the data bus serializes bursts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use noclat_sim::config::{MemConfig, MemSchedPolicy, PagePolicy};
use noclat_sim::error::SimError;
use noclat_sim::faults::{ControllerFaultState, FaultPlan};
use noclat_sim::stats::{Counter, RunningMean};
use noclat_sim::Cycle;

use crate::bank::Bank;
use crate::request::{MemCompletion, MemRequest};

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Reads served.
    pub reads: Counter,
    /// Writes (writebacks) served.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses.
    pub row_misses: Counter,
    /// Refreshes performed.
    pub refreshes: Counter,
    /// Mean total controller delay (queueing + service) of completed
    /// requests.
    pub controller_delay: RunningMean,
}

impl ControllerStats {
    /// Fraction of served requests that hit the row buffer.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            0.0
        } else {
            self.row_hits.get() as f64 / total as f64
        }
    }
}

/// A completion waiting for its finish time, ordered for a min-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    finished: Cycle,
    seq: u64,
    completion: MemCompletion,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finished, self.seq).cmp(&(other.finished, other.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One memory controller (one channel).
#[derive(Debug)]
pub struct MemoryController {
    cfg: MemConfig,
    banks: Vec<Bank>,
    /// Requests inside the fixed-latency controller front end.
    front: VecDeque<(Cycle, MemRequest)>,
    /// In-service requests waiting for their finish time.
    pending: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    data_bus_free_at: Cycle,
    last_rank: Option<usize>,
    last_was_write: Option<bool>,
    next_refresh: Cycle,
    /// Consecutive row hits served per bank (for the capped FR-FCFS
    /// policy, which bounds row-hit streaks).
    hit_streak: Vec<u32>,
    stats: ControllerStats,
    /// Injected DRAM bank faults and ingress stalls for this controller
    /// (empty state = healthy, zero cost).
    faults: ControllerFaultState,
}

impl MemoryController {
    /// Creates a healthy controller with `cfg.banks_per_controller` idle
    /// banks.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        Self::with_faults(cfg, &FaultPlan::none(), 0)
    }

    /// Creates a controller that honors the bank/ingress faults targeting
    /// `controller_idx` in `plan`.
    #[must_use]
    pub fn with_faults(cfg: MemConfig, plan: &FaultPlan, controller_idx: usize) -> Self {
        let refresh_interval = Cycle::from(cfg.refresh_period) * Cycle::from(cfg.bus_multiplier);
        MemoryController {
            faults: ControllerFaultState::new(plan, controller_idx),
            hit_streak: vec![0; cfg.banks_per_controller],
            banks: (0..cfg.banks_per_controller).map(|_| Bank::new()).collect(),
            front: VecDeque::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            data_bus_free_at: 0,
            last_rank: None,
            last_was_write: None,
            next_refresh: refresh_interval,
            stats: ControllerStats::default(),
            cfg,
        }
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Queue length of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn queue_len(&self, bank: usize) -> usize {
        self.banks[bank].queue_len()
    }

    /// The idleness sample of Section 2.4.2: for each bank, whether its
    /// queue is currently empty.
    #[must_use]
    pub fn idle_banks(&self) -> Vec<bool> {
        self.banks.iter().map(Bank::is_idle).collect()
    }

    /// Number of requests anywhere inside the controller (front end, bank
    /// queues, or in service).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.front.len()
            + self.banks.iter().map(Bank::queue_len).sum::<usize>()
            + self.pending.len()
    }

    /// The next cycle at which [`MemoryController::tick`] could change any
    /// state — the controller's wake-up contract with the event kernel. A
    /// cycle strictly before the returned value is a provable no-op:
    /// refresh is not due, no front-pipeline request matures, every queued
    /// bank is still occupied, and no in-service access finishes.
    ///
    /// Refresh always schedules a wake-up (it fires even on an idle
    /// controller and occupies every bank, so skipping past it would
    /// corrupt row state and the refresh ledger). While bank or ingress
    /// faults are active the controller reports `now` whenever it holds any
    /// work, since fault windows open and close on arbitrary cycles.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.faults.is_active() && self.occupancy() > 0 {
            return now;
        }
        let mut wake = self.next_refresh;
        if let Some(&(ready, _)) = self.front.front() {
            wake = wake.min(ready);
        }
        for bank in &self.banks {
            if bank.queue_len() > 0 {
                wake = wake.min(bank.busy_until());
            }
        }
        if let Some(Reverse(p)) = self.pending.peek() {
            wake = wake.min(p.finished);
        }
        wake.max(now)
    }

    /// Hands a request to the controller at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BankOutOfRange`] if `bank` does not name one of
    /// this controller's banks.
    pub fn enqueue(
        &mut self,
        token: u64,
        bank: usize,
        row: u64,
        is_write: bool,
        now: Cycle,
    ) -> Result<(), SimError> {
        if bank >= self.banks.len() {
            return Err(SimError::BankOutOfRange {
                bank,
                banks: self.banks.len(),
            });
        }
        let req = MemRequest {
            token,
            bank,
            row,
            is_write,
            arrived: now,
        };
        self.front.push_back((now + self.cfg.ctl_latency, req));
        Ok(())
    }

    /// Advances the controller one cycle; returns accesses that finished.
    pub fn tick(&mut self, now: Cycle) -> Vec<MemCompletion> {
        self.maybe_refresh(now);
        self.drain_front(now);
        self.schedule(now);
        self.collect(now)
    }

    fn maybe_refresh(&mut self, now: Cycle) {
        if now < self.next_refresh {
            return;
        }
        let mult = Cycle::from(self.cfg.bus_multiplier);
        let duration = Cycle::from(self.cfg.refresh_duration) * mult;
        for bank in &mut self.banks {
            bank.occupy_until(now + duration);
            bank.close_row();
        }
        self.stats.refreshes.inc();
        self.next_refresh += Cycle::from(self.cfg.refresh_period) * mult;
    }

    fn drain_front(&mut self, now: Cycle) {
        // An ingress backpressure fault holds requests in the front pipeline:
        // they keep their arrival stamps but cannot reach the bank queues.
        if self.faults.is_active() && self.faults.ingress_stalled(now) {
            return;
        }
        while self.front.front().is_some_and(|&(ready, _)| ready <= now) {
            let (_, req) = self.front.pop_front().expect("checked front");
            self.banks[req.bank].enqueue(req);
        }
    }

    /// Rank of a bank: the banks of a controller split evenly across two
    /// ranks.
    fn rank_of(&self, bank: usize) -> usize {
        usize::from(bank >= self.banks.len() / 2)
    }

    /// Issues at most one command this cycle: among ready banks, prefer a
    /// row-hit pick with the oldest arrival (FR-FCFS across banks), else the
    /// oldest pick overall.
    fn schedule(&mut self, now: Cycle) {
        let mut best: Option<(bool, Cycle, usize, usize)> = None; // (hit, arrived, bank, idx)
        for (b, bank) in self.banks.iter().enumerate() {
            if !bank.is_ready(now) {
                continue;
            }
            // An offline bank holds its queue but issues nothing; requests
            // resume (in order) when the fault window closes.
            if self.faults.is_active() && self.faults.bank_offline(b, now) {
                continue;
            }
            let pick = match self.cfg.scheduler {
                MemSchedPolicy::FrFcfs => bank.fr_fcfs_pick(),
                MemSchedPolicy::FrFcfsCap(cap) => {
                    // Past the cap, fall back to oldest-first so starved
                    // row-miss requests make progress.
                    if self.hit_streak[b] >= cap {
                        bank.fcfs_pick()
                    } else {
                        bank.fr_fcfs_pick()
                    }
                }
                MemSchedPolicy::Fcfs => bank.fcfs_pick(),
            };
            let Some(idx) = pick else { continue };
            let hit = bank.hit_at(idx).expect("pick index valid");
            let arrived = bank.arrival_at(idx).expect("pick index valid");
            let better = match best {
                None => true,
                Some((bh, ba, _, _)) => match self.cfg.scheduler {
                    MemSchedPolicy::FrFcfs | MemSchedPolicy::FrFcfsCap(_) => {
                        (hit, Reverse(arrived)) > (bh, Reverse(ba))
                    }
                    MemSchedPolicy::Fcfs => arrived < ba,
                },
            };
            if better {
                best = Some((hit, arrived, b, idx));
            }
        }
        let Some((_, _, bank_idx, req_idx)) = best else {
            return;
        };
        self.issue(bank_idx, req_idx, now);
    }

    fn issue(&mut self, bank_idx: usize, req_idx: usize, now: Cycle) {
        let mult = Cycle::from(self.cfg.bus_multiplier);
        let will_hit = self.banks[bank_idx].hit_at(req_idx).expect("valid pick");
        let mut access_dram = if will_hit {
            Cycle::from(self.cfg.row_hit_latency)
        } else {
            Cycle::from(self.cfg.bank_busy)
        };
        if self.faults.is_active() {
            access_dram *= Cycle::from(self.faults.bank_slowdown(bank_idx, now));
        }
        let rank = self.rank_of(bank_idx);
        let mut penalty_dram: Cycle = 0;
        if self.last_rank.is_some_and(|r| r != rank) {
            penalty_dram += Cycle::from(self.cfg.rank_delay);
        }
        let access_done = now + access_dram * mult;
        let bus_start = access_done.max(self.data_bus_free_at);
        let (req, hit) = self.banks[bank_idx].issue(req_idx, access_done);
        debug_assert_eq!(hit, will_hit);
        if hit {
            self.hit_streak[bank_idx] += 1;
        } else {
            self.hit_streak[bank_idx] = 0;
        }
        if self.cfg.page_policy == PagePolicy::Closed {
            // Eagerly precharge: the next access re-activates.
            self.banks[bank_idx].close_row();
        }
        if self.last_was_write.is_some_and(|w| w != req.is_write) {
            penalty_dram += Cycle::from(self.cfg.read_write_delay);
        }
        let burst = (Cycle::from(self.cfg.burst_latency) + penalty_dram) * mult;
        let finished = bus_start + burst;
        self.data_bus_free_at = finished;
        // The bank cannot start a new access until its burst has drained.
        self.banks[bank_idx].occupy_until(finished);
        self.last_rank = Some(rank);
        self.last_was_write = Some(req.is_write);

        if req.is_write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        if hit {
            self.stats.row_hits.inc();
        } else {
            self.stats.row_misses.inc();
        }
        let completion = MemCompletion {
            req,
            finished,
            controller_delay: finished.saturating_sub(req.arrived),
            row_hit: hit,
        };
        self.seq += 1;
        self.pending.push(Reverse(Pending {
            finished,
            seq: self.seq,
            completion,
        }));
    }

    fn collect(&mut self, now: Cycle) -> Vec<MemCompletion> {
        let mut done = Vec::new();
        while self
            .pending
            .peek()
            .is_some_and(|Reverse(p)| p.finished <= now)
        {
            let Reverse(p) = self.pending.pop().expect("checked peek");
            self.stats
                .controller_delay
                .record(p.completion.controller_delay as f64);
            done.push(p.completion);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn cfg() -> MemConfig {
        SystemConfig::baseline_32().mem
    }

    fn run(mc: &mut MemoryController, from: Cycle, to: Cycle) -> Vec<MemCompletion> {
        let mut all = Vec::new();
        for t in from..to {
            all.extend(mc.tick(t));
        }
        all
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        let done = run(&mut mc, 0, 1000);
        assert_eq!(done.len(), 1);
        let d = done[0];
        assert_eq!(d.req.token, 1);
        assert!(!d.row_hit, "cold bank must miss");
        // ctl latency + (bank_busy + burst) × multiplier.
        let expect = c.ctl_latency
            + Cycle::from(c.bank_busy + c.burst_latency) * Cycle::from(c.bus_multiplier);
        assert!(
            d.controller_delay >= expect && d.controller_delay <= expect + 2,
            "delay {} vs expected ~{}",
            d.controller_delay,
            expect
        );
    }

    #[test]
    fn row_hit_is_much_faster_than_miss() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        let first = run(&mut mc, 0, 2000);
        let t0 = first[0].finished;
        mc.enqueue(2, 0, 5, false, t0 + 1).unwrap();
        let second = run(&mut mc, t0 + 1, t0 + 2000);
        assert!(second[0].row_hit);
        assert!(
            second[0].controller_delay < first[0].controller_delay,
            "hit {} must beat miss {}",
            second[0].controller_delay,
            first[0].controller_delay
        );
    }

    #[test]
    fn banks_overlap_but_bus_serializes_bursts() {
        let c = cfg();
        // Two requests to different banks, same instant.
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        mc.enqueue(2, 1, 9, false, 0).unwrap();
        let done = run(&mut mc, 0, 3000);
        assert_eq!(done.len(), 2);
        let gap = done[1].finished - done[0].finished;
        let serial = Cycle::from(c.bank_busy + c.burst_latency) * Cycle::from(c.bus_multiplier);
        assert!(
            gap < serial,
            "bank-level parallelism missing: gap {gap} ≥ serial {serial}"
        );
        let burst = Cycle::from(c.burst_latency) * Cycle::from(c.bus_multiplier);
        assert!(
            gap >= burst,
            "bus must serialize bursts (gap {gap} < burst {burst})"
        );
    }

    #[test]
    fn same_bank_requests_serialize() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        mc.enqueue(2, 0, 9, false, 0).unwrap();
        let done = run(&mut mc, 0, 4000);
        assert_eq!(done.len(), 2);
        let gap = done[1].finished - done[0].finished;
        let one_access = Cycle::from(c.bank_busy) * Cycle::from(c.bus_multiplier);
        assert!(
            gap >= one_access,
            "same-bank gap {gap} < access {one_access}"
        );
    }

    #[test]
    fn fr_fcfs_reorders_for_row_hits_fcfs_does_not() {
        let mut c = cfg();
        let order_of = |policy: MemSchedPolicy, c: &mut MemConfig| {
            c.scheduler = policy;
            let mut mc = MemoryController::new(*c);
            // Open row 5 with a first access; while the bank is busy serving
            // it, an older miss (row 9) and a younger hit (row 5) pile up in
            // the queue.
            mc.enqueue(0, 0, 5, false, 0).unwrap();
            let _ = run(&mut mc, 0, 30); // past the front pipeline; in service
            mc.enqueue(1, 0, 9, false, 30).unwrap();
            mc.enqueue(2, 0, 5, false, 31).unwrap();
            let done = run(&mut mc, 30, 6000);
            done.iter().map(|d| d.req.token).collect::<Vec<_>>()
        };
        assert_eq!(order_of(MemSchedPolicy::FrFcfs, &mut c), vec![0, 2, 1]);
        assert_eq!(order_of(MemSchedPolicy::Fcfs, &mut c), vec![0, 1, 2]);
    }

    #[test]
    fn rank_switches_cost_extra_bus_cycles() {
        // Same-rank back-to-back bursts vs alternating-rank bursts: the
        // alternating sequence must take longer on the shared bus.
        let c = cfg();
        let span = |banks: [usize; 4]| -> Cycle {
            let mut mc = MemoryController::new(c);
            for (i, &b) in banks.iter().enumerate() {
                mc.enqueue(i as u64, b, 5, false, 0).unwrap();
            }
            let done = run(&mut mc, 0, 6000);
            assert_eq!(done.len(), 4);
            done.iter().map(|d| d.finished).max().unwrap()
        };
        // Banks 0..7 are rank 0; 8..15 rank 1 (16-bank controller).
        let same_rank = span([0, 1, 2, 3]);
        let alternating = span([0, 8, 1, 9]);
        assert!(
            alternating > same_rank,
            "rank switching must cost time ({alternating} <= {same_rank})"
        );
    }

    #[test]
    fn read_write_turnaround_costs_extra_bus_cycles() {
        let c = cfg();
        let span = |writes: [bool; 4]| -> Cycle {
            let mut mc = MemoryController::new(c);
            for (i, &w) in writes.iter().enumerate() {
                mc.enqueue(i as u64, i, 5, w, 0).unwrap(); // distinct banks, same rank
            }
            let done = run(&mut mc, 0, 6000);
            assert_eq!(done.len(), 4);
            done.iter().map(|d| d.finished).max().unwrap()
        };
        let all_reads = span([false; 4]);
        let mixed = span([false, true, false, true]);
        assert!(
            mixed > all_reads,
            "bus turnaround must cost time ({mixed} <= {all_reads})"
        );
    }

    #[test]
    fn idleness_reflects_queue_state() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        assert!(mc.idle_banks().iter().all(|&b| b));
        // Two requests to the same bank: while the first is in service, the
        // second waits in the bank queue, so the bank is not idle.
        mc.enqueue(1, 3, 5, false, 0).unwrap();
        mc.enqueue(2, 3, 9, false, 0).unwrap();
        let _ = run(&mut mc, 0, c.ctl_latency + 2);
        assert!(
            !mc.idle_banks()[3],
            "second request must be queued at bank 3"
        );
        let _ = run(&mut mc, c.ctl_latency + 2, 4000);
        assert!(mc.idle_banks()[3]);
    }

    #[test]
    fn refresh_closes_rows() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        let first = run(&mut mc, 0, 2000);
        let t0 = first[0].finished;
        // Wait past a refresh boundary, then access the same row again: the
        // refresh closed it, so it must miss.
        let refresh_at = Cycle::from(c.refresh_period) * Cycle::from(c.bus_multiplier);
        let t1 = refresh_at + Cycle::from(c.refresh_duration) * Cycle::from(c.bus_multiplier) + 10;
        assert!(
            t1 > t0,
            "test assumes first access completes before refresh"
        );
        mc.enqueue(2, 0, 5, false, t1).unwrap();
        let second = run(&mut mc, t0 + 1, t1 + 4000);
        assert_eq!(second.len(), 1);
        assert!(!second[0].row_hit, "refresh must close the row buffer");
        assert!(mc.stats().refreshes.get() >= 1);
    }

    #[test]
    fn stats_track_reads_writes_and_hits() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        mc.enqueue(2, 0, 5, true, 1).unwrap();
        let done = run(&mut mc, 0, 3000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().reads.get(), 1);
        assert_eq!(mc.stats().writes.get(), 1);
        assert_eq!(mc.stats().row_hits.get() + mc.stats().row_misses.get(), 2);
        assert!(mc.stats().controller_delay.mean().is_some());
        assert!(mc.stats().row_hit_rate() > 0.0);
    }

    #[test]
    fn occupancy_counts_everywhere() {
        let c = cfg();
        let mut mc = MemoryController::new(c);
        assert_eq!(mc.occupancy(), 0);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        mc.enqueue(2, 1, 6, false, 0).unwrap();
        assert_eq!(mc.occupancy(), 2);
        let _ = run(&mut mc, 0, 3000);
        assert_eq!(mc.occupancy(), 0);
    }

    #[test]
    fn capped_fr_fcfs_bounds_row_hit_streaks() {
        // One old row-miss request and a stream of row hits: plain FR-FCFS
        // serves all hits first; the capped variant serves the miss after at
        // most `cap` hits.
        let serve_order = |policy: MemSchedPolicy| -> Vec<u64> {
            let mut c = cfg();
            c.scheduler = policy;
            let mut mc = MemoryController::new(c);
            mc.enqueue(0, 0, 5, false, 0).unwrap(); // opens row 5
                                                    // While the opener is still in flight, pile up one old row miss
                                                    // and six younger row hits behind it.
            let _ = run(&mut mc, 0, 25);
            mc.enqueue(100, 0, 9, false, 25).unwrap(); // the row miss, oldest
            for i in 0..6u64 {
                mc.enqueue(i + 1, 0, 5, false, 26 + i).unwrap(); // younger hits
            }
            run(&mut mc, 25, 20_000)
                .iter()
                .filter(|d| d.req.token != 0)
                .map(|d| d.req.token)
                .collect()
        };
        let plain = serve_order(MemSchedPolicy::FrFcfs);
        let capped = serve_order(MemSchedPolicy::FrFcfsCap(2));
        let pos = |v: &[u64]| v.iter().position(|&t| t == 100).unwrap();
        assert_eq!(
            pos(&plain),
            plain.len() - 1,
            "plain FR-FCFS starves the miss"
        );
        assert!(
            pos(&capped) <= 3,
            "cap must bound the streak (miss served at {})",
            pos(&capped)
        );
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut c = cfg();
        c.page_policy = noclat_sim::config::PagePolicy::Closed;
        let mut mc = MemoryController::new(c);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        mc.enqueue(2, 0, 5, false, 1).unwrap();
        let done = run(&mut mc, 0, 4000);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|d| !d.row_hit), "closed page cannot hit");
        assert_eq!(mc.stats().row_hit_rate(), 0.0);
    }

    #[test]
    fn bad_bank_rejected() {
        let c = cfg();
        let banks = c.banks_per_controller;
        let mut mc = MemoryController::new(c);
        assert_eq!(
            mc.enqueue(1, 99, 0, false, 0),
            Err(SimError::BankOutOfRange { bank: 99, banks })
        );
        assert_eq!(mc.occupancy(), 0, "rejected request must not be queued");
    }

    #[test]
    fn offline_bank_defers_service_until_window_ends() {
        use noclat_sim::faults::{BankFault, BankFaultKind, CycleWindow, FaultPlan};
        let c = cfg();
        let mut plan = FaultPlan::none();
        plan.banks.push(BankFault {
            controller: 0,
            bank: Some(0),
            kind: BankFaultKind::Offline,
            window: CycleWindow {
                start: 0,
                end: 2_000,
            },
        });
        let mut mc = MemoryController::with_faults(c, &plan, 0);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        let early = run(&mut mc, 0, 2_000);
        assert!(early.is_empty(), "offline bank must not serve requests");
        assert_eq!(mc.occupancy(), 1, "request must be held, not lost");
        let late = run(&mut mc, 2_000, 6_000);
        assert_eq!(late.len(), 1, "service resumes after the window");
        assert!(late[0].finished >= 2_000);
    }

    #[test]
    fn offline_fault_on_other_controller_is_ignored() {
        use noclat_sim::faults::{BankFault, BankFaultKind, CycleWindow, FaultPlan};
        let c = cfg();
        let mut plan = FaultPlan::none();
        plan.banks.push(BankFault {
            controller: 3,
            bank: None,
            kind: BankFaultKind::Offline,
            window: CycleWindow::ALWAYS,
        });
        let mut mc = MemoryController::with_faults(c, &plan, 0);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        assert_eq!(run(&mut mc, 0, 2_000).len(), 1);
    }

    #[test]
    fn bank_slowdown_lengthens_access_time() {
        use noclat_sim::faults::{BankFault, BankFaultKind, CycleWindow, FaultPlan};
        let c = cfg();
        let delay_with = |plan: &FaultPlan| -> Cycle {
            let mut mc = MemoryController::with_faults(c, plan, 0);
            mc.enqueue(1, 0, 5, false, 0).unwrap();
            let done = run(&mut mc, 0, 20_000);
            assert_eq!(done.len(), 1);
            done[0].controller_delay
        };
        let healthy = delay_with(&FaultPlan::none());
        let mut plan = FaultPlan::none();
        plan.banks.push(BankFault {
            controller: 0,
            bank: Some(0),
            kind: BankFaultKind::Slowdown(4),
            window: CycleWindow::ALWAYS,
        });
        let slowed = delay_with(&plan);
        assert!(
            slowed > healthy,
            "slowdown must lengthen the access ({slowed} <= {healthy})"
        );
    }

    #[test]
    fn ingress_stall_holds_requests_in_the_front_end() {
        use noclat_sim::faults::{CycleWindow, FaultPlan, IngressStall};
        let c = cfg();
        let mut plan = FaultPlan::none();
        plan.ingress.push(IngressStall {
            controller: 0,
            window: CycleWindow {
                start: 0,
                end: 1_500,
            },
        });
        let mut mc = MemoryController::with_faults(c, &plan, 0);
        mc.enqueue(1, 0, 5, false, 0).unwrap();
        let early = run(&mut mc, 0, 1_500);
        assert!(early.is_empty(), "stalled ingress must not admit requests");
        let late = run(&mut mc, 1_500, 6_000);
        assert_eq!(late.len(), 1);
        assert!(late[0].finished >= 1_500);
    }

    #[test]
    fn event_driven_drain_matches_per_cycle_drain() {
        // Jumping between next_event() wake-ups must produce the same
        // completions (same finish times, same stats) as ticking every
        // cycle, including across a refresh boundary.
        let c = cfg();
        let horizon = 40_000; // covers two refresh periods
        let feed = |mc: &mut MemoryController| {
            for (i, row) in [5u64, 5, 9, 9, 5].iter().enumerate() {
                mc.enqueue(i as u64, i % 4, *row, i % 3 == 0, (i as Cycle) * 7)
                    .unwrap();
            }
        };
        let mut reference = MemoryController::new(c);
        feed(&mut reference);
        let ref_done = run(&mut reference, 0, horizon);

        let mut event = MemoryController::new(c);
        feed(&mut event);
        let mut done = Vec::new();
        let mut now = 0;
        while now < horizon {
            done.extend(event.tick(now));
            now = event.next_event(now + 1).max(now + 1);
        }
        let key = |d: &MemCompletion| (d.req.token, d.finished, d.controller_delay, d.row_hit);
        assert_eq!(
            ref_done.iter().map(key).collect::<Vec<_>>(),
            done.iter().map(key).collect::<Vec<_>>()
        );
        assert_eq!(
            reference.stats().refreshes.get(),
            event.stats().refreshes.get(),
            "skipping must not miss refreshes"
        );
        assert_eq!(
            reference.stats().row_hits.get(),
            event.stats().row_hits.get()
        );
    }
}
