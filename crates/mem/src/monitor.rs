//! Bank idleness monitoring (Section 2.4.2, Figures 6, 13, 14).
//!
//! "To compute the average idleness, the queue of each bank is monitored at
//! fixed intervals" — an average idleness of 0.8 means the bank's queue was
//! empty in 80% of the samples.

use noclat_sim::stats::{RunningMean, TimeSeries};
use noclat_sim::Cycle;

/// Samples per-bank queue emptiness at a fixed period and aggregates
/// per-bank averages plus a time series of the across-banks average.
#[derive(Debug, Clone)]
pub struct IdlenessMonitor {
    period: Cycle,
    next_sample: Cycle,
    per_bank: Vec<RunningMean>,
    over_time: TimeSeries,
}

impl IdlenessMonitor {
    /// Creates a monitor over `num_banks` banks sampling every `period`
    /// cycles, reporting the over-time average at `series_interval`
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `series_interval` is zero or `num_banks` is
    /// zero.
    #[must_use]
    pub fn new(num_banks: usize, period: Cycle, series_interval: Cycle) -> Self {
        assert!(num_banks > 0, "need at least one bank");
        assert!(period > 0, "sample period must be positive");
        IdlenessMonitor {
            period,
            next_sample: 0,
            per_bank: vec![RunningMean::new(); num_banks],
            over_time: TimeSeries::new(series_interval),
        }
    }

    /// Whether a sample is due at `now`.
    #[must_use]
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_sample
    }

    /// The cycle of the next scheduled sample (the monitor's wake-up for
    /// the event kernel: skipping past it would record the sample late and
    /// shift the whole schedule).
    #[must_use]
    pub fn next_sample_at(&self) -> Cycle {
        self.next_sample
    }

    /// Replays every sample a per-cycle run would have taken in the span
    /// `[from, to)` with a frozen `idle` vector. Bank queues cannot change
    /// across a span the event kernel skips (nothing ticks), so each sample
    /// lands at its exact scheduled cycle — the first executed cycle at or
    /// after `next_sample`, which under a skip is `next_sample.max(from)` —
    /// with the same values per-cycle sampling would have recorded.
    pub fn replay_idle_span(&mut self, from: Cycle, to: Cycle, idle: &[bool]) {
        while self.next_sample < to {
            let at = self.next_sample.max(from);
            self.sample(at, idle);
        }
    }

    /// Records one sample: `idle[b]` is whether bank `b`'s queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if `idle.len()` differs from the monitored bank count.
    pub fn sample(&mut self, now: Cycle, idle: &[bool]) {
        assert_eq!(idle.len(), self.per_bank.len(), "bank count mismatch");
        let mut idle_count = 0usize;
        for (mean, &i) in self.per_bank.iter_mut().zip(idle) {
            mean.record(f64::from(u8::from(i)));
            idle_count += usize::from(i);
        }
        self.over_time
            .record(now, idle_count as f64 / idle.len() as f64);
        self.next_sample = now + self.period;
    }

    /// Average idleness of each bank over the whole run (Figure 6 / 13).
    #[must_use]
    pub fn per_bank_idleness(&self) -> Vec<f64> {
        self.per_bank.iter().map(|m| m.mean_or(1.0)).collect()
    }

    /// Across-banks average idleness per time interval (Figure 14).
    #[must_use]
    pub fn idleness_over_time(&self) -> Vec<f64> {
        self.over_time.averages(1.0)
    }

    /// Overall average idleness across banks and time.
    #[must_use]
    pub fn overall(&self) -> f64 {
        self.over_time.overall_mean().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_emptiness() {
        let mut m = IdlenessMonitor::new(2, 10, 100);
        m.sample(0, &[true, false]);
        m.sample(10, &[true, true]);
        assert_eq!(m.per_bank_idleness(), vec![1.0, 0.5]);
        assert!((m.overall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn due_respects_period() {
        let mut m = IdlenessMonitor::new(1, 10, 100);
        assert!(m.due(0));
        m.sample(0, &[true]);
        assert!(!m.due(9));
        assert!(m.due(10));
    }

    #[test]
    fn time_series_buckets() {
        let mut m = IdlenessMonitor::new(2, 10, 50);
        for t in (0..100).step_by(10) {
            let idle = t < 50;
            m.sample(t, &[idle, idle]);
        }
        let series = m.idleness_over_time();
        assert_eq!(series, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bank count mismatch")]
    fn wrong_width_sample_panics() {
        let mut m = IdlenessMonitor::new(2, 10, 100);
        m.sample(0, &[true]);
    }

    #[test]
    fn replayed_span_matches_per_cycle_sampling() {
        // A per-cycle run samples at every cycle where `due`; replaying the
        // same span in bulk with the frozen idle vector must leave the
        // monitor in a bit-identical state.
        let idle = [true, false];
        let mut stepped = IdlenessMonitor::new(2, 10, 50);
        for t in 0..137 {
            if stepped.due(t) {
                stepped.sample(t, &idle);
            }
        }
        let mut replayed = IdlenessMonitor::new(2, 10, 50);
        replayed.replay_idle_span(0, 137, &idle);
        assert_eq!(stepped.next_sample_at(), replayed.next_sample_at());
        assert_eq!(stepped.per_bank_idleness(), replayed.per_bank_idleness());
        assert_eq!(stepped.idleness_over_time(), replayed.idleness_over_time());
        // A stale schedule (reset mid-run) catches up at `from`, exactly as
        // the first executed cycle would.
        let mut m = IdlenessMonitor::new(1, 100, 1_000);
        m.replay_idle_span(250, 260, &[true]);
        assert_eq!(m.next_sample_at(), 350, "caught up at from, not at 0");
    }
}
