//! Physical address decomposition.
//!
//! The paper's Section 4.1 uses *cache-line interleaving*: consecutive lines
//! of an OS page map to different memory controllers, avoiding controller
//! hot-spots. Within a controller, addresses decompose column-first
//! (row ⟨banks⟩ ⟨lines-within-row⟩), so a streaming access pattern enjoys
//! row-buffer hits while independent streams spread over banks.

/// Where a physical address lands in the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Memory controller index.
    pub controller: usize,
    /// Bank index within that controller.
    pub bank: usize,
    /// DRAM row within that bank.
    pub row: u64,
}

/// Address mapping parameters shared by caches and memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    line_bytes: usize,
    num_controllers: usize,
    banks_per_controller: usize,
    lines_per_row: usize,
}

impl AddressMap {
    /// Creates a map.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `line_bytes` is not a power of two,
    /// or `row_bytes` is not a multiple of `line_bytes`.
    #[must_use]
    pub fn new(
        line_bytes: usize,
        num_controllers: usize,
        banks_per_controller: usize,
        row_bytes: usize,
    ) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(num_controllers > 0 && banks_per_controller > 0);
        assert!(
            row_bytes.is_multiple_of(line_bytes) && row_bytes >= line_bytes,
            "row must hold a whole number of lines"
        );
        AddressMap {
            line_bytes,
            num_controllers,
            banks_per_controller,
            lines_per_row: row_bytes / line_bytes,
        }
    }

    /// Cache-line index of an address.
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    /// Line-aligned base address of the line containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    /// Decodes a (line) address into controller, bank and row.
    #[must_use]
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let line = self.line_of(addr);
        let controller = (line % self.num_controllers as u64) as usize;
        let local_line = line / self.num_controllers as u64;
        let bank =
            ((local_line / self.lines_per_row as u64) % self.banks_per_controller as u64) as usize;
        let row = local_line / (self.lines_per_row as u64 * self.banks_per_controller as u64);
        DecodedAddr {
            controller,
            bank,
            row,
        }
    }

    /// Globally unique bank identifier (`controller × banks + bank`), the
    /// key used by Scheme-2's Bank History Tables.
    #[must_use]
    pub fn global_bank(&self, addr: u64) -> usize {
        let d = self.decode(addr);
        d.controller * self.banks_per_controller + d.bank
    }

    /// Total number of banks across all controllers.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.num_controllers * self.banks_per_controller
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of controllers.
    #[must_use]
    pub fn num_controllers(&self) -> usize {
        self.num_controllers
    }

    /// Banks behind each controller.
    #[must_use]
    pub fn banks_per_controller(&self) -> usize {
        self.banks_per_controller
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        // Table-1 values: 64 B lines, 4 controllers, 16 banks, 8 KB rows.
        AddressMap::new(64, 4, 16, 8192)
    }

    #[test]
    fn consecutive_lines_interleave_across_controllers() {
        let m = map();
        let mcs: Vec<usize> = (0..8u64).map(|i| m.decode(i * 64).controller).collect();
        assert_eq!(mcs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn within_row_stream_stays_in_one_bank_row() {
        let m = map();
        // Lines that land on controller 0: addresses i*4*64.
        let first = m.decode(0);
        for i in 1..128u64 {
            let d = m.decode(i * 4 * 64);
            assert_eq!(d.controller, 0);
            assert_eq!(d.bank, first.bank, "line {i} left the bank");
            assert_eq!(d.row, first.row, "line {i} left the row");
        }
        // The 129th line of controller 0 moves to the next bank.
        let next = m.decode(128 * 4 * 64);
        assert_eq!(next.bank, first.bank + 1);
        assert_eq!(next.row, first.row);
    }

    #[test]
    fn rows_advance_after_all_banks() {
        let m = map();
        // Controller-0 local lines: 128 lines/row × 16 banks = 2048 local
        // lines per row index.
        let d = m.decode(2048 * 4 * 64);
        assert_eq!(d.controller, 0);
        assert_eq!(d.bank, 0);
        assert_eq!(d.row, 1);
    }

    #[test]
    fn global_bank_is_unique_per_controller_bank_pair() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        // Scan enough lines to touch many (controller, bank) pairs.
        for i in 0..(4 * 16 * 128u64) {
            seen.insert(m.global_bank(i * 64));
        }
        assert_eq!(seen.len(), m.total_banks());
        assert_eq!(m.total_banks(), 64);
    }

    #[test]
    fn line_addr_aligns() {
        let m = map();
        assert_eq!(m.line_addr(0), 0);
        assert_eq!(m.line_addr(63), 0);
        assert_eq!(m.line_addr(64), 64);
        assert_eq!(m.line_addr(130), 128);
        assert_eq!(m.line_of(130), 2);
    }

    #[test]
    #[should_panic(expected = "line size must be 2^k")]
    fn non_power_of_two_line_rejected() {
        let _ = AddressMap::new(48, 4, 16, 8192);
    }
}
