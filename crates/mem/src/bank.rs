//! A DRAM bank: open-row state, busy window and its request queue.

use std::collections::VecDeque;

use noclat_sim::Cycle;

use crate::request::MemRequest;

/// One DRAM bank with an open-page row buffer.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// The bank is occupied (activating/accessing/precharging/refreshing)
    /// until this cycle.
    busy_until: Cycle,
    /// Pending requests, in arrival order.
    queue: VecDeque<MemRequest>,
    /// Served requests that hit the open row.
    row_hits: u64,
    /// Served requests that missed (activate needed).
    row_misses: u64,
}

impl Bank {
    /// Creates an idle, closed bank.
    #[must_use]
    pub fn new() -> Self {
        Bank::default()
    }

    /// Appends a request to the bank queue.
    pub fn enqueue(&mut self, req: MemRequest) {
        self.queue.push_back(req);
    }

    /// Number of queued requests.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The paper's idleness criterion (Section 2.4.2): the bank is idle when
    /// it has no request in its queue.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the bank can accept a new command at `now`.
    #[must_use]
    pub fn is_ready(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// The cycle at which the current occupancy ends (the bank's wake-up
    /// for the event kernel; in the past when the bank is ready).
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Currently open row.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether a request would be a row-buffer hit right now.
    #[must_use]
    pub fn would_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Index (within the queue) of the FR-FCFS pick: the oldest row-hit
    /// request, or the oldest request when no hit exists.
    #[must_use]
    pub fn fr_fcfs_pick(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        self.queue
            .iter()
            .position(|r| self.would_hit(r.row))
            .or(Some(0))
    }

    /// Index of the FCFS pick (the oldest request).
    #[must_use]
    pub fn fcfs_pick(&self) -> Option<usize> {
        (!self.queue.is_empty()).then_some(0)
    }

    /// Oldest request's arrival time (for inter-bank arbitration).
    #[must_use]
    pub fn oldest_arrival(&self) -> Option<Cycle> {
        self.queue.front().map(|r| r.arrived)
    }

    /// Arrival time of the request at `idx`.
    #[must_use]
    pub fn arrival_at(&self, idx: usize) -> Option<Cycle> {
        self.queue.get(idx).map(|r| r.arrived)
    }

    /// Whether the request at `idx` would hit the open row.
    #[must_use]
    pub fn hit_at(&self, idx: usize) -> Option<bool> {
        self.queue.get(idx).map(|r| self.would_hit(r.row))
    }

    /// Removes and returns the request at `idx`, marks the bank busy until
    /// `busy_until`, opens the request's row and updates hit counters.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn issue(&mut self, idx: usize, busy_until: Cycle) -> (MemRequest, bool) {
        let req = self.queue.remove(idx).expect("issue index in bounds");
        let hit = self.would_hit(req.row);
        if hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
        }
        self.open_row = Some(req.row);
        self.busy_until = busy_until;
        (req, hit)
    }

    /// Forces the bank busy until at least `until` (refresh).
    pub fn occupy_until(&mut self, until: Cycle) {
        self.busy_until = self.busy_until.max(until);
    }

    /// Closes the row buffer (refresh side effect).
    pub fn close_row(&mut self) {
        self.open_row = None;
    }

    /// `(row_hits, row_misses)` served so far.
    #[must_use]
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(token: u64, row: u64, arrived: Cycle) -> MemRequest {
        MemRequest {
            token,
            bank: 0,
            row,
            is_write: false,
            arrived,
        }
    }

    #[test]
    fn idle_and_ready_transitions() {
        let mut b = Bank::new();
        assert!(b.is_idle());
        assert!(b.is_ready(0));
        b.enqueue(req(1, 5, 0));
        assert!(!b.is_idle());
        let (_, hit) = b.issue(0, 100);
        assert!(!hit, "first access to a closed bank is a miss");
        assert!(!b.is_ready(50));
        assert!(b.is_ready(100));
        assert!(b.is_idle());
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn fr_fcfs_prefers_open_row_hit() {
        let mut b = Bank::new();
        b.enqueue(req(1, 5, 0));
        let _ = b.issue(0, 10); // open row 5
        b.enqueue(req(2, 9, 20)); // older, row miss
        b.enqueue(req(3, 5, 30)); // younger, row hit
        assert_eq!(b.fr_fcfs_pick(), Some(1), "row hit must be preferred");
        assert_eq!(b.fcfs_pick(), Some(0), "FCFS takes the oldest");
        let (picked, hit) = b.issue(1, 50);
        assert_eq!(picked.token, 3);
        assert!(hit);
    }

    #[test]
    fn fr_fcfs_falls_back_to_oldest() {
        let mut b = Bank::new();
        b.enqueue(req(1, 7, 0));
        b.enqueue(req(2, 8, 10));
        assert_eq!(b.fr_fcfs_pick(), Some(0));
    }

    #[test]
    fn refresh_closes_row_and_occupies() {
        let mut b = Bank::new();
        b.enqueue(req(1, 5, 0));
        let _ = b.issue(0, 10);
        b.occupy_until(500);
        b.close_row();
        assert!(!b.is_ready(499));
        assert!(b.is_ready(500));
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn hit_stats_accumulate() {
        let mut b = Bank::new();
        b.enqueue(req(1, 5, 0));
        let _ = b.issue(0, 1);
        b.enqueue(req(2, 5, 2));
        let _ = b.issue(0, 3);
        b.enqueue(req(3, 6, 4));
        let _ = b.issue(0, 5);
        assert_eq!(b.hit_stats(), (1, 2));
    }
}
