//! Memory requests and completions exchanged with a controller.

use noclat_sim::Cycle;

/// A request queued at a memory controller.
///
/// The `token` is an opaque caller identifier (the enclosing transaction id);
/// the controller returns it unchanged in the [`MemCompletion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-defined transaction identifier.
    pub token: u64,
    /// Bank index within the controller.
    pub bank: usize,
    /// DRAM row within the bank.
    pub row: u64,
    /// Write (true) or read (false). Writes are dirty-line writebacks and
    /// produce no network response.
    pub is_write: bool,
    /// Cycle the request arrived at the controller (for queueing-delay
    /// accounting and FCFS ordering).
    pub arrived: Cycle,
}

/// A finished memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCompletion {
    /// The originating request.
    pub req: MemRequest,
    /// Cycle the data became available.
    pub finished: Cycle,
    /// Total controller delay (queueing + service): `finished − arrived`.
    /// This is the delay added to the message's so-far-delay field before
    /// the response is injected (Scheme-1, Section 3.1).
    pub controller_delay: Cycle,
    /// Whether the access hit in the row buffer.
    pub row_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_carries_caller_token() {
        let req = MemRequest {
            token: 77,
            bank: 3,
            row: 9,
            is_write: false,
            arrived: 100,
        };
        let done = MemCompletion {
            req,
            finished: 250,
            controller_delay: 150,
            row_hit: true,
        };
        assert_eq!(done.req.token, 77);
        assert_eq!(done.finished - done.req.arrived, done.controller_delay);
    }
}
