//! DRAM memory system for the MICRO 2012 end-to-end-latency reproduction:
//! address interleaving, open-page banks, FR-FCFS memory controllers and
//! the bank-idleness monitoring that motivates Scheme-2.
//!
//! The model follows the paper's Table 1: 16 banks per controller split
//! across two ranks, a bus multiplier of 5 between core and DRAM clocks,
//! 22-DRAM-cycle bank busy time, 2-cycle rank delay and 3-cycle read/write
//! turnaround, with cache-line interleaving of controllers.
//!
//! # Example
//!
//! ```
//! use noclat_mem::{AddressMap, MemoryController};
//! use noclat_sim::config::SystemConfig;
//!
//! let cfg = SystemConfig::baseline_32();
//! let map = AddressMap::new(64, cfg.mem.num_controllers, cfg.mem.banks_per_controller, cfg.mem.row_bytes);
//! let mut mc = MemoryController::new(cfg.mem);
//! let d = map.decode(0x4_0000);
//! mc.enqueue(1, d.bank, d.row, false, 0).expect("bank in range");
//! let mut done = Vec::new();
//! for t in 0..2000 {
//!     done.extend(mc.tick(t));
//! }
//! assert_eq!(done.len(), 1);
//! ```

pub mod address;
pub mod bank;
pub mod controller;
pub mod monitor;
pub mod request;

pub use address::{AddressMap, DecodedAddr};
pub use bank::Bank;
pub use controller::{ControllerStats, MemoryController};
pub use monitor::IdlenessMonitor;
pub use request::{MemCompletion, MemRequest};
