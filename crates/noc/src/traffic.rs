//! Synthetic traffic patterns for network-only characterization.
//!
//! The paper evaluates its NoC inside a full multicore; for unit-level
//! validation (and for the classic load–latency curves every NoC paper
//! leans on) this module provides the standard synthetic patterns —
//! uniform random, transpose, bit-complement, and corner hotspot (the
//! S-NUCA-with-corner-controllers traffic shape) — plus a driver that
//! measures average packet latency at a given injection rate.

use noclat_sim::rng::SimRng;
use noclat_sim::Cycle;

use crate::network::Network;
use crate::packet::{Priority, VNet};
use crate::topology::{Coord, Mesh, NodeId};

/// A destination-selection rule for synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every node sends to uniformly random destinations.
    UniformRandom,
    /// Node `(x, y)` sends to node `(y, x)` (requires a square mesh for a
    /// perfect permutation; rectangular meshes clamp).
    Transpose,
    /// Node `i` sends to node `N-1-i`.
    BitComplement,
    /// A fraction of the traffic converges on the mesh corners (the
    /// memory-controller traffic shape of the paper's system).
    CornerHotspot {
        /// Percentage (0–100) of packets that target a corner.
        percent: u8,
    },
}

impl TrafficPattern {
    /// Picks a destination for a packet from `src`.
    pub fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut SimRng) -> NodeId {
        match *self {
            TrafficPattern::UniformRandom => NodeId(rng.index(mesh.num_nodes()) as u16),
            TrafficPattern::Transpose => {
                let c = mesh.coord_of(src);
                let t = Coord {
                    x: c.y.min(mesh.width() - 1),
                    y: c.x.min(mesh.height() - 1),
                };
                mesh.node_at(t)
            }
            TrafficPattern::BitComplement => NodeId((mesh.num_nodes() - 1 - src.index()) as u16),
            TrafficPattern::CornerHotspot { percent } => {
                if rng.below(100) < u64::from(percent.min(100)) {
                    let corners = mesh.corner_nodes(4);
                    corners[rng.index(corners.len())]
                } else {
                    NodeId(rng.index(mesh.num_nodes()) as u16)
                }
            }
        }
    }
}

/// Result of one load point of a load–latency characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load in flits per node per cycle.
    pub offered_load: f64,
    /// Packets delivered during the measurement window.
    pub delivered: u64,
    /// Average packet latency (injection → tail ejection).
    pub avg_latency: f64,
    /// Packets still in flight when the window closed (saturation marker).
    pub backlog: usize,
}

/// Drives `pattern` traffic at `offered_load` (flits/node/cycle) for
/// `cycles` cycles after a warmup of the same length, and reports average
/// latency. Packets are `flits_per_packet` long on the request vnet.
pub fn characterize(
    net: &mut Network<()>,
    pattern: TrafficPattern,
    offered_load: f64,
    flits_per_packet: u8,
    cycles: Cycle,
    seed: u64,
) -> LoadPoint {
    let mesh = net.mesh();
    let mut rng = SimRng::new(seed);
    let p_inject = offered_load / f64::from(flits_per_packet);
    let warmup = cycles;
    let mut latencies = 0.0;
    let mut delivered = 0u64;
    for t in 0..(warmup + cycles) {
        for node in mesh.nodes() {
            if rng.chance(p_inject) {
                let dest = pattern.destination(mesh, node, &mut rng);
                net.inject(
                    node,
                    dest,
                    VNet::Request,
                    Priority::Normal,
                    flits_per_packet,
                    0,
                    (),
                    t,
                )
                .expect("synthetic injection is admissible");
            }
        }
        net.tick(t);
        for node in mesh.nodes() {
            for d in net.take_delivered(node) {
                if t >= warmup {
                    delivered += 1;
                    latencies += d.network_latency() as f64;
                }
            }
        }
    }
    LoadPoint {
        offered_load,
        delivered,
        avg_latency: if delivered == 0 {
            f64::NAN
        } else {
            latencies / delivered as f64
        },
        backlog: net.packets_in_flight(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn mesh() -> Mesh {
        Mesh::new(8, 4)
    }

    #[test]
    fn transpose_is_deterministic() {
        let m = Mesh::new(4, 4);
        let mut rng = SimRng::new(1);
        let d1 = TrafficPattern::Transpose.destination(m, NodeId(1), &mut rng);
        let d2 = TrafficPattern::Transpose.destination(m, NodeId(1), &mut rng);
        assert_eq!(d1, d2);
        // (1, 0) -> (0, 1) = node 4 on a 4x4 mesh.
        assert_eq!(d1, NodeId(4));
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let m = mesh();
        let mut rng = SimRng::new(1);
        for n in m.nodes() {
            let d = TrafficPattern::BitComplement.destination(m, n, &mut rng);
            let back = TrafficPattern::BitComplement.destination(m, d, &mut rng);
            assert_eq!(back, n);
        }
    }

    #[test]
    fn hotspot_skews_toward_corners() {
        let m = mesh();
        let mut rng = SimRng::new(2);
        let corners = m.corner_nodes(4);
        let pat = TrafficPattern::CornerHotspot { percent: 80 };
        let hits = (0..2000)
            .filter(|_| {
                let d = pat.destination(m, NodeId(10), &mut rng);
                corners.contains(&d)
            })
            .count();
        // 80% directed + ~12.5% of the uniform remainder.
        assert!((1400..1900).contains(&hits), "corner hits {hits}");
    }

    #[test]
    fn low_load_latency_is_near_zero_load() {
        let cfg = SystemConfig::baseline_32().noc;
        let mut net: Network<()> = Network::new(mesh(), cfg);
        let p = characterize(&mut net, TrafficPattern::UniformRandom, 0.02, 1, 4_000, 7);
        assert!(p.delivered > 100, "too few packets delivered");
        // Zero-load uniform-random latency on a 4x8 mesh with 5-stage
        // routers is ~25-30 cycles; light load should stay close.
        assert!(
            p.avg_latency < 60.0,
            "low-load latency {:.0} looks congested",
            p.avg_latency
        );
        assert!(p.backlog < 32, "backlog {} at low load", p.backlog);
    }

    #[test]
    fn latency_rises_with_load() {
        let cfg = SystemConfig::baseline_32().noc;
        let low = {
            let mut net: Network<()> = Network::new(mesh(), cfg);
            characterize(&mut net, TrafficPattern::UniformRandom, 0.02, 5, 3_000, 7)
        };
        let high = {
            let mut net: Network<()> = Network::new(mesh(), cfg);
            characterize(&mut net, TrafficPattern::UniformRandom, 0.30, 5, 3_000, 7)
        };
        assert!(
            high.avg_latency > low.avg_latency * 1.3,
            "latency must rise with load ({:.0} vs {:.0})",
            low.avg_latency,
            high.avg_latency
        );
    }
}
