//! 2D-mesh wormhole network-on-chip with the prioritization machinery of
//! *Addressing End-to-End Memory Access Latency in NoC-Based Multicores*
//! (MICRO 2012).
//!
//! The network models the paper's Table-1 NoC: 5-stage virtual-channel
//! routers (buffer write, route computation, VC allocation, switch
//! allocation, switch traversal), 128-bit flits, 5-flit VC buffers, 4 VCs
//! per port split into request/response virtual networks, credit-based flow
//! control and X-Y routing. The prioritization hooks of Section 3.3 are
//! built in: high-priority flits win VC and switch arbitration (subject to
//! an age-based starvation guard) and may bypass the router pipeline
//! (Figure 10). Message headers carry the 12-bit so-far-delay ("age") field
//! of Section 3.1, updated hop-by-hop with local clocks only.
//!
//! # Example
//!
//! ```
//! use noclat_noc::{Mesh, Network, NodeId, Priority, VNet};
//! use noclat_sim::config::SystemConfig;
//!
//! let cfg = SystemConfig::baseline_32();
//! let mut net: Network<&'static str> = Network::new(Mesh::new(8, 4), cfg.noc);
//! net.inject(
//!     NodeId(0),
//!     NodeId(31),
//!     VNet::Request,
//!     Priority::Normal,
//!     1,
//!     0,
//!     "hello",
//!     0,
//! );
//! let mut delivered = Vec::new();
//! for t in 0..200 {
//!     net.tick(t);
//!     delivered.extend(net.take_delivered(NodeId(31)));
//! }
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

pub mod arbiter;
pub mod network;
pub mod packet;
pub mod router;
pub mod topology;
pub mod traffic;

pub use arbiter::{
    arbitration_policy, AgeGuardArb, ArbitrationPolicy, BatchingArb, Candidate, OldestFirstArb,
    RoundRobinArbiter, StaticArb,
};
pub use network::{flits_for_payload, Hop, Network, NetworkStats};
pub use packet::{accumulate_age, Delivered, Flit, FlitKind, PacketId, PacketMeta, Priority, VNet};
pub use router::{Router, RouterCounters};
pub use topology::{Coord, Dir, Mesh, NodeId, Topology};
pub use traffic::{characterize, LoadPoint, TrafficPattern};
