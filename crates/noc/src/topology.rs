//! 2D mesh topology: node identifiers, coordinates, neighbors, and the
//! corner positions where memory controllers attach.

use noclat_sim::config::RoutingAlgorithm;

/// Index of a node (router + tile) in the mesh, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The index as `usize`, for container indexing.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A mesh coordinate: `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0-based, grows eastward).
    pub x: u16,
    /// Row (0-based, grows southward).
    pub y: u16,
}

/// One of the five router ports. The first four are mesh directions; `Local`
/// is the tile's injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward the last row.
    South,
    /// Toward the last column.
    East,
    /// Toward column 0.
    West,
    /// The tile attached to this router.
    Local,
}

impl Dir {
    /// All five ports, in port-index order.
    pub const ALL: [Dir; 5] = [Dir::North, Dir::South, Dir::East, Dir::West, Dir::Local];

    /// Port index (0..=4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
            Dir::Local => 4,
        }
    }

    /// The opposite mesh direction. `Local` is its own opposite.
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::Local => Dir::Local,
        }
    }
}

/// A `width × height` 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Number of columns.
    #[must_use]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Number of rows.
    #[must_use]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total node count.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Node at a coordinate (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coord out of mesh");
        NodeId(c.y * self.width + c.x)
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is outside the mesh.
    #[must_use]
    pub fn coord_of(&self, n: NodeId) -> Coord {
        assert!(n.index() < self.num_nodes(), "node out of mesh");
        Coord {
            x: n.0 % self.width,
            y: n.0 / self.width,
        }
    }

    /// The neighbor in a mesh direction, if it exists.
    #[must_use]
    pub fn neighbor(&self, n: NodeId, d: Dir) -> Option<NodeId> {
        let c = self.coord_of(n);
        let nc = match d {
            Dir::North => (c.y > 0).then(|| Coord { x: c.x, y: c.y - 1 }),
            Dir::South => (c.y + 1 < self.height).then(|| Coord { x: c.x, y: c.y + 1 }),
            Dir::East => (c.x + 1 < self.width).then(|| Coord { x: c.x + 1, y: c.y }),
            Dir::West => (c.x > 0).then(|| Coord { x: c.x - 1, y: c.y }),
            Dir::Local => None,
        };
        nc.map(|c| self.node_at(c))
    }

    /// Deterministic dimension-order (X-Y) routing: the output port a packet
    /// at `here` takes toward `dest`. Returns [`Dir::Local`] on arrival.
    #[must_use]
    pub fn xy_route(&self, here: NodeId, dest: NodeId) -> Dir {
        let h = self.coord_of(here);
        let d = self.coord_of(dest);
        if h.x < d.x {
            Dir::East
        } else if h.x > d.x {
            Dir::West
        } else if h.y < d.y {
            Dir::South
        } else if h.y > d.y {
            Dir::North
        } else {
            Dir::Local
        }
    }

    /// Y-X dimension-order routing (rows first). Deadlock-free like X-Y.
    #[must_use]
    pub fn yx_route(&self, here: NodeId, dest: NodeId) -> Dir {
        let h = self.coord_of(here);
        let d = self.coord_of(dest);
        if h.y < d.y {
            Dir::South
        } else if h.y > d.y {
            Dir::North
        } else if h.x < d.x {
            Dir::East
        } else if h.x > d.x {
            Dir::West
        } else {
            Dir::Local
        }
    }

    /// Routes by the configured dimension-order algorithm.
    #[must_use]
    pub fn route(&self, algo: RoutingAlgorithm, here: NodeId, dest: NodeId) -> Dir {
        match algo {
            RoutingAlgorithm::XY => self.xy_route(here, dest),
            RoutingAlgorithm::YX => self.yx_route(here, dest),
        }
    }

    /// Manhattan hop distance between two nodes.
    #[must_use]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        u32::from(ca.x.abs_diff(cb.x)) + u32::from(ca.y.abs_diff(cb.y))
    }

    /// Corner nodes where memory controllers attach, in the paper's layout:
    /// `count` of 1, 2 or 4. Two controllers sit at *opposite* corners
    /// (Section 4.1, 16-core setup); four occupy all corners.
    ///
    /// # Panics
    ///
    /// Panics if `count` is not 1, 2 or 4.
    #[must_use]
    pub fn corner_nodes(&self, count: usize) -> Vec<NodeId> {
        let nw = self.node_at(Coord { x: 0, y: 0 });
        let ne = self.node_at(Coord {
            x: self.width - 1,
            y: 0,
        });
        let sw = self.node_at(Coord {
            x: 0,
            y: self.height - 1,
        });
        let se = self.node_at(Coord {
            x: self.width - 1,
            y: self.height - 1,
        });
        match count {
            1 => vec![nw],
            2 => vec![nw, se],
            4 => vec![nw, ne, sw, se],
            _ => panic!("unsupported controller count {count} (need 1, 2 or 4)"),
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh48() -> Mesh {
        Mesh::new(8, 4)
    }

    #[test]
    fn node_coord_roundtrip() {
        let m = mesh48();
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
        assert_eq!(m.num_nodes(), 32);
    }

    #[test]
    fn neighbors_at_edges() {
        let m = mesh48();
        let nw = m.node_at(Coord { x: 0, y: 0 });
        assert_eq!(m.neighbor(nw, Dir::North), None);
        assert_eq!(m.neighbor(nw, Dir::West), None);
        assert_eq!(m.neighbor(nw, Dir::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(nw, Dir::South), Some(NodeId(8)));
        assert_eq!(m.neighbor(nw, Dir::Local), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = mesh48();
        for n in m.nodes() {
            for d in [Dir::North, Dir::South, Dir::East, Dir::West] {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = mesh48();
        let src = m.node_at(Coord { x: 1, y: 1 });
        let dst = m.node_at(Coord { x: 5, y: 3 });
        assert_eq!(m.xy_route(src, dst), Dir::East);
        let aligned = m.node_at(Coord { x: 5, y: 1 });
        assert_eq!(m.xy_route(aligned, dst), Dir::South);
        assert_eq!(m.xy_route(dst, dst), Dir::Local);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = mesh48();
        for src in m.nodes() {
            for dst in m.nodes() {
                let mut here = src;
                let mut hops = 0;
                loop {
                    let d = m.xy_route(here, dst);
                    if d == Dir::Local {
                        break;
                    }
                    here = m.neighbor(here, d).expect("route must stay in mesh");
                    hops += 1;
                    assert!(hops <= 64, "routing loop from {src} to {dst}");
                }
                assert_eq!(here, dst);
                assert_eq!(hops, m.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn corners_match_paper_layout() {
        let m = mesh48();
        assert_eq!(
            m.corner_nodes(4),
            vec![NodeId(0), NodeId(7), NodeId(24), NodeId(31)]
        );
        assert_eq!(m.corner_nodes(2), vec![NodeId(0), NodeId(31)]);
        assert_eq!(m.corner_nodes(1), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "unsupported controller count")]
    fn bad_corner_count_panics() {
        let _ = mesh48().corner_nodes(3);
    }

    #[test]
    fn yx_routes_y_first() {
        let m = mesh48();
        let src = m.node_at(Coord { x: 1, y: 1 });
        let dst = m.node_at(Coord { x: 5, y: 3 });
        assert_eq!(m.yx_route(src, dst), Dir::South);
        let aligned = m.node_at(Coord { x: 1, y: 3 });
        assert_eq!(m.yx_route(aligned, dst), Dir::East);
        assert_eq!(m.route(RoutingAlgorithm::YX, dst, dst), Dir::Local);
        assert_eq!(m.route(RoutingAlgorithm::XY, src, dst), Dir::East);
    }

    #[test]
    fn yx_route_always_reaches_destination() {
        let m = mesh48();
        for src in m.nodes() {
            for dst in m.nodes() {
                let mut here = src;
                let mut hops = 0;
                loop {
                    let d = m.yx_route(here, dst);
                    if d == Dir::Local {
                        break;
                    }
                    here = m.neighbor(here, d).expect("route must stay in mesh");
                    hops += 1;
                    assert!(hops <= 64, "routing loop from {src} to {dst}");
                }
                assert_eq!(here, dst);
                assert_eq!(hops, m.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn dir_indices_are_stable() {
        for (i, d) in Dir::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
        assert_eq!(Dir::East.opposite(), Dir::West);
        assert_eq!(Dir::Local.opposite(), Dir::Local);
    }
}
