//! Network topologies: node identifiers, coordinates, neighbors, routing,
//! and the positions where memory controllers attach.
//!
//! Four fabrics share one [`Topology`] value (see `DESIGN.md` §13):
//!
//! * **mesh** — the paper's 2D mesh, bit-identical to the pre-topology
//!   code (5 ports, dimension-order routing, corner controllers).
//! * **torus** — mesh plus wraparound links; shortest-direction routing
//!   per dimension with dateline VC subclasses for deadlock freedom
//!   (see [`Topology::vc_subclass`]).
//! * **cmesh** — concentrated mesh: `c` tiles share one router. The tile
//!   grid (cores, caches, MCs) is unchanged; only the router grid shrinks.
//! * **express** — mesh plus express ("ruche") channels that skip a fixed
//!   number of routers per hop in each dimension, the BSG `RUCHE_FACTOR`
//!   parameterization. Routers grow four extra ports.
//!
//! Two coordinate spaces coexist: **tiles** (`num_nodes`, `coord_of`,
//! `node_at`, MC placement, workload mapping) and **routers**
//! (`num_routers`, `router_coord`, `neighbor`, `route`). They coincide on
//! every fabric except the concentrated mesh, where [`Topology::router_of`]
//! maps a tile to the router serving its block.

use noclat_sim::config::{McPlacement, RoutingAlgorithm, TopologyConfig, TopologyKind};

/// Index of a tile or router, row-major within its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The index as `usize`, for container indexing.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A grid coordinate: `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0-based, grows eastward).
    pub x: u16,
    /// Row (0-based, grows southward).
    pub y: u16,
}

/// A router port. The first four are the mesh directions and `Local` is
/// the tile's injection/ejection port; the `Express*` ports (indices 5..9)
/// exist only on the express fabric and carry the skip channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward the last row.
    South,
    /// Toward the last column.
    East,
    /// Toward column 0.
    West,
    /// The tile attached to this router.
    Local,
    /// Express channel toward row 0 (skips `express_skip` routers).
    ExpressNorth,
    /// Express channel toward the last row.
    ExpressSouth,
    /// Express channel toward the last column.
    ExpressEast,
    /// Express channel toward column 0.
    ExpressWest,
}

impl Dir {
    /// The five mesh ports, in port-index order. Kept at five — the
    /// express ports only exist on the express fabric; size port arrays
    /// with [`Topology::num_ports`] and iterate [`Topology::ports`].
    pub const ALL: [Dir; 5] = [Dir::North, Dir::South, Dir::East, Dir::West, Dir::Local];

    /// All nine ports of an express router, in port-index order.
    pub const EXPRESS_ALL: [Dir; 9] = [
        Dir::North,
        Dir::South,
        Dir::East,
        Dir::West,
        Dir::Local,
        Dir::ExpressNorth,
        Dir::ExpressSouth,
        Dir::ExpressEast,
        Dir::ExpressWest,
    ];

    /// Port index (0..=8; the mesh ports keep their historical 0..=4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
            Dir::Local => 4,
            Dir::ExpressNorth => 5,
            Dir::ExpressSouth => 6,
            Dir::ExpressEast => 7,
            Dir::ExpressWest => 8,
        }
    }

    /// The opposite direction. `Local` is its own opposite.
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::Local => Dir::Local,
            Dir::ExpressNorth => Dir::ExpressSouth,
            Dir::ExpressSouth => Dir::ExpressNorth,
            Dir::ExpressEast => Dir::ExpressWest,
            Dir::ExpressWest => Dir::ExpressEast,
        }
    }
}

/// A `width × height` tile grid wired by one of four fabrics.
///
/// Constructed via [`Topology::new`] (plain mesh, the historical
/// constructor), the per-fabric constructors, or [`Topology::from_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    kind: TopologyKind,
    width: u16,
    height: u16,
    /// Tiles per router (1 except on cmesh).
    concentration: u16,
    /// Express skip distance (0 except on express).
    skip: u16,
}

/// The historical name: every pre-topology API took a `Mesh`, and a plain
/// mesh is still what `Mesh::new` builds.
pub type Mesh = Topology;

impl Topology {
    /// Creates a plain 2D mesh (the historical constructor).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Topology {
            kind: TopologyKind::Mesh,
            width,
            height,
            concentration: 1,
            skip: 0,
        }
    }

    /// Creates a torus over the same tile grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn torus(width: u16, height: u16) -> Self {
        Topology {
            kind: TopologyKind::Torus,
            ..Self::new(width, height)
        }
    }

    /// Creates a concentrated mesh with `concentration` tiles per router
    /// (1, 2 → 2×1 blocks, or 4 → 2×2 blocks).
    ///
    /// # Panics
    ///
    /// Panics if the factor is unsupported or the blocks don't tile the
    /// grid — [`SystemConfig::validate`](noclat_sim::config::SystemConfig::validate)
    /// reports these as typed errors before construction.
    #[must_use]
    pub fn cmesh(width: u16, height: u16, concentration: u16) -> Self {
        let t = Topology {
            kind: TopologyKind::CMesh,
            concentration,
            ..Self::new(width, height)
        };
        let (cx, cy) = t.block_dims();
        assert!(
            width.is_multiple_of(cx) && height.is_multiple_of(cy),
            "concentration {concentration} does not tile a {width}x{height} grid"
        );
        t
    }

    /// Creates a mesh with express channels skipping `skip` routers.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ skip < min(width, height)` — validated as a
    /// typed error at the config layer before construction.
    #[must_use]
    pub fn express(width: u16, height: u16, skip: u16) -> Self {
        assert!(
            skip >= 2 && skip < width.min(height),
            "express skip {skip} out of range for {width}x{height}"
        );
        Topology {
            kind: TopologyKind::Express,
            skip,
            ..Self::new(width, height)
        }
    }

    /// Builds the fabric a [`TopologyConfig`] describes.
    ///
    /// # Panics
    ///
    /// Panics on parameter combinations that
    /// [`SystemConfig::validate`](noclat_sim::config::SystemConfig::validate)
    /// rejects — validate first to get a typed error instead.
    #[must_use]
    pub fn from_config(cfg: &TopologyConfig) -> Self {
        match cfg.kind {
            TopologyKind::Mesh => Self::new(cfg.width, cfg.height),
            TopologyKind::Torus => Self::torus(cfg.width, cfg.height),
            TopologyKind::CMesh => Self::cmesh(cfg.width, cfg.height, cfg.concentration),
            TopologyKind::Express => Self::express(cfg.width, cfg.height, cfg.express_skip),
        }
    }

    /// Which fabric this is.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of tile columns.
    #[must_use]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Number of tile rows.
    #[must_use]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Tiles per router (1 except on cmesh).
    #[must_use]
    pub fn concentration(&self) -> u16 {
        self.concentration
    }

    /// Express skip distance (0 except on express).
    #[must_use]
    pub fn express_skip(&self) -> u16 {
        self.skip
    }

    /// This fabric as a [`TopologyConfig`] (MC placement defaults to
    /// `Corner` — placement is a system-level concern the fabric itself
    /// does not carry).
    #[must_use]
    pub fn config(&self) -> TopologyConfig {
        let mut cfg = match self.kind {
            TopologyKind::Mesh => TopologyConfig::mesh(self.width, self.height),
            TopologyKind::Torus => TopologyConfig::torus(self.width, self.height),
            TopologyKind::CMesh => TopologyConfig::cmesh(self.width, self.height, 1),
            TopologyKind::Express => TopologyConfig::express(self.width, self.height, 2),
        };
        cfg.concentration = self.concentration;
        cfg.express_skip = self.skip;
        cfg
    }

    /// Tile-block dimensions per router: (columns, rows).
    fn block_dims(&self) -> (u16, u16) {
        match self.concentration {
            1 => (1, 1),
            2 => (2, 1),
            4 => (2, 2),
            c => panic!("unsupported concentration factor {c}"),
        }
    }

    /// Router-grid dimensions: (columns, rows).
    fn router_dims(&self) -> (u16, u16) {
        let (cx, cy) = self.block_dims();
        (self.width / cx, self.height / cy)
    }

    // -- tile space ------------------------------------------------------

    /// Total tile count (`width × height`) — one core per tile.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Tile at a coordinate (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "coord out of mesh");
        NodeId(c.y * self.width + c.x)
    }

    /// Coordinate of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the grid.
    #[must_use]
    pub fn coord_of(&self, n: NodeId) -> Coord {
        assert!(n.index() < self.num_nodes(), "node out of mesh");
        Coord {
            x: n.0 % self.width,
            y: n.0 / self.width,
        }
    }

    /// Iterator over all tile ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    // -- router space ----------------------------------------------------

    /// Total router count (`num_nodes / concentration`).
    #[must_use]
    pub fn num_routers(&self) -> usize {
        self.num_nodes() / usize::from(self.concentration)
    }

    /// The router serving a tile. Identity on every fabric except cmesh.
    ///
    /// # Panics
    ///
    /// Panics if the tile id is outside the grid.
    #[must_use]
    pub fn router_of(&self, tile: NodeId) -> NodeId {
        if self.concentration == 1 {
            assert!(tile.index() < self.num_nodes(), "node out of mesh");
            return tile;
        }
        let c = self.coord_of(tile);
        let (cx, cy) = self.block_dims();
        let (rw, _) = self.router_dims();
        NodeId((c.y / cy) * rw + (c.x / cx))
    }

    /// Coordinate of a router in the router grid.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the router grid.
    #[must_use]
    pub fn router_coord(&self, r: NodeId) -> Coord {
        assert!(r.index() < self.num_routers(), "router out of grid");
        let (rw, _) = self.router_dims();
        Coord {
            x: r.0 % rw,
            y: r.0 / rw,
        }
    }

    /// Router at a router-grid coordinate.
    fn router_at(&self, c: Coord) -> NodeId {
        let (rw, rh) = self.router_dims();
        assert!(c.x < rw && c.y < rh, "router coord out of grid");
        NodeId(c.y * rw + c.x)
    }

    /// Iterator over all router ids.
    pub fn routers(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_routers() as u16).map(NodeId)
    }

    // -- ports and links -------------------------------------------------

    /// Ports per router: 5 on mesh/torus/cmesh, 9 on express.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        match self.kind {
            TopologyKind::Express => Dir::EXPRESS_ALL.len(),
            _ => Dir::ALL.len(),
        }
    }

    /// The ports of this fabric, in port-index order.
    #[must_use]
    pub fn ports(&self) -> &'static [Dir] {
        match self.kind {
            TopologyKind::Express => &Dir::EXPRESS_ALL,
            _ => &Dir::ALL,
        }
    }

    /// The neighboring **router** reached through a port, if that link
    /// exists. Wraparound on torus; `±skip` jumps on the express ports.
    #[must_use]
    pub fn neighbor(&self, n: NodeId, d: Dir) -> Option<NodeId> {
        let (rw, rh) = self.router_dims();
        let c = self.router_coord(n);
        let wrap = self.kind == TopologyKind::Torus;
        let nc =
            match d {
                Dir::North => {
                    if c.y > 0 {
                        Some(Coord { x: c.x, y: c.y - 1 })
                    } else if wrap && rh > 1 {
                        Some(Coord { x: c.x, y: rh - 1 })
                    } else {
                        None
                    }
                }
                Dir::South => {
                    if c.y + 1 < rh {
                        Some(Coord { x: c.x, y: c.y + 1 })
                    } else if wrap && rh > 1 {
                        Some(Coord { x: c.x, y: 0 })
                    } else {
                        None
                    }
                }
                Dir::East => {
                    if c.x + 1 < rw {
                        Some(Coord { x: c.x + 1, y: c.y })
                    } else if wrap && rw > 1 {
                        Some(Coord { x: 0, y: c.y })
                    } else {
                        None
                    }
                }
                Dir::West => {
                    if c.x > 0 {
                        Some(Coord { x: c.x - 1, y: c.y })
                    } else if wrap && rw > 1 {
                        Some(Coord { x: rw - 1, y: c.y })
                    } else {
                        None
                    }
                }
                Dir::Local => None,
                Dir::ExpressNorth => {
                    (self.kind == TopologyKind::Express && c.y >= self.skip).then(|| Coord {
                        x: c.x,
                        y: c.y - self.skip,
                    })
                }
                Dir::ExpressSouth => (self.kind == TopologyKind::Express && c.y + self.skip < rh)
                    .then(|| Coord {
                        x: c.x,
                        y: c.y + self.skip,
                    }),
                Dir::ExpressEast => (self.kind == TopologyKind::Express && c.x + self.skip < rw)
                    .then(|| Coord {
                        x: c.x + self.skip,
                        y: c.y,
                    }),
                Dir::ExpressWest => {
                    (self.kind == TopologyKind::Express && c.x >= self.skip).then(|| Coord {
                        x: c.x - self.skip,
                        y: c.y,
                    })
                }
            };
        nc.map(|c| self.router_at(c))
    }

    // -- routing ---------------------------------------------------------

    /// One routing step in a single dimension, mesh-style (no wraparound).
    fn mesh_step(from: u16, to: u16, pos: Dir, neg: Dir) -> Option<Dir> {
        match from.cmp(&to) {
            std::cmp::Ordering::Less => Some(pos),
            std::cmp::Ordering::Greater => Some(neg),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// One routing step around a ring: shortest direction, ties broken
    /// toward the positive direction (East/South).
    fn ring_step(from: u16, to: u16, size: u16, pos: Dir, neg: Dir) -> Option<Dir> {
        if from == to {
            return None;
        }
        let fwd = (to + size - from) % size;
        if u32::from(fwd) * 2 <= u32::from(size) {
            Some(pos)
        } else {
            Some(neg)
        }
    }

    /// One routing step in a dimension on the express fabric: take the
    /// skip channel while at least `skip` hops remain, else walk.
    fn express_step(from: u16, to: u16, skip: u16, pos: Dir, neg: Dir) -> Option<Dir> {
        match from.cmp(&to) {
            std::cmp::Ordering::Less if to - from >= skip => Some(match pos {
                Dir::East => Dir::ExpressEast,
                _ => Dir::ExpressSouth,
            }),
            std::cmp::Ordering::Less => Some(pos),
            std::cmp::Ordering::Greater if from - to >= skip => Some(match neg {
                Dir::West => Dir::ExpressWest,
                _ => Dir::ExpressNorth,
            }),
            std::cmp::Ordering::Greater => Some(neg),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The step to take in one dimension, per fabric.
    fn dim_step(&self, from: u16, to: u16, size: u16, pos: Dir, neg: Dir) -> Option<Dir> {
        match self.kind {
            TopologyKind::Mesh | TopologyKind::CMesh => Self::mesh_step(from, to, pos, neg),
            TopologyKind::Torus => Self::ring_step(from, to, size, pos, neg),
            TopologyKind::Express => Self::express_step(from, to, self.skip, pos, neg),
        }
    }

    /// Dimension-order (X-Y) routing: the output port a packet at router
    /// `here` takes toward the **tile** `dest`. Returns [`Dir::Local`] when
    /// `here` is the router serving `dest`.
    #[must_use]
    pub fn xy_route(&self, here: NodeId, dest: NodeId) -> Dir {
        let (rw, rh) = self.router_dims();
        let h = self.router_coord(here);
        let d = self.router_coord(self.router_of(dest));
        self.dim_step(h.x, d.x, rw, Dir::East, Dir::West)
            .or_else(|| self.dim_step(h.y, d.y, rh, Dir::South, Dir::North))
            .unwrap_or(Dir::Local)
    }

    /// Y-X dimension-order routing (rows first).
    #[must_use]
    pub fn yx_route(&self, here: NodeId, dest: NodeId) -> Dir {
        let (rw, rh) = self.router_dims();
        let h = self.router_coord(here);
        let d = self.router_coord(self.router_of(dest));
        self.dim_step(h.y, d.y, rh, Dir::South, Dir::North)
            .or_else(|| self.dim_step(h.x, d.x, rw, Dir::East, Dir::West))
            .unwrap_or(Dir::Local)
    }

    /// Routes by the configured dimension-order algorithm.
    #[must_use]
    pub fn route(&self, algo: RoutingAlgorithm, here: NodeId, dest: NodeId) -> Dir {
        match algo {
            RoutingAlgorithm::XY => self.xy_route(here, dest),
            RoutingAlgorithm::YX => self.yx_route(here, dest),
        }
    }

    /// Router-grid hop distance between the routers serving tiles `a` and
    /// `b` — exactly the hops the deterministic route takes.
    #[must_use]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (rw, rh) = self.router_dims();
        let ca = self.router_coord(self.router_of(a));
        let cb = self.router_coord(self.router_of(b));
        let dx = u32::from(ca.x.abs_diff(cb.x));
        let dy = u32::from(ca.y.abs_diff(cb.y));
        match self.kind {
            TopologyKind::Mesh | TopologyKind::CMesh => dx + dy,
            TopologyKind::Torus => dx.min(u32::from(rw) - dx) + dy.min(u32::from(rh) - dy),
            TopologyKind::Express => {
                let skip = u32::from(self.skip);
                (dx / skip + dx % skip) + (dy / skip + dy % skip)
            }
        }
    }

    /// Every `(router, out-port)` channel a packet from tile `src` to tile
    /// `dest` crosses under the deterministic route, in traversal order,
    /// ending with the ejection channel `(dest_router, Dir::Local)`. This
    /// is the contention footprint the analytic latency model charges a
    /// packet for: each entry is one switch/link the packet must win.
    ///
    /// The walk follows [`Topology::route`]/[`Topology::neighbor`] exactly,
    /// so its length (minus the ejection entry) equals
    /// [`Topology::hop_distance`] on every fabric.
    #[must_use]
    pub fn route_channels(
        &self,
        algo: RoutingAlgorithm,
        src: NodeId,
        dest: NodeId,
    ) -> Vec<(NodeId, Dir)> {
        let target = self.router_of(dest);
        let mut here = self.router_of(src);
        let mut out = Vec::new();
        // Deterministic dimension-order routes are loop-free and strictly
        // shorter than the router count; the bound only guards corruption.
        let bound = self.num_routers() + 1;
        while here != target {
            assert!(
                out.len() < bound,
                "route from {src:?} to {dest:?} exceeded {bound} hops"
            );
            let d = self.route(algo, here, dest);
            debug_assert!(d != Dir::Local, "route stalled before reaching {dest:?}");
            out.push((here, d));
            here = self
                .neighbor(here, d)
                .expect("deterministic routes only traverse existing links");
        }
        out.push((target, Dir::Local));
        out
    }

    // -- deadlock avoidance ----------------------------------------------

    /// Dateline VC subclass for a hop out of router `here` toward tile
    /// `dest` through port `d` — `Some(0|1)` on a torus, `None` elsewhere
    /// (mesh-like fabrics need no dateline discipline).
    ///
    /// The discipline is history-free: a hop whose remaining path in the
    /// traversed dimension still crosses the wraparound edge uses subclass
    /// 0, and subclass 1 once it no longer does (including the wrap hop
    /// itself). Within subclass 0 positions move monotonically toward the
    /// wrap edge and within subclass 1 monotonically toward the
    /// destination, so channel dependencies only ever go 0 → 1 and the
    /// dependency graph is acyclic (`DESIGN.md` §13, proven empirically by
    /// `proptest_network::torus_dateline_dependencies_are_acyclic`).
    #[must_use]
    pub fn vc_subclass(&self, here: NodeId, dest: NodeId, d: Dir) -> Option<u8> {
        if self.kind != TopologyKind::Torus {
            return None;
        }
        let (rw, rh) = self.router_dims();
        let h = self.router_coord(here);
        let t = self.router_coord(self.router_of(dest));
        let (p, target, size, positive) = match d {
            Dir::East => (h.x, t.x, rw, true),
            Dir::West => (h.x, t.x, rw, false),
            Dir::South => (h.y, t.y, rh, true),
            Dir::North => (h.y, t.y, rh, false),
            _ => return None,
        };
        let after = if positive {
            (p + 1) % size
        } else {
            (p + size - 1) % size
        };
        let wrap_remaining = if positive {
            after > target
        } else {
            after < target
        };
        Some(u8::from(!wrap_remaining))
    }

    // -- memory-controller attachment ------------------------------------

    /// Corner tiles where memory controllers attach, in the paper's
    /// layout: `count` of 1, 2 or 4. Two controllers sit at *opposite*
    /// corners (Section 4.1, 16-core setup); four occupy all corners.
    ///
    /// # Panics
    ///
    /// Panics if `count` is not 1, 2 or 4.
    #[must_use]
    pub fn corner_nodes(&self, count: usize) -> Vec<NodeId> {
        let nw = self.node_at(Coord { x: 0, y: 0 });
        let ne = self.node_at(Coord {
            x: self.width - 1,
            y: 0,
        });
        let sw = self.node_at(Coord {
            x: 0,
            y: self.height - 1,
        });
        let se = self.node_at(Coord {
            x: self.width - 1,
            y: self.height - 1,
        });
        match count {
            1 => vec![nw],
            2 => vec![nw, se],
            4 => vec![nw, ne, sw, se],
            _ => panic!("unsupported controller count {count} (need 1, 2 or 4)"),
        }
    }

    /// Tiles where memory controllers attach under a placement policy.
    /// `Corner` reproduces [`Topology::corner_nodes`] exactly (the
    /// pre-placement behavior); `Edge` uses edge midpoints (top, bottom,
    /// then left/right); `Center` uses the central 2×2 block.
    ///
    /// # Panics
    ///
    /// Panics if `count` is not 1, 2 or 4.
    #[must_use]
    pub fn mc_nodes(&self, placement: McPlacement, count: usize) -> Vec<NodeId> {
        match placement {
            McPlacement::Corner => self.corner_nodes(count),
            McPlacement::Edge => {
                let top = self.node_at(Coord {
                    x: self.width / 2,
                    y: 0,
                });
                let bottom = self.node_at(Coord {
                    x: self.width / 2,
                    y: self.height - 1,
                });
                let left = self.node_at(Coord {
                    x: 0,
                    y: self.height / 2,
                });
                let right = self.node_at(Coord {
                    x: self.width - 1,
                    y: self.height / 2,
                });
                match count {
                    1 => vec![top],
                    2 => vec![top, bottom],
                    4 => vec![top, bottom, left, right],
                    _ => panic!("unsupported controller count {count} (need 1, 2 or 4)"),
                }
            }
            McPlacement::Center => {
                let (cx, cy) = (self.width / 2, self.height / 2);
                let block = [
                    Coord {
                        x: cx - 1,
                        y: cy - 1,
                    },
                    Coord { x: cx, y: cy },
                    Coord { x: cx, y: cy - 1 },
                    Coord { x: cx - 1, y: cy },
                ];
                match count {
                    1 => vec![self.node_at(block[1])],
                    2 => vec![self.node_at(block[0]), self.node_at(block[1])],
                    4 => block.iter().map(|&c| self.node_at(c)).collect(),
                    _ => panic!("unsupported controller count {count} (need 1, 2 or 4)"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh48() -> Mesh {
        Mesh::new(8, 4)
    }

    #[test]
    fn node_coord_roundtrip() {
        let m = mesh48();
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
        assert_eq!(m.num_nodes(), 32);
    }

    #[test]
    fn neighbors_at_edges() {
        let m = mesh48();
        let nw = m.node_at(Coord { x: 0, y: 0 });
        assert_eq!(m.neighbor(nw, Dir::North), None);
        assert_eq!(m.neighbor(nw, Dir::West), None);
        assert_eq!(m.neighbor(nw, Dir::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(nw, Dir::South), Some(NodeId(8)));
        assert_eq!(m.neighbor(nw, Dir::Local), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = mesh48();
        for n in m.nodes() {
            for d in [Dir::North, Dir::South, Dir::East, Dir::West] {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn xy_routes_x_first() {
        let m = mesh48();
        let src = m.node_at(Coord { x: 1, y: 1 });
        let dst = m.node_at(Coord { x: 5, y: 3 });
        assert_eq!(m.xy_route(src, dst), Dir::East);
        let aligned = m.node_at(Coord { x: 5, y: 1 });
        assert_eq!(m.xy_route(aligned, dst), Dir::South);
        assert_eq!(m.xy_route(dst, dst), Dir::Local);
    }

    #[test]
    fn xy_route_always_reaches_destination() {
        let m = mesh48();
        for src in m.nodes() {
            for dst in m.nodes() {
                let mut here = src;
                let mut hops = 0;
                loop {
                    let d = m.xy_route(here, dst);
                    if d == Dir::Local {
                        break;
                    }
                    here = m.neighbor(here, d).expect("route must stay in mesh");
                    hops += 1;
                    assert!(hops <= 64, "routing loop from {src} to {dst}");
                }
                assert_eq!(here, dst);
                assert_eq!(hops, m.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn corners_match_paper_layout() {
        let m = mesh48();
        assert_eq!(
            m.corner_nodes(4),
            vec![NodeId(0), NodeId(7), NodeId(24), NodeId(31)]
        );
        assert_eq!(m.corner_nodes(2), vec![NodeId(0), NodeId(31)]);
        assert_eq!(m.corner_nodes(1), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "unsupported controller count")]
    fn bad_corner_count_panics() {
        let _ = mesh48().corner_nodes(3);
    }

    #[test]
    fn yx_routes_y_first() {
        let m = mesh48();
        let src = m.node_at(Coord { x: 1, y: 1 });
        let dst = m.node_at(Coord { x: 5, y: 3 });
        assert_eq!(m.yx_route(src, dst), Dir::South);
        let aligned = m.node_at(Coord { x: 1, y: 3 });
        assert_eq!(m.yx_route(aligned, dst), Dir::East);
        assert_eq!(m.route(RoutingAlgorithm::YX, dst, dst), Dir::Local);
        assert_eq!(m.route(RoutingAlgorithm::XY, src, dst), Dir::East);
    }

    #[test]
    fn yx_route_always_reaches_destination() {
        let m = mesh48();
        for src in m.nodes() {
            for dst in m.nodes() {
                let mut here = src;
                let mut hops = 0;
                loop {
                    let d = m.yx_route(here, dst);
                    if d == Dir::Local {
                        break;
                    }
                    here = m.neighbor(here, d).expect("route must stay in mesh");
                    hops += 1;
                    assert!(hops <= 64, "routing loop from {src} to {dst}");
                }
                assert_eq!(here, dst);
                assert_eq!(hops, m.hop_distance(src, dst));
            }
        }
    }

    #[test]
    fn dir_indices_are_stable() {
        for (i, d) in Dir::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
        for (i, d) in Dir::EXPRESS_ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
        assert_eq!(Dir::East.opposite(), Dir::West);
        assert_eq!(Dir::Local.opposite(), Dir::Local);
        assert_eq!(Dir::ExpressNorth.opposite(), Dir::ExpressSouth);
        assert_eq!(Dir::ExpressWest.opposite(), Dir::ExpressEast);
    }

    #[test]
    fn torus_wraps_and_routes_shortest() {
        let t = Topology::torus(8, 4);
        let nw = t.node_at(Coord { x: 0, y: 0 });
        // Wraparound links exist at the edges.
        assert_eq!(t.neighbor(nw, Dir::West), Some(NodeId(7)));
        assert_eq!(t.neighbor(nw, Dir::North), Some(NodeId(24)));
        // 0 → x=6 is 2 hops west around the ring, not 6 east.
        let dst = t.node_at(Coord { x: 6, y: 0 });
        assert_eq!(t.xy_route(nw, dst), Dir::West);
        assert_eq!(t.hop_distance(nw, dst), 2);
        // Ties break toward the positive direction (East/South).
        let half = t.node_at(Coord { x: 4, y: 0 });
        assert_eq!(t.xy_route(nw, half), Dir::East);
        // On 8×4 the farthest tile is 4+2 hops away.
        let far = t.node_at(Coord { x: 4, y: 2 });
        assert_eq!(t.hop_distance(nw, far), 6);
    }

    #[test]
    fn torus_dateline_subclass_transitions_once() {
        let t = Topology::torus(8, 4);
        // Route 6 → 1 goes east across the wrap edge: subclass 0 while the
        // wrap is still ahead, subclass 1 from the wrap hop onward.
        let src = t.node_at(Coord { x: 6, y: 0 });
        let dst = t.node_at(Coord { x: 1, y: 0 });
        let mut here = src;
        let mut classes = Vec::new();
        loop {
            let d = t.xy_route(here, dst);
            if d == Dir::Local {
                break;
            }
            classes.push(t.vc_subclass(here, dst, d).expect("torus hop"));
            here = t.neighbor(here, d).expect("link exists");
        }
        assert_eq!(classes, vec![0, 1, 1]);
        // Mesh-like fabrics never ask for a subclass.
        assert_eq!(mesh48().vc_subclass(NodeId(0), NodeId(3), Dir::East), None);
        assert_eq!(t.vc_subclass(src, dst, Dir::Local), None);
    }

    #[test]
    fn cmesh_shares_routers_between_tiles() {
        let t = Topology::cmesh(8, 4, 4);
        assert_eq!(t.num_nodes(), 32, "tile grid unchanged");
        assert_eq!(t.num_routers(), 8, "2x2 blocks quarter the routers");
        // Tiles (0,0), (1,0), (0,1), (1,1) share router 0.
        for c in [
            Coord { x: 0, y: 0 },
            Coord { x: 1, y: 0 },
            Coord { x: 0, y: 1 },
            Coord { x: 1, y: 1 },
        ] {
            assert_eq!(t.router_of(t.node_at(c)), NodeId(0));
        }
        assert_eq!(t.router_of(t.node_at(Coord { x: 7, y: 3 })), NodeId(7));
        // Routing to a tile in the same block ejects immediately.
        let dst = t.node_at(Coord { x: 1, y: 1 });
        assert_eq!(t.xy_route(NodeId(0), dst), Dir::Local);
        assert_eq!(t.hop_distance(t.node_at(Coord { x: 0, y: 0 }), dst), 0);
        // c=1 degenerates to the identity mapping.
        let id = Topology::cmesh(8, 4, 1);
        assert_eq!(id.num_routers(), 32);
        for n in id.nodes() {
            assert_eq!(id.router_of(n), n);
        }
    }

    #[test]
    fn express_channels_skip_routers() {
        let t = Topology::express(8, 8, 2);
        assert_eq!(t.num_ports(), 9);
        assert_eq!(t.ports().len(), 9);
        let origin = t.node_at(Coord { x: 0, y: 0 });
        assert_eq!(
            t.neighbor(origin, Dir::ExpressEast),
            Some(t.node_at(Coord { x: 2, y: 0 }))
        );
        assert_eq!(t.neighbor(origin, Dir::ExpressWest), None);
        // 5 columns east = 2 express hops + 1 plain hop.
        let dst = t.node_at(Coord { x: 5, y: 0 });
        assert_eq!(t.xy_route(origin, dst), Dir::ExpressEast);
        assert_eq!(t.hop_distance(origin, dst), 3);
        // Within skip distance the plain port is used.
        let near = t.node_at(Coord { x: 1, y: 0 });
        assert_eq!(t.xy_route(origin, near), Dir::East);
        // Non-express fabrics expose no express links.
        assert_eq!(mesh48().neighbor(NodeId(0), Dir::ExpressEast), None);
        assert_eq!(mesh48().num_ports(), 5);
    }

    #[test]
    fn mc_placements_are_distinct_tiles() {
        let t = Topology::new(16, 16);
        for placement in [McPlacement::Corner, McPlacement::Edge, McPlacement::Center] {
            for count in [1, 2, 4] {
                let nodes = t.mc_nodes(placement, count);
                assert_eq!(nodes.len(), count);
                let mut dedup = nodes.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), count, "{placement:?} produced duplicates");
            }
        }
        // Corner placement is exactly the historical layout.
        assert_eq!(t.mc_nodes(McPlacement::Corner, 4), t.corner_nodes(4));
        // Center block on 16×16 surrounds (8,8).
        let center = t.mc_nodes(McPlacement::Center, 4);
        for n in center {
            let c = t.coord_of(n);
            assert!((7..=8).contains(&c.x) && (7..=8).contains(&c.y));
        }
    }

    #[test]
    fn route_channels_matches_hop_distance_on_every_fabric() {
        let fabrics = [
            Topology::new(8, 4),
            Topology::torus(8, 8),
            Topology::cmesh(8, 8, 4),
            Topology::express(8, 8, 2),
        ];
        for t in fabrics {
            for algo in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
                for src in t.nodes() {
                    for dest in t.nodes() {
                        let path = t.route_channels(algo, src, dest);
                        // Ejection channel is always last.
                        assert_eq!(
                            *path.last().unwrap(),
                            (t.router_of(dest), Dir::Local),
                            "{:?} {src:?}->{dest:?}",
                            t.kind()
                        );
                        assert_eq!(
                            path.len() as u32 - 1,
                            t.hop_distance(src, dest),
                            "{:?} {algo:?} {src:?}->{dest:?}",
                            t.kind()
                        );
                        // Consecutive channels are link-connected.
                        for w in path.windows(2) {
                            assert_eq!(t.neighbor(w[0].0, w[0].1), Some(w[1].0));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn from_config_builds_every_fabric() {
        use noclat_sim::config::TopologyConfig;
        let m = Topology::from_config(&TopologyConfig::mesh(8, 4));
        assert_eq!(m, Mesh::new(8, 4));
        assert_eq!(
            Topology::from_config(&TopologyConfig::torus(8, 4)).kind(),
            TopologyKind::Torus
        );
        assert_eq!(
            Topology::from_config(&TopologyConfig::cmesh(8, 4, 2)).num_routers(),
            16
        );
        assert_eq!(
            Topology::from_config(&TopologyConfig::express(8, 8, 3)).express_skip(),
            3
        );
    }
}
