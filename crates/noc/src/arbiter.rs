//! Priority- and age-aware arbitration (Section 3.3).
//!
//! A high-priority flit beats a normal-priority one *unless* the normal flit
//! is older by more than the starvation guard `T`. Within a class, older
//! flits win ("the routers also consider the local delays in addition to the
//! age fields"); remaining ties break round-robin.
//!
//! This is implemented as a scalar key: high-priority candidates get a bonus
//! of exactly `T` cycles on top of their effective age, so
//! `high wins ⇔ age_normal ≤ age_high + T`, which is the paper's rule.

use noclat_sim::config::StarvationPolicy;

use crate::packet::Priority;

/// A competitor in a VA or SA arbitration round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Caller-defined identifier (e.g. `(input_port, vc)` encoded as an
    /// index); returned on grant.
    pub tag: usize,
    /// Arbitration priority.
    pub priority: Priority,
    /// Effective age: header age plus time already waited at this router.
    pub effective_age: u64,
    /// Injection batch (used by the batching starvation policy).
    pub batch: u32,
}

/// Scalar arbitration key; larger wins.
#[must_use]
pub fn arbitration_key(priority: Priority, effective_age: u64, starvation_guard: u32) -> u64 {
    match priority {
        Priority::High => effective_age.saturating_add(u64::from(starvation_guard)),
        Priority::Normal => effective_age,
    }
}

/// Arbitration key under the batching policy: packets from an older batch
/// beat any priority difference; within a batch, high priority wins, then
/// age (the batching method the paper cites and contrasts with its age
/// guard).
#[must_use]
pub fn batching_key(batch: u32, priority: Priority, effective_age: u64) -> u64 {
    let batch_rank = u64::from(u32::MAX - batch) << 21;
    let pri = u64::from(priority == Priority::High) << 20;
    batch_rank + pri + effective_age.min((1 << 20) - 1)
}

/// Key for a candidate under the configured policy.
#[must_use]
pub fn key_for(policy: StarvationPolicy, guard: u32, c: &Candidate) -> u64 {
    match policy {
        StarvationPolicy::AgeGuard => arbitration_key(c.priority, c.effective_age, guard),
        StarvationPolicy::Batching { .. } => batching_key(c.batch, c.priority, c.effective_age),
        StarvationPolicy::OldestFirst => c.effective_age,
        StarvationPolicy::StaticPriority => u64::from(c.priority == Priority::High),
    }
}

/// The arbitration-policy seam (decision point 3 of the policy layer): maps
/// a [`Candidate`] to a scalar key; larger wins. Equal keys prefer the
/// higher priority class, then round-robin — that tie-break lives in
/// [`RoundRobinArbiter::pick_with`] and is shared by every policy.
///
/// Implementations must be stateless per-arbitration (the same candidate
/// always maps to the same key within a cycle) so that VA and SA stages can
/// share one policy object.
pub trait ArbitrationPolicy: std::fmt::Debug + Send + Sync {
    /// Scalar key for one candidate; larger wins.
    fn key(&self, c: &Candidate) -> u64;
    /// Registry name of this policy.
    fn name(&self) -> &'static str;
}

/// The paper's Section-3.3 rule: high priority wins unless a normal
/// candidate is older by more than the guard `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgeGuardArb {
    /// The starvation guard `T` in cycles.
    pub guard: u32,
}

impl ArbitrationPolicy for AgeGuardArb {
    fn key(&self, c: &Candidate) -> u64 {
        arbitration_key(c.priority, c.effective_age, self.guard)
    }
    fn name(&self) -> &'static str {
        "age-guard"
    }
}

/// The batching alternative the paper cites: older batch beats any priority
/// difference; within a batch, priority then age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingArb;

impl ArbitrationPolicy for BatchingArb {
    fn key(&self, c: &Candidate) -> u64 {
        batching_key(c.batch, c.priority, c.effective_age)
    }
    fn name(&self) -> &'static str {
        "batching"
    }
}

/// Pure global-age arbitration: oldest flit wins outright. Priority still
/// breaks exact-age ties (via the shared tie-break), but never overrides an
/// age difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OldestFirstArb;

impl ArbitrationPolicy for OldestFirstArb {
    fn key(&self, c: &Candidate) -> u64 {
        c.effective_age
    }
    fn name(&self) -> &'static str {
        "oldest-first"
    }
}

/// Pure static-priority arbitration: the priority class alone decides;
/// within a class, round-robin. No starvation protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticArb;

impl ArbitrationPolicy for StaticArb {
    fn key(&self, c: &Candidate) -> u64 {
        u64::from(c.priority == Priority::High)
    }
    fn name(&self) -> &'static str {
        "static"
    }
}

/// Resolves a [`StarvationPolicy`] configuration value to its policy
/// object. Routers hold the result behind an [`std::sync::Arc`] so the
/// router stays cheaply cloneable.
#[must_use]
pub fn arbitration_policy(
    policy: StarvationPolicy,
    guard: u32,
) -> std::sync::Arc<dyn ArbitrationPolicy> {
    match policy {
        StarvationPolicy::AgeGuard => std::sync::Arc::new(AgeGuardArb { guard }),
        StarvationPolicy::Batching { .. } => std::sync::Arc::new(BatchingArb),
        StarvationPolicy::OldestFirst => std::sync::Arc::new(OldestFirstArb),
        StarvationPolicy::StaticPriority => std::sync::Arc::new(StaticArb),
    }
}

/// Round-robin tie-breaking arbiter with the priority/age key above.
///
/// `pick` returns the winning candidate's `tag`. Ties on the key prefer the
/// higher priority class, then the first candidate at or after the rotating
/// pointer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter with its pointer at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks a winner among `candidates` under the paper's age-guard rule;
    /// returns its `tag`, or `None` when there are no candidates. Advances
    /// the round-robin pointer past the winner.
    pub fn pick(&mut self, candidates: &[Candidate], starvation_guard: u32) -> Option<usize> {
        self.pick_with(
            candidates,
            &AgeGuardArb {
                guard: starvation_guard,
            },
        )
    }

    /// Like [`RoundRobinArbiter::pick`], under an explicit arbitration
    /// policy.
    pub fn pick_with(
        &mut self,
        candidates: &[Candidate],
        policy: &dyn ArbitrationPolicy,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let n = candidates.len();
        let mut best: Option<(u64, Priority, usize)> = None; // (key, prio, offset)
        for offset in 0..n {
            let idx = (self.next + offset) % n;
            let c = candidates[idx];
            let key = policy.key(&c);
            let better = match best {
                None => true,
                Some((bk, bp, _)) => key > bk || (key == bk && c.priority > bp),
            };
            if better {
                best = Some((key, c.priority, idx));
            }
        }
        let (_, _, idx) = best.expect("non-empty candidate list");
        self.next = (idx + 1) % n.max(1);
        Some(candidates[idx].tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(tag: usize, priority: Priority, age: u64) -> Candidate {
        Candidate {
            tag,
            priority,
            effective_age: age,
            batch: 0,
        }
    }

    #[test]
    fn high_beats_normal_within_guard() {
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 100), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn starved_normal_beats_high() {
        // Normal is older than high by more than the guard (Section 3.3
        // condition 2), so it must win.
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 1500), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(0));
    }

    #[test]
    fn guard_boundary_prefers_high() {
        // age_normal == age_high + T is "not more than T greater" → high wins.
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 1010), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn oldest_wins_within_class() {
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[
                cand(0, Priority::Normal, 5),
                cand(1, Priority::Normal, 50),
                cand(2, Priority::Normal, 20),
            ],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn round_robin_rotates_on_ties() {
        let mut arb = RoundRobinArbiter::new();
        let cands = [
            cand(0, Priority::Normal, 7),
            cand(1, Priority::Normal, 7),
            cand(2, Priority::Normal, 7),
        ];
        let mut wins = Vec::new();
        for _ in 0..6 {
            wins.push(arb.pick(&cands, 1000).unwrap());
        }
        // Every candidate must win at least once across the rotation.
        for tag in 0..3 {
            assert!(wins.contains(&tag), "tag {tag} never won: {wins:?}");
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick(&[], 1000), None);
    }

    #[test]
    fn batching_older_batch_beats_priority() {
        let old_normal = Candidate {
            tag: 0,
            priority: Priority::Normal,
            effective_age: 5,
            batch: 2,
        };
        let new_high = Candidate {
            tag: 1,
            priority: Priority::High,
            effective_age: 900,
            batch: 3,
        };
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(
            arb.pick_with(&[old_normal, new_high], &BatchingArb),
            Some(0)
        );
    }

    #[test]
    fn batching_same_batch_uses_priority_then_age() {
        let normal = Candidate {
            tag: 0,
            priority: Priority::Normal,
            effective_age: 500,
            batch: 7,
        };
        let high = Candidate {
            tag: 1,
            priority: Priority::High,
            effective_age: 5,
            batch: 7,
        };
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick_with(&[normal, high], &BatchingArb), Some(1));
    }

    #[test]
    fn key_saturates() {
        assert_eq!(arbitration_key(Priority::High, u64::MAX, 1000), u64::MAX);
    }

    #[test]
    fn age_guard_tie_at_exactly_equal_ages_prefers_high() {
        // T_starve edge: with equal effective ages the keys differ by
        // exactly the guard, and with guard 0 the keys are *equal* — the
        // shared tie-break must still hand the grant to the High class.
        let mut arb = RoundRobinArbiter::new();
        let cands = [cand(0, Priority::Normal, 42), cand(1, Priority::High, 42)];
        assert_eq!(arb.pick(&cands, 1000), Some(1));
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick(&cands, 0), Some(1), "equal keys break by class");
    }

    #[test]
    fn policy_objects_match_key_for() {
        let cands = [
            cand(3, Priority::Normal, 1500),
            cand(4, Priority::High, 10),
            Candidate {
                tag: 5,
                priority: Priority::High,
                effective_age: 700,
                batch: 2,
            },
        ];
        let table: [(StarvationPolicy, &dyn ArbitrationPolicy); 4] = [
            (StarvationPolicy::AgeGuard, &AgeGuardArb { guard: 1000 }),
            (StarvationPolicy::Batching { interval: 64 }, &BatchingArb),
            (StarvationPolicy::OldestFirst, &OldestFirstArb),
            (StarvationPolicy::StaticPriority, &StaticArb),
        ];
        for (cfg, obj) in table {
            for c in &cands {
                assert_eq!(
                    key_for(cfg, 1000, c),
                    obj.key(c),
                    "{cfg:?} vs {}",
                    obj.name()
                );
            }
        }
    }

    #[test]
    fn oldest_first_ignores_priority_static_ignores_age() {
        let old_normal = cand(0, Priority::Normal, 500);
        let young_high = cand(1, Priority::High, 10);
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(
            arb.pick_with(&[old_normal, young_high], &OldestFirstArb),
            Some(0)
        );
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(
            arb.pick_with(&[old_normal, young_high], &StaticArb),
            Some(1)
        );
    }

    #[test]
    fn factory_resolves_all_variants() {
        let names: Vec<&str> = [
            StarvationPolicy::AgeGuard,
            StarvationPolicy::Batching { interval: 100 },
            StarvationPolicy::OldestFirst,
            StarvationPolicy::StaticPriority,
        ]
        .into_iter()
        .map(|p| arbitration_policy(p, 1000).name())
        .collect();
        assert_eq!(names, ["age-guard", "batching", "oldest-first", "static"]);
    }
}
