//! Priority- and age-aware arbitration (Section 3.3).
//!
//! A high-priority flit beats a normal-priority one *unless* the normal flit
//! is older by more than the starvation guard `T`. Within a class, older
//! flits win ("the routers also consider the local delays in addition to the
//! age fields"); remaining ties break round-robin.
//!
//! This is implemented as a scalar key: high-priority candidates get a bonus
//! of exactly `T` cycles on top of their effective age, so
//! `high wins ⇔ age_normal ≤ age_high + T`, which is the paper's rule.

use noclat_sim::config::StarvationPolicy;

use crate::packet::Priority;

/// A competitor in a VA or SA arbitration round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Caller-defined identifier (e.g. `(input_port, vc)` encoded as an
    /// index); returned on grant.
    pub tag: usize,
    /// Arbitration priority.
    pub priority: Priority,
    /// Effective age: header age plus time already waited at this router.
    pub effective_age: u64,
    /// Injection batch (used by the batching starvation policy).
    pub batch: u32,
}

/// Scalar arbitration key; larger wins.
#[must_use]
pub fn arbitration_key(priority: Priority, effective_age: u64, starvation_guard: u32) -> u64 {
    match priority {
        Priority::High => effective_age.saturating_add(u64::from(starvation_guard)),
        Priority::Normal => effective_age,
    }
}

/// Arbitration key under the batching policy: packets from an older batch
/// beat any priority difference; within a batch, high priority wins, then
/// age (the batching method the paper cites and contrasts with its age
/// guard).
#[must_use]
pub fn batching_key(batch: u32, priority: Priority, effective_age: u64) -> u64 {
    let batch_rank = u64::from(u32::MAX - batch) << 21;
    let pri = u64::from(priority == Priority::High) << 20;
    batch_rank + pri + effective_age.min((1 << 20) - 1)
}

/// Key for a candidate under the configured policy.
#[must_use]
pub fn key_for(policy: StarvationPolicy, guard: u32, c: &Candidate) -> u64 {
    match policy {
        StarvationPolicy::AgeGuard => arbitration_key(c.priority, c.effective_age, guard),
        StarvationPolicy::Batching { .. } => batching_key(c.batch, c.priority, c.effective_age),
    }
}

/// Round-robin tie-breaking arbiter with the priority/age key above.
///
/// `pick` returns the winning candidate's `tag`. Ties on the key prefer the
/// higher priority class, then the first candidate at or after the rotating
/// pointer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter with its pointer at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks a winner among `candidates`; returns its `tag`, or `None` when
    /// there are no candidates. Advances the round-robin pointer past the
    /// winner.
    pub fn pick(&mut self, candidates: &[Candidate], starvation_guard: u32) -> Option<usize> {
        self.pick_with(candidates, StarvationPolicy::AgeGuard, starvation_guard)
    }

    /// Like [`RoundRobinArbiter::pick`], under an explicit starvation
    /// policy.
    pub fn pick_with(
        &mut self,
        candidates: &[Candidate],
        policy: StarvationPolicy,
        starvation_guard: u32,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let n = candidates.len();
        let mut best: Option<(u64, Priority, usize)> = None; // (key, prio, offset)
        for offset in 0..n {
            let idx = (self.next + offset) % n;
            let c = candidates[idx];
            let key = key_for(policy, starvation_guard, &c);
            let better = match best {
                None => true,
                Some((bk, bp, _)) => key > bk || (key == bk && c.priority > bp),
            };
            if better {
                best = Some((key, c.priority, idx));
            }
        }
        let (_, _, idx) = best.expect("non-empty candidate list");
        self.next = (idx + 1) % n.max(1);
        Some(candidates[idx].tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(tag: usize, priority: Priority, age: u64) -> Candidate {
        Candidate {
            tag,
            priority,
            effective_age: age,
            batch: 0,
        }
    }

    #[test]
    fn high_beats_normal_within_guard() {
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 100), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn starved_normal_beats_high() {
        // Normal is older than high by more than the guard (Section 3.3
        // condition 2), so it must win.
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 1500), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(0));
    }

    #[test]
    fn guard_boundary_prefers_high() {
        // age_normal == age_high + T is "not more than T greater" → high wins.
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[cand(0, Priority::Normal, 1010), cand(1, Priority::High, 10)],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn oldest_wins_within_class() {
        let mut arb = RoundRobinArbiter::new();
        let got = arb.pick(
            &[
                cand(0, Priority::Normal, 5),
                cand(1, Priority::Normal, 50),
                cand(2, Priority::Normal, 20),
            ],
            1000,
        );
        assert_eq!(got, Some(1));
    }

    #[test]
    fn round_robin_rotates_on_ties() {
        let mut arb = RoundRobinArbiter::new();
        let cands = [
            cand(0, Priority::Normal, 7),
            cand(1, Priority::Normal, 7),
            cand(2, Priority::Normal, 7),
        ];
        let mut wins = Vec::new();
        for _ in 0..6 {
            wins.push(arb.pick(&cands, 1000).unwrap());
        }
        // Every candidate must win at least once across the rotation.
        for tag in 0..3 {
            assert!(wins.contains(&tag), "tag {tag} never won: {wins:?}");
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick(&[], 1000), None);
    }

    #[test]
    fn batching_older_batch_beats_priority() {
        let old_normal = Candidate {
            tag: 0,
            priority: Priority::Normal,
            effective_age: 5,
            batch: 2,
        };
        let new_high = Candidate {
            tag: 1,
            priority: Priority::High,
            effective_age: 900,
            batch: 3,
        };
        let policy = StarvationPolicy::Batching { interval: 1000 };
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick_with(&[old_normal, new_high], policy, 0), Some(0));
    }

    #[test]
    fn batching_same_batch_uses_priority_then_age() {
        let policy = StarvationPolicy::Batching { interval: 1000 };
        let normal = Candidate {
            tag: 0,
            priority: Priority::Normal,
            effective_age: 500,
            batch: 7,
        };
        let high = Candidate {
            tag: 1,
            priority: Priority::High,
            effective_age: 5,
            batch: 7,
        };
        let mut arb = RoundRobinArbiter::new();
        assert_eq!(arb.pick_with(&[normal, high], policy, 0), Some(1));
    }

    #[test]
    fn key_saturates() {
        assert_eq!(arbitration_key(Priority::High, u64::MAX, 1000), u64::MAX);
    }
}
