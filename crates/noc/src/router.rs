//! A virtual-channel wormhole router with the paper's prioritization hooks.
//!
//! The baseline router is the 5-stage pipeline of Section 3.3: buffer write
//! (BW), route computation (RC), VC allocation (VA), switch allocation (SA)
//! and switch traversal (ST), followed by link traversal. Pipeline depth is
//! modeled by a per-flit `ready_at` stamp assigned on arrival; arbitration
//! runs every cycle, so contention delays add on top of the pipeline depth.
//!
//! Prioritized flits win VA and SA arbitration (subject to the starvation
//! age guard) and, when `bypass_enabled` is set, skip to a combined *setup*
//! stage followed directly by ST (Figure 10), cutting the no-contention
//! residency from 5 cycles to 2.

use std::collections::VecDeque;
use std::sync::Arc;

use noclat_sim::config::NocConfig;
use noclat_sim::Cycle;

use crate::arbiter::{arbitration_policy, ArbitrationPolicy, Candidate, RoundRobinArbiter};
use crate::packet::{accumulate_age, Flit, Priority, VNet};
use crate::topology::{Dir, Mesh, NodeId};

/// Per-VC state at an input port.
#[derive(Debug, Clone)]
struct VcState {
    buf: VecDeque<Flit>,
    /// Output port of the packet currently at the head of this VC.
    route: Option<Dir>,
    /// Downstream VC allocated to that packet.
    out_vc: Option<u8>,
}

impl VcState {
    fn new(depth: usize) -> Self {
        VcState {
            buf: VecDeque::with_capacity(depth),
            route: None,
            out_vc: None,
        }
    }
}

/// One of the five input ports.
#[derive(Debug, Clone)]
struct InputPort {
    vcs: Vec<VcState>,
}

/// Credit/ownership state for one output port.
#[derive(Debug, Clone)]
struct OutputPort {
    /// Free buffer slots at the downstream input VC.
    credits: Vec<u32>,
    /// Which input VC currently owns each downstream VC (None = free).
    owner: Vec<Option<(usize, usize)>>,
}

/// A flit leaving the router this cycle, tagged with its output port.
#[derive(Debug, Clone, Copy)]
pub struct Traversal {
    /// Output port the flit leaves through (`Local` = ejection).
    pub out_port: Dir,
    /// The flit, with its `vc` field set to the downstream VC and its age
    /// updated for the residency at this router.
    pub flit: Flit,
}

/// A credit to return upstream: the input port and VC that freed a slot.
#[derive(Debug, Clone, Copy)]
pub struct CreditReturn {
    /// Input port whose buffer freed a slot.
    pub in_port: Dir,
    /// VC index within that port.
    pub vc: u8,
}

/// Result of one router cycle.
#[derive(Debug, Clone, Default)]
pub struct RouterOutput {
    /// Flits traversing the switch this cycle (at most one per output port).
    pub traversals: Vec<Traversal>,
    /// Credits to return to upstream routers.
    pub credits: Vec<CreditReturn>,
}

impl RouterOutput {
    fn clear(&mut self) {
        self.traversals.clear();
        self.credits.clear();
    }
}

/// Event counters for one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Flits that traversed the switch.
    pub flits_traversed: u64,
    /// Flits that used the pipeline-bypass path.
    pub flits_bypassed: u64,
    /// High-priority flits that traversed the switch.
    pub high_priority_traversed: u64,
    /// Traversals whose accumulated so-far delay saturated the age field
    /// (Section 3.1's 12-bit header field clips at 4095).
    pub age_saturations: u64,
}

/// A single mesh router.
#[derive(Debug, Clone)]
pub struct Router {
    node: NodeId,
    mesh: Mesh,
    cfg: NocConfig,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    va_arb: Vec<RoundRobinArbiter>,
    sa_in_arb: Vec<RoundRobinArbiter>,
    sa_out_arb: Vec<RoundRobinArbiter>,
    /// The arbitration policy shared by VA and both SA phases (decision
    /// point 3 of the policy layer), resolved once from the configuration.
    arb: Arc<dyn ArbitrationPolicy>,
    counters: RouterCounters,
    /// Total flits buffered across all input VCs (fast-path guard).
    occupancy: usize,
    /// Scratch for returning per-cycle results without reallocating.
    out: RouterOutput,
}

/// Encodes `(port, vc)` into an arbiter tag.
fn tag_of(port: usize, vc: usize, vcs_per_port: usize) -> usize {
    port * vcs_per_port + vc
}

/// Decodes an arbiter tag back into `(port, vc)`.
fn untag(tag: usize, vcs_per_port: usize) -> (usize, usize) {
    (tag / vcs_per_port, tag % vcs_per_port)
}

impl Router {
    /// Creates the router `node` (a router-grid id) of `mesh` with the
    /// given NoC parameters. Port arrays are sized per topology (5 ports on
    /// mesh-like fabrics, 9 on express).
    #[must_use]
    pub fn new(node: NodeId, mesh: Mesh, cfg: NocConfig) -> Self {
        let v = cfg.vcs_per_port;
        let ports = mesh.num_ports();
        let inputs = (0..ports)
            .map(|_| InputPort {
                vcs: (0..v).map(|_| VcState::new(cfg.buffer_depth)).collect(),
            })
            .collect();
        let outputs = (0..ports)
            .map(|_| OutputPort {
                credits: vec![cfg.buffer_depth as u32; v],
                owner: vec![None; v],
            })
            .collect();
        Router {
            node,
            mesh,
            cfg,
            inputs,
            outputs,
            va_arb: vec![RoundRobinArbiter::new(); ports],
            sa_in_arb: vec![RoundRobinArbiter::new(); ports],
            sa_out_arb: vec![RoundRobinArbiter::new(); ports],
            arb: arbitration_policy(cfg.starvation, cfg.starvation_age_guard),
            counters: RouterCounters::default(),
            occupancy: 0,
            out: RouterOutput::default(),
        }
    }

    /// Node this router serves.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Event counters.
    #[must_use]
    pub fn counters(&self) -> RouterCounters {
        self.counters
    }

    /// Total flits buffered across all input VCs. Zero means a tick is a
    /// guaranteed no-op (the fast-path guard [`Router::tick`] uses), which
    /// is exactly the event kernel's idleness criterion for routers.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Free buffer slots in a local-input VC (used by the injection logic,
    /// which sits at zero distance and needs no credit wire).
    #[must_use]
    pub fn local_vc_space(&self, vc: usize) -> usize {
        let b = &self.inputs[Dir::Local.index()].vcs[vc];
        self.cfg.buffer_depth - b.buf.len()
    }

    /// Whether a local-input VC currently holds or streams a packet (its
    /// head has not been fully routed out yet, or flits remain buffered).
    #[must_use]
    pub fn local_vc_busy(&self, vc: usize) -> bool {
        let b = &self.inputs[Dir::Local.index()].vcs[vc];
        !b.buf.is_empty() || b.route.is_some()
    }

    /// Accepts a flit into an input VC buffer, stamping its arrival and
    /// pipeline-readiness times (this is the BW stage; bypass eligibility is
    /// decided here).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the buffer is full (credit protocol
    /// violation).
    pub fn accept_flit(&mut self, port: Dir, mut flit: Flit, now: Cycle) {
        let vc = usize::from(flit.vc);
        let buf_empty = {
            let b = &self.inputs[port.index()].vcs[vc];
            debug_assert!(
                b.buf.len() < self.cfg.buffer_depth,
                "credit violation at {:?} port {:?} vc {}",
                self.node,
                port,
                vc
            );
            b.buf.is_empty()
        };
        let bypass = self.cfg.bypass_enabled && flit.priority == Priority::High && buf_empty;
        flit.arrived_at = now;
        flit.ready_at = now
            + if bypass {
                1
            } else {
                self.cfg.pipeline.min_residency()
            };
        if bypass {
            self.counters.flits_bypassed += 1;
        }
        self.occupancy += 1;
        self.inputs[port.index()].vcs[vc].buf.push_back(flit);
    }

    /// Restores one credit for a downstream VC of an output port.
    pub fn apply_credit(&mut self, out_port: Dir, vc: u8) {
        let c = &mut self.outputs[out_port.index()].credits[usize::from(vc)];
        debug_assert!(
            (*c as usize) < self.cfg.buffer_depth,
            "credit overflow at {:?} port {:?} vc {}",
            self.node,
            out_port,
            vc
        );
        *c += 1;
    }

    /// VC index range of a virtual network (`[start, end)`).
    fn vnet_range(&self, vnet: VNet) -> (usize, usize) {
        let half = self.cfg.vcs_per_port / 2;
        let start = vnet.index() * half;
        (start, start + half)
    }

    /// Runs one cycle: RC, VA, SA and ST. Returns the flits leaving the
    /// router and the credits to send upstream.
    pub fn tick(&mut self, now: Cycle) -> &RouterOutput {
        self.out.clear();
        if self.occupancy == 0 {
            return &self.out;
        }
        self.route_compute();
        self.vc_allocate(now);
        self.switch_allocate_and_traverse(now);
        &self.out
    }

    /// RC: compute the output port for every VC whose front flit is a header
    /// without a route.
    fn route_compute(&mut self) {
        for port in 0..self.inputs.len() {
            for vc in 0..self.cfg.vcs_per_port {
                let state = &mut self.inputs[port].vcs[vc];
                if state.route.is_some() {
                    continue;
                }
                if let Some(front) = state.buf.front() {
                    debug_assert!(
                        front.kind.is_head(),
                        "body flit at VC front without a route (wormhole violation)"
                    );
                    if front.kind.is_head() {
                        state.route =
                            Some(self.mesh.route(self.cfg.routing, self.node, front.dest));
                    }
                }
            }
        }
    }

    /// VA: allocate free downstream VCs to waiting headers, priority-aware.
    fn vc_allocate(&mut self, now: Cycle) {
        for out_port in 0..self.outputs.len() {
            // Gather requesters: routed headers without an output VC.
            let mut candidates: Vec<Candidate> = Vec::new();
            for port in 0..self.inputs.len() {
                for vc in 0..self.cfg.vcs_per_port {
                    let state = &self.inputs[port].vcs[vc];
                    if state.route.map(Dir::index) != Some(out_port) || state.out_vc.is_some() {
                        continue;
                    }
                    let Some(front) = state.buf.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    candidates.push(Candidate {
                        tag: tag_of(port, vc, self.cfg.vcs_per_port),
                        priority: front.priority,
                        effective_age: u64::from(front.age) + now.saturating_sub(front.arrived_at),
                        batch: front.batch,
                    });
                }
            }
            // Grant free VCs one winner at a time until no grantable
            // requester remains.
            let out_dir = self.mesh.ports()[out_port];
            while !candidates.is_empty() {
                // A requester is grantable if a free VC exists in its class
                // (on a torus: in its dateline subclass of the class).
                let grantable: Vec<Candidate> = candidates
                    .iter()
                    .copied()
                    .filter(|c| {
                        let (port, vc) = untag(c.tag, self.cfg.vcs_per_port);
                        let front = self.inputs[port].vcs[vc]
                            .buf
                            .front()
                            .expect("candidate has a front flit");
                        let subclass = self.mesh.vc_subclass(self.node, front.dest, out_dir);
                        self.free_vc_in_class(out_port, front.vnet, subclass)
                            .is_some()
                    })
                    .collect();
                if grantable.is_empty() {
                    break;
                }
                let winner_tag = self.va_arb[out_port]
                    .pick_with(&grantable, &*self.arb)
                    .expect("non-empty grantable set");
                let (port, vc) = untag(winner_tag, self.cfg.vcs_per_port);
                let (vnet, dest) = {
                    let front = self.inputs[port].vcs[vc]
                        .buf
                        .front()
                        .expect("winner has a front flit");
                    (front.vnet, front.dest)
                };
                let subclass = self.mesh.vc_subclass(self.node, dest, out_dir);
                let free = self
                    .free_vc_in_class(out_port, vnet, subclass)
                    .expect("winner was grantable");
                self.outputs[out_port].owner[free] = Some((port, vc));
                self.inputs[port].vcs[vc].out_vc = Some(free as u8);
                candidates.retain(|c| c.tag != winner_tag);
            }
        }
    }

    /// First free downstream VC of `out_port` within the class of `vnet`,
    /// optionally restricted to a dateline subclass (torus deadlock
    /// avoidance: each vnet half splits into two quarter-ranges, and a hop
    /// may only use the subclass [`Mesh::vc_subclass`] assigns to it).
    fn free_vc_in_class(&self, out_port: usize, vnet: VNet, subclass: Option<u8>) -> Option<usize> {
        let (start, end) = self.vnet_range(vnet);
        let (start, end) = match subclass {
            None => (start, end),
            Some(s) => {
                let quarter = (end - start) / 2;
                let s = start + usize::from(s) * quarter;
                (s, s + quarter)
            }
        };
        (start..end).find(|&v| self.outputs[out_port].owner[v].is_none())
    }

    /// SA phase 1 (one VC per input port), SA phase 2 (one input per output
    /// port), then ST for the winners.
    fn switch_allocate_and_traverse(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        // Phase 1: per input port, pick one ready VC.
        let mut phase1: Vec<usize> = Vec::new(); // winning tags
        for port in 0..self.inputs.len() {
            let mut candidates: Vec<Candidate> = Vec::new();
            for vc in 0..vcs {
                let state = &self.inputs[port].vcs[vc];
                let (Some(route), Some(out_vc)) = (state.route, state.out_vc) else {
                    continue;
                };
                let Some(front) = state.buf.front() else {
                    continue;
                };
                if front.ready_at > now {
                    continue;
                }
                let has_credit = route == Dir::Local
                    || self.outputs[route.index()].credits[usize::from(out_vc)] > 0;
                if !has_credit {
                    continue;
                }
                candidates.push(Candidate {
                    tag: tag_of(port, vc, vcs),
                    priority: front.priority,
                    effective_age: u64::from(front.age) + now.saturating_sub(front.arrived_at),
                    batch: front.batch,
                });
            }
            if let Some(tag) = self.sa_in_arb[port].pick_with(&candidates, &*self.arb) {
                phase1.push(tag);
            }
        }
        // Phase 2: per output port, pick one phase-1 winner.
        for out_port in 0..self.outputs.len() {
            let candidates: Vec<Candidate> = phase1
                .iter()
                .filter_map(|&tag| {
                    let (port, vc) = untag(tag, vcs);
                    let state = &self.inputs[port].vcs[vc];
                    // A winner granted to an earlier output port this cycle
                    // has already traversed; its VC may be empty or rerouted.
                    if state.route.map(Dir::index) != Some(out_port) {
                        return None;
                    }
                    let front = state.buf.front()?;
                    Some(Candidate {
                        tag,
                        priority: front.priority,
                        effective_age: u64::from(front.age) + now.saturating_sub(front.arrived_at),
                        batch: front.batch,
                    })
                })
                .collect();
            let Some(tag) = self.sa_out_arb[out_port].pick_with(&candidates, &*self.arb) else {
                continue;
            };
            self.traverse(tag, now);
        }
    }

    /// ST: move the winning flit out of its buffer, update its age, consume
    /// a credit, release the VC on tails, and emit a credit return.
    fn traverse(&mut self, tag: usize, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        let (port, vc) = untag(tag, vcs);
        let state = &mut self.inputs[port].vcs[vc];
        let route = state.route.expect("traversing flit has a route");
        let out_vc = state.out_vc.expect("traversing flit has an output VC");
        let mut flit = state.buf.pop_front().expect("traversing flit exists");
        self.occupancy -= 1;
        let unsaturated = u128::from(flit.age)
            + u128::from(now.saturating_sub(flit.arrived_at)) * u128::from(self.cfg.freq_mult);
        if unsaturated > u128::from(self.cfg.max_age()) {
            self.counters.age_saturations += 1;
        }
        flit.age = accumulate_age(
            flit.age,
            now.saturating_sub(flit.arrived_at),
            self.cfg.freq_mult,
            self.cfg.max_age(),
        );
        flit.vc = out_vc;
        if flit.kind.is_tail() {
            state.route = None;
            state.out_vc = None;
            self.outputs[route.index()].owner[usize::from(out_vc)] = None;
        }
        if route != Dir::Local {
            let credit = &mut self.outputs[route.index()].credits[usize::from(out_vc)];
            debug_assert!(*credit > 0, "ST without credit");
            *credit -= 1;
        }
        self.counters.flits_traversed += 1;
        if flit.priority == Priority::High {
            self.counters.high_priority_traversed += 1;
        }
        self.out.credits.push(CreditReturn {
            in_port: self.mesh.ports()[port],
            vc: vc as u8,
        });
        self.out.traversals.push(Traversal {
            out_port: route,
            flit,
        });
    }

    /// Total flits currently buffered in this router (test/diagnostic aid).
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|v| v.buf.len())
            .sum()
    }

    /// Longest time any buffered flit has waited at this router (watchdog
    /// starvation probe). Only the front flit of each VC is inspected: VC
    /// buffers are FIFOs, so the front is the oldest.
    #[must_use]
    pub fn oldest_buffered_wait(&self, now: Cycle) -> Option<Cycle> {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .filter_map(|v| v.buf.front())
            .map(|f| now.saturating_sub(f.arrived_at))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlitKind, PacketId};
    use noclat_sim::config::{RouterPipeline, SystemConfig};

    fn cfg() -> NocConfig {
        SystemConfig::baseline_32().noc
    }

    fn mesh() -> Mesh {
        Mesh::new(8, 4)
    }

    fn flit(packet: u64, kind: FlitKind, dest: NodeId, vc: u8, priority: Priority) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            dest,
            vnet: VNet::Request,
            priority,
            age: 0,
            batch: 0,
            vc,
            arrived_at: 0,
            ready_at: 0,
        }
    }

    #[test]
    fn single_flit_traverses_after_pipeline_depth() {
        let mut r = Router::new(NodeId(0), mesh(), cfg());
        // Destination east of node 0: route = East.
        r.accept_flit(
            Dir::Local,
            flit(1, FlitKind::HeadTail, NodeId(3), 0, Priority::Normal),
            10,
        );
        // 5-stage pipeline: BW at 10, ST possible at 14.
        for t in 10..14 {
            assert!(r.tick(t).traversals.is_empty(), "premature ST at {t}");
        }
        let out = r.tick(14);
        assert_eq!(out.traversals.len(), 1);
        let tr = out.traversals[0];
        assert_eq!(tr.out_port, Dir::East);
        // Age accumulated = residency at this router = 4 cycles.
        assert_eq!(tr.flit.age, 4);
        assert_eq!(out.credits.len(), 1);
        assert_eq!(out.credits[0].in_port, Dir::Local);
    }

    #[test]
    fn high_priority_bypasses_pipeline() {
        let mut r = Router::new(NodeId(0), mesh(), cfg());
        r.accept_flit(
            Dir::Local,
            flit(1, FlitKind::HeadTail, NodeId(3), 0, Priority::High),
            10,
        );
        assert!(r.tick(10).traversals.is_empty());
        let out = r.tick(11);
        assert_eq!(out.traversals.len(), 1, "bypassed flit must ST at +1");
        assert_eq!(r.counters().flits_bypassed, 1);
        assert_eq!(r.counters().high_priority_traversed, 1);
    }

    #[test]
    fn bypass_disabled_uses_full_pipeline() {
        let mut c = cfg();
        c.bypass_enabled = false;
        let mut r = Router::new(NodeId(0), mesh(), c);
        r.accept_flit(
            Dir::Local,
            flit(1, FlitKind::HeadTail, NodeId(3), 0, Priority::High),
            0,
        );
        assert!(r.tick(1).traversals.is_empty());
        assert!(r.tick(3).traversals.is_empty());
        assert_eq!(r.tick(4).traversals.len(), 1);
        assert_eq!(r.counters().flits_bypassed, 0);
    }

    #[test]
    fn two_stage_router_is_fast_for_everyone() {
        let mut c = cfg();
        c.pipeline = RouterPipeline::TwoStage;
        let mut r = Router::new(NodeId(0), mesh(), c);
        r.accept_flit(
            Dir::Local,
            flit(1, FlitKind::HeadTail, NodeId(3), 0, Priority::Normal),
            0,
        );
        assert!(r.tick(0).traversals.is_empty());
        assert_eq!(r.tick(1).traversals.len(), 1);
    }

    #[test]
    fn local_destination_ejects() {
        let mut r = Router::new(NodeId(5), mesh(), cfg());
        r.accept_flit(
            Dir::West,
            flit(1, FlitKind::HeadTail, NodeId(5), 1, Priority::Normal),
            0,
        );
        let out = r.tick(4);
        assert_eq!(out.traversals.len(), 1);
        assert_eq!(out.traversals[0].out_port, Dir::Local);
    }

    #[test]
    fn wormhole_keeps_packet_on_one_vc_and_releases_on_tail() {
        let mut r = Router::new(NodeId(0), mesh(), cfg());
        let dest = NodeId(3);
        r.accept_flit(
            Dir::Local,
            flit(7, FlitKind::Head, dest, 0, Priority::Normal),
            0,
        );
        r.accept_flit(
            Dir::Local,
            flit(7, FlitKind::Body, dest, 0, Priority::Normal),
            1,
        );
        r.accept_flit(
            Dir::Local,
            flit(7, FlitKind::Tail, dest, 0, Priority::Normal),
            2,
        );
        let mut sent = Vec::new();
        for t in 0..12 {
            for tr in &r.tick(t).traversals {
                sent.push((t, tr.flit.kind, tr.flit.vc));
            }
        }
        assert_eq!(sent.len(), 3);
        // All three on the same downstream VC, in order.
        assert!(sent.windows(2).all(|w| w[0].2 == w[1].2));
        assert_eq!(sent[0].1, FlitKind::Head);
        assert_eq!(sent[2].1, FlitKind::Tail);
        assert_eq!(r.buffered_flits(), 0);
    }

    /// Drives a router, feeding `packet_flits` one per 10 cycles (so buffer
    /// space always exists), for `cycles`; returns total traversals.
    fn drive(r: &mut Router, packet_flits: &[Flit], cycles: Cycle) -> usize {
        let mut traversed = 0;
        let mut next = 0usize;
        for t in 0..cycles {
            if next < packet_flits.len() && t == next as Cycle * 10 {
                r.accept_flit(Dir::Local, packet_flits[next], t);
                next += 1;
            }
            traversed += r.tick(t).traversals.len();
        }
        traversed
    }

    fn packet_of(n: usize, dest: NodeId) -> Vec<Flit> {
        (0..n)
            .map(|i| {
                let kind = match (i, n) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, n) if i + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                flit(7, kind, dest, 0, Priority::Normal)
            })
            .collect()
    }

    #[test]
    fn credits_throttle_output() {
        let c = cfg();
        let mut r = Router::new(NodeId(0), mesh(), c);
        // Send depth + 2 flits of one packet; never return credits.
        let flits = packet_of(c.buffer_depth + 2, NodeId(3));
        let traversed = drive(&mut r, &flits, 300);
        // Only `buffer_depth` flits may leave; the rest starve on credits.
        assert_eq!(traversed, c.buffer_depth);
    }

    #[test]
    fn credit_return_reopens_output() {
        let c = cfg();
        let mut r = Router::new(NodeId(0), mesh(), c);
        let flits = packet_of(c.buffer_depth + 1, NodeId(3));
        let traversed = drive(&mut r, &flits, 300);
        // With depth+1 flits and depth credits, the tail is stuck...
        assert_eq!(traversed, c.buffer_depth);
        // ...until a credit comes back.
        r.apply_credit(Dir::East, 0);
        let mut more = 0;
        for t in 300..360 {
            more += r.tick(t).traversals.len();
        }
        assert_eq!(more, 1, "tail must flow after credit return");
    }

    #[test]
    fn high_priority_wins_switch_contention() {
        let c = cfg();
        let mut r = Router::new(NodeId(1), mesh(), c);
        let dest = NodeId(3); // east of node 1
        let mut normal = flit(1, FlitKind::HeadTail, dest, 0, Priority::Normal);
        normal.age = 50;
        let mut high = flit(2, FlitKind::HeadTail, dest, 0, Priority::High);
        high.age = 0;
        r.accept_flit(Dir::West, normal, 0);
        r.accept_flit(Dir::North, high, 0);
        // Run until both have left; record order.
        let mut order = Vec::new();
        for t in 0..20 {
            for tr in &r.tick(t).traversals {
                order.push(tr.flit.packet.0);
            }
        }
        assert_eq!(order, vec![2, 1], "high priority must leave first");
    }

    #[test]
    fn starved_normal_flit_beats_high_priority() {
        // Disable bypassing so both flits contend for the switch in the same
        // cycle and the outcome is decided purely by SA arbitration.
        let mut c = cfg();
        c.bypass_enabled = false;
        let mut r = Router::new(NodeId(1), mesh(), c);
        let dest = NodeId(3);
        let mut normal = flit(1, FlitKind::HeadTail, dest, 0, Priority::Normal);
        normal.age = c.starvation_age_guard + 500; // way past the guard
        let high = flit(2, FlitKind::HeadTail, dest, 1, Priority::High);
        r.accept_flit(Dir::West, normal, 0);
        r.accept_flit(Dir::North, high, 0);
        let mut order = Vec::new();
        for t in 0..20 {
            for tr in &r.tick(t).traversals {
                order.push(tr.flit.packet.0);
            }
        }
        assert_eq!(order, vec![1, 2], "starved normal flit must win");
    }

    #[test]
    fn packets_on_different_vcs_of_one_port_interleave() {
        // Two 3-flit packets arrive on the same input port but different
        // VCs, heading to different outputs: wormhole keeps each packet
        // contiguous per VC while the switch serves both VCs over time.
        let mut r = Router::new(NodeId(9), mesh(), cfg());
        let mk = |pkt: u64, kind, vc| {
            let mut f = flit(pkt, kind, NodeId(15), vc, Priority::Normal);
            if pkt == 2 {
                f.dest = NodeId(8); // westward
            }
            f
        };
        for (i, kind) in [FlitKind::Head, FlitKind::Body, FlitKind::Tail]
            .into_iter()
            .enumerate()
        {
            r.accept_flit(Dir::North, mk(1, kind, 0), i as u64);
            r.accept_flit(Dir::North, mk(2, kind, 1), i as u64);
        }
        let mut east = Vec::new();
        let mut west = Vec::new();
        for t in 0..30 {
            for tr in &r.tick(t).traversals {
                match tr.out_port {
                    Dir::East => east.push(tr.flit.kind),
                    Dir::West => west.push(tr.flit.kind),
                    other => panic!("unexpected port {other:?}"),
                }
            }
        }
        assert_eq!(east, vec![FlitKind::Head, FlitKind::Body, FlitKind::Tail]);
        assert_eq!(west, vec![FlitKind::Head, FlitKind::Body, FlitKind::Tail]);
    }

    #[test]
    fn ejection_port_serializes_one_flit_per_cycle() {
        // Two single-flit packets arriving on different input ports, both
        // destined here: the local output port can only eject one per cycle.
        let mut r = Router::new(NodeId(5), mesh(), cfg());
        r.accept_flit(
            Dir::West,
            flit(1, FlitKind::HeadTail, NodeId(5), 0, Priority::Normal),
            0,
        );
        r.accept_flit(
            Dir::East,
            flit(2, FlitKind::HeadTail, NodeId(5), 0, Priority::Normal),
            0,
        );
        let mut per_cycle = Vec::new();
        for t in 0..12 {
            per_cycle.push(r.tick(t).traversals.len());
        }
        assert!(
            per_cycle.iter().all(|&n| n <= 1),
            "ejected >1 flit in a cycle"
        );
        assert_eq!(per_cycle.iter().sum::<usize>(), 2);
    }

    #[test]
    fn distinct_outputs_traverse_in_parallel() {
        // Flits bound for different output ports can cross the switch in the
        // same cycle (crossbar parallelism).
        let mut r = Router::new(NodeId(9), mesh(), cfg());
        r.accept_flit(
            Dir::West,
            flit(1, FlitKind::HeadTail, NodeId(15), 0, Priority::Normal), // east
            0,
        );
        r.accept_flit(
            Dir::East,
            flit(2, FlitKind::HeadTail, NodeId(8), 0, Priority::Normal), // west
            0,
        );
        let out = r.tick(4);
        assert_eq!(out.traversals.len(), 2, "independent outputs must overlap");
    }

    #[test]
    fn vnet_classes_use_disjoint_vcs() {
        let c = cfg();
        let mut r = Router::new(NodeId(0), mesh(), c);
        let dest = NodeId(3);
        let mut req = flit(1, FlitKind::HeadTail, dest, 0, Priority::Normal);
        req.vnet = VNet::Request;
        let mut resp = flit(2, FlitKind::HeadTail, dest, 2, Priority::Normal);
        resp.vnet = VNet::Response;
        r.accept_flit(Dir::Local, req, 0);
        r.accept_flit(Dir::Local, resp, 0);
        let mut out_vcs = Vec::new();
        for t in 0..20 {
            for tr in &r.tick(t).traversals {
                out_vcs.push((tr.flit.packet.0, tr.flit.vc));
            }
        }
        assert_eq!(out_vcs.len(), 2);
        let req_vc = out_vcs.iter().find(|(p, _)| *p == 1).unwrap().1;
        let resp_vc = out_vcs.iter().find(|(p, _)| *p == 2).unwrap().1;
        let half = c.vcs_per_port as u8 / 2;
        assert!(req_vc < half, "request must use the request VC class");
        assert!(resp_vc >= half, "response must use the response VC class");
    }
}
