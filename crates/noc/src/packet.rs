//! Packets, flits and the so-far-delay ("age") field.
//!
//! A message is split into fixed-length flits (Table 1: 128-bit). Single-flit
//! messages (requests) use [`FlitKind::HeadTail`]; data-carrying messages
//! (64 B responses) are a head flit plus four body flits and a tail.
//!
//! The header carries a 12-bit *age* field holding the message's accumulated
//! so-far delay (Section 3.1, Equation 1). Each router updates the field
//! locally when the flit is sent out, so no global clock is needed.

use crate::topology::NodeId;
use noclat_sim::Cycle;

/// Monotonically increasing packet identifier, unique within one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Network arbitration priority (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Default class.
    Normal,
    /// Expedited: wins VC/switch arbitration (subject to the starvation age
    /// guard) and may bypass the router pipeline.
    High,
}

/// Virtual network a message travels on. Requests and responses use disjoint
/// VC sets to break protocol deadlock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VNet {
    /// Core/cache → L2 / memory-controller direction (read requests,
    /// writebacks, threshold updates).
    Request,
    /// L2 / memory-controller → core direction (data responses).
    Response,
}

impl VNet {
    /// Index of this virtual network (0 or 1).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            VNet::Request => 0,
            VNet::Response => 1,
        }
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the header.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet; releases the VC.
    Tail,
    /// Single-flit packet (header and tail in one).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit carries the header (route/VC allocation happens
    /// on it).
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes the packet (VC is released after it).
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flit in flight. Small and `Copy`; payloads live in a side table owned
/// by the network, keyed by [`PacketId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Final destination node.
    pub dest: NodeId,
    /// Virtual network class.
    pub vnet: VNet,
    /// Arbitration priority.
    pub priority: Priority,
    /// Accumulated so-far delay (cycles), saturating at the configured
    /// age-field maximum. Updated per hop.
    pub age: u32,
    /// Batch interval the packet was injected in (used only under the
    /// batching starvation policy).
    pub batch: u32,
    /// Input VC this flit occupies at the router currently holding it (the
    /// upstream router's allocated output VC).
    pub vc: u8,
    /// Cycle this flit entered the router currently holding it.
    pub arrived_at: Cycle,
    /// Earliest cycle this flit may traverse the switch at the router
    /// currently holding it (models pipeline depth / bypassing).
    pub ready_at: Cycle,
}

/// Immutable description of a packet, retained by the network while the
/// packet is in flight and returned on delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Packet id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Virtual network.
    pub vnet: VNet,
    /// Priority at injection.
    pub priority: Priority,
    /// Total flits in the packet.
    pub num_flits: u8,
    /// Age carried into the network at injection (e.g. delay accumulated
    /// before this leg of the round trip).
    pub initial_age: u32,
    /// Cycle the packet was handed to the network.
    pub injected_at: Cycle,
}

/// A fully received packet: metadata, final header age, delivery time, and
/// the caller-supplied payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<P> {
    /// Packet description from injection time.
    pub meta: PacketMeta,
    /// Header age after the last hop (so-far delay including this leg).
    pub final_age: u32,
    /// Cycle the tail flit was ejected.
    pub delivered_at: Cycle,
    /// The payload supplied at injection.
    pub payload: P,
}

impl<P> Delivered<P> {
    /// Network latency of this leg: delivery minus injection.
    #[must_use]
    pub fn network_latency(&self) -> Cycle {
        self.delivered_at.saturating_sub(self.meta.injected_at)
    }
}

/// Saturating age accumulation (Equation 1): adds a local delay, scaled by
/// `freq_mult` for heterogeneous clock domains, capping at `max_age`.
#[must_use]
pub fn accumulate_age(age: u32, local_delay: Cycle, freq_mult: u32, max_age: u32) -> u32 {
    let add = (local_delay as u128 * u128::from(freq_mult)).min(u128::from(u32::MAX)) as u32;
    age.saturating_add(add).min(max_age)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kind_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(FlitKind::Tail.is_tail());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn age_accumulates_and_saturates() {
        assert_eq!(accumulate_age(10, 5, 1, 4095), 15);
        assert_eq!(accumulate_age(4090, 100, 1, 4095), 4095);
        assert_eq!(accumulate_age(0, 7, 2, 4095), 14);
        assert_eq!(accumulate_age(0, u64::MAX, 3, 4095), 4095);
    }

    #[test]
    fn vnet_indices() {
        assert_eq!(VNet::Request.index(), 0);
        assert_eq!(VNet::Response.index(), 1);
    }

    #[test]
    fn delivered_latency() {
        let meta = PacketMeta {
            id: PacketId(1),
            src: NodeId(0),
            dest: NodeId(3),
            vnet: VNet::Request,
            priority: Priority::Normal,
            num_flits: 1,
            initial_age: 0,
            injected_at: 100,
        };
        let d = Delivered {
            meta,
            final_age: 12,
            delivered_at: 112,
            payload: (),
        };
        assert_eq!(d.network_latency(), 12);
    }

    #[test]
    fn priority_orders_high_above_normal() {
        assert!(Priority::High > Priority::Normal);
    }
}
