//! The mesh network: routers, links, credit wires, injection queues and
//! ejection (packet reassembly).
//!
//! [`Network`] is generic over the payload type `P`; payloads are held in a
//! side table while their flits are in flight, so flits stay small and
//! `Copy`. Injection queues and ejection inboxes are unbounded (standard
//! source/sink simplification): the network interior is fully flow-controlled
//! by credits, while end-point protocol queues are bounded in practice by
//! the cores' instruction windows and MSHRs.

use std::collections::{HashMap, VecDeque};

use noclat_sim::config::{NocConfig, StarvationPolicy};
use noclat_sim::stats::{Counter, RunningMean};
use noclat_sim::Cycle;

use crate::packet::{accumulate_age, Delivered, Flit, FlitKind, PacketId, PacketMeta, Priority, VNet};
use crate::router::{Router, RouterCounters};
use crate::topology::{Dir, Mesh, NodeId};

/// Network-wide event counters and latency aggregates.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Packets handed to [`Network::inject`].
    pub packets_injected: Counter,
    /// Packets fully delivered to their destination inbox.
    pub packets_delivered: Counter,
    /// Packets injected at high priority.
    pub high_priority_injected: Counter,
    /// Per-leg network latency of request-class packets.
    pub request_latency: RunningMean,
    /// Per-leg network latency of response-class packets.
    pub response_latency: RunningMean,
}

/// A packet waiting at a node for a free injection VC.
#[derive(Debug, Clone, Copy)]
struct PendingPacket {
    id: PacketId,
}

/// A packet currently streaming flits into its bound local VC.
#[derive(Debug, Clone, Copy)]
struct ActiveInjection {
    id: PacketId,
    sent: u8,
}

/// Per-node injection state: FIFOs per (vnet, priority) and the packet bound
/// to each local input VC.
#[derive(Debug, Clone)]
struct Injector {
    /// Index: `vnet.index() * 2 + priority` (high first at dequeue).
    queues: [VecDeque<PendingPacket>; 4],
    /// One slot per local input VC.
    active: Vec<Option<ActiveInjection>>,
    /// Round-robin pointer over VCs for the one-flit-per-cycle local port.
    rr: usize,
}

impl Injector {
    fn new(vcs: usize) -> Self {
        Injector {
            queues: [
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
            ],
            active: vec![None; vcs],
            rr: 0,
        }
    }

    fn queue_index(vnet: VNet, priority: Priority) -> usize {
        vnet.index() * 2 + usize::from(priority == Priority::High)
    }
}

/// The mesh network.
#[derive(Debug)]
pub struct Network<P> {
    mesh: Mesh,
    cfg: NocConfig,
    routers: Vec<Router>,
    /// In-flight flits per (node, input port): `(arrival_cycle, flit)`.
    wires: Vec<VecDeque<(Cycle, Flit)>>,
    /// In-flight credits per (node, output port): `(arrival_cycle, vc)`.
    credit_wires: Vec<VecDeque<(Cycle, u8)>>,
    injectors: Vec<Injector>,
    inboxes: Vec<Vec<Delivered<P>>>,
    /// Flits carried per directed link, indexed `node * 5 + out_port`
    /// (`Local` = ejections at that node).
    link_flits: Vec<u64>,
    /// Clock divider per router: router `n` arbitrates only on cycles
    /// divisible by `periods[n]` (1 = full speed). Models the heterogeneous
    /// clock domains Equation 1's `FREQ_MULT / local_frequency` term is
    /// designed for.
    periods: Vec<u32>,
    /// Payload + metadata of packets not yet delivered.
    in_flight: HashMap<u64, (PacketMeta, P)>,
    /// Head-flit age recorded at ejection, per multi-flit packet.
    head_ages: HashMap<u64, u32>,
    next_packet: u64,
    stats: NetworkStats,
}

impl<P> Network<P> {
    /// Creates a network over `mesh` with the given NoC parameters.
    #[must_use]
    pub fn new(mesh: Mesh, cfg: NocConfig) -> Self {
        let n = mesh.num_nodes();
        let ports = Dir::ALL.len();
        Network {
            mesh,
            cfg,
            routers: mesh.nodes().map(|id| Router::new(id, mesh, cfg)).collect(),
            wires: (0..n * ports).map(|_| VecDeque::new()).collect(),
            credit_wires: (0..n * ports).map(|_| VecDeque::new()).collect(),
            injectors: (0..n).map(|_| Injector::new(cfg.vcs_per_port)).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            link_flits: vec![0; n * ports],
            periods: vec![1; n],
            in_flight: HashMap::new(),
            head_ages: HashMap::new(),
            next_packet: 0,
            stats: NetworkStats::default(),
        }
    }

    /// The mesh this network spans.
    #[must_use]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Network-wide statistics.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Sum of all routers' event counters.
    #[must_use]
    pub fn router_counters(&self) -> RouterCounters {
        let mut total = RouterCounters::default();
        for r in &self.routers {
            let c = r.counters();
            total.flits_traversed += c.flits_traversed;
            total.flits_bypassed += c.flits_bypassed;
            total.high_priority_traversed += c.high_priority_traversed;
        }
        total
    }

    /// Number of packets injected but not yet delivered.
    #[must_use]
    pub fn packets_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Slows router `node` down to arbitrate once every `period` cycles
    /// (1 = full speed). Flits still arrive and buffer at wire speed; only
    /// the router pipeline is clock-divided, as in a slower clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_node_period(&mut self, node: NodeId, period: u32) {
        assert!(period > 0, "clock period must be positive");
        self.periods[node.index()] = period;
    }

    /// Flits carried by the directed link leaving `node` through `port`
    /// (`Local` counts ejections at that node).
    #[must_use]
    pub fn link_flits(&self, node: NodeId, port: Dir) -> u64 {
        self.link_flits[node.index() * Dir::ALL.len() + port.index()]
    }

    /// Per-node total of flits forwarded onto mesh links (a congestion
    /// heat-map: hot routers forward the most flits).
    #[must_use]
    pub fn node_forwarding_heat(&self) -> Vec<u64> {
        let ports = Dir::ALL.len();
        (0..self.routers.len())
            .map(|n| {
                (0..4) // mesh directions only
                    .map(|p| self.link_flits[n * ports + p])
                    .sum()
            })
            .collect()
    }

    /// Hands a packet to the network for delivery.
    ///
    /// `initial_age` seeds the header's so-far-delay field (the delay the
    /// enclosing transaction accumulated before this network leg).
    ///
    /// # Panics
    ///
    /// Panics if `num_flits` is zero or src/dest are outside the mesh.
    pub fn inject(
        &mut self,
        src: NodeId,
        dest: NodeId,
        vnet: VNet,
        priority: Priority,
        num_flits: u8,
        initial_age: u32,
        payload: P,
        now: Cycle,
    ) -> PacketId {
        assert!(num_flits > 0, "packet must have at least one flit");
        assert!(src.index() < self.mesh.num_nodes(), "src outside mesh");
        assert!(dest.index() < self.mesh.num_nodes(), "dest outside mesh");
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let meta = PacketMeta {
            id,
            src,
            dest,
            vnet,
            priority,
            num_flits,
            initial_age: initial_age.min(self.cfg.max_age()),
            injected_at: now,
        };
        self.in_flight.insert(id.0, (meta, payload));
        let inj = &mut self.injectors[src.index()];
        inj.queues[Injector::queue_index(vnet, priority)].push_back(PendingPacket { id });
        self.stats.packets_injected.inc();
        if priority == Priority::High {
            self.stats.high_priority_injected.inc();
        }
        id
    }

    /// Takes all packets delivered to `node` since the last call.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Delivered<P>> {
        std::mem::take(&mut self.inboxes[node.index()])
    }

    /// Advances the network by one cycle.
    ///
    /// Order matters: routers run *before* wire delivery so that a flit
    /// arriving one cycle behind its (bypassed) predecessor observes the
    /// buffer state after this cycle's switch traversals — without this, a
    /// high-priority body flit would never see the empty buffer that makes
    /// it bypass-eligible (Section 3.3).
    pub fn tick(&mut self, now: Cycle) {
        self.injection_step(now);
        self.router_step(now);
        self.deliver_wires(now);
    }

    /// Moves arrived flits and credits from the wires into the routers.
    fn deliver_wires(&mut self, now: Cycle) {
        let ports = Dir::ALL.len();
        for node in 0..self.routers.len() {
            for port in 0..ports {
                let w = &mut self.wires[node * ports + port];
                while w.front().is_some_and(|&(t, _)| t <= now) {
                    let (_, flit) = w.pop_front().expect("checked front");
                    self.routers[node].accept_flit(Dir::ALL[port], flit, now);
                }
                let cw = &mut self.credit_wires[node * ports + port];
                while cw.front().is_some_and(|&(t, _)| t <= now) {
                    let (_, vc) = cw.pop_front().expect("checked front");
                    self.routers[node].apply_credit(Dir::ALL[port], vc);
                }
            }
        }
    }

    /// Binds pending packets to free local VCs and streams one flit per
    /// virtual network per node per cycle into the local input port (the
    /// network interface serves each message class independently, as in
    /// Garnet-style NIs).
    fn injection_step(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        let half = vcs / 2;
        for node in 0..self.routers.len() {
            // Bind pending packets (high-priority queue first per vnet).
            for vnet in [VNet::Request, VNet::Response] {
                let (start, end) = (vnet.index() * half, vnet.index() * half + half);
                for pri_first in [Priority::High, Priority::Normal] {
                    let qi = Injector::queue_index(vnet, pri_first);
                    while !self.injectors[node].queues[qi].is_empty() {
                        let free_vc = (start..end).find(|&v| {
                            self.injectors[node].active[v].is_none()
                                && !self.routers[node].local_vc_busy(v)
                        });
                        let Some(v) = free_vc else { break };
                        let pending = self.injectors[node].queues[qi]
                            .pop_front()
                            .expect("queue non-empty");
                        self.injectors[node].active[v] = Some(ActiveInjection {
                            id: pending.id,
                            sent: 0,
                        });
                    }
                }
            }
            for vnet in [VNet::Request, VNet::Response] {
                self.stream_one_flit(node, vnet, now);
            }
        }
    }

    /// Streams at most one flit of `vnet`-class traffic at `node`,
    /// round-robin over that class's active VCs.
    fn stream_one_flit(&mut self, node: usize, vnet: VNet, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        let half = vcs / 2;
        let start = vnet.index() * half;
        {
            let rr = self.injectors[node].rr;
            for off in 0..half {
                let v = start + (rr + off) % half;
                let Some(active) = self.injectors[node].active[v] else {
                    continue;
                };
                if self.routers[node].local_vc_space(v) == 0 {
                    continue;
                }
                let (meta, _) = &self.in_flight[&active.id.0];
                let kind = match (active.sent, meta.num_flits) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (s, n) if s + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                // Charge the time spent waiting in the source queue to the
                // so-far-delay field: the network interface is one of the
                // "stages" of Equation 1.
                let batch = match self.cfg.starvation {
                    StarvationPolicy::Batching { interval } => {
                        (meta.injected_at / Cycle::from(interval.max(1))) as u32
                    }
                    StarvationPolicy::AgeGuard => 0,
                };
                let flit = Flit {
                    packet: active.id,
                    kind,
                    dest: meta.dest,
                    vnet: meta.vnet,
                    priority: meta.priority,
                    age: accumulate_age(
                        meta.initial_age,
                        now.saturating_sub(meta.injected_at),
                        self.cfg.freq_mult,
                        self.cfg.max_age(),
                    ),
                    batch,
                    vc: v as u8,
                    arrived_at: now,
                    ready_at: now,
                };
                let num_flits = meta.num_flits;
                self.routers[node].accept_flit(Dir::Local, flit, now);
                let slot = self.injectors[node].active[v]
                    .as_mut()
                    .expect("active injection");
                slot.sent += 1;
                if slot.sent == num_flits {
                    self.injectors[node].active[v] = None;
                }
                self.injectors[node].rr = (v + 1) % half;
                return; // one flit per vnet per node per cycle
            }
        }
    }

    /// Ticks every router and routes its outputs onto wires / inboxes.
    fn router_step(&mut self, now: Cycle) {
        let ports = Dir::ALL.len();
        for node in 0..self.routers.len() {
            let node_id = NodeId(node as u16);
            // A slowed router only arbitrates on its own clock edges.
            if now % Cycle::from(self.periods[node]) != 0 {
                continue;
            }
            // Split borrows: the router produces, the network consumes.
            let out = {
                let r = &mut self.routers[node];
                let o = r.tick(now);
                // Clone the small per-cycle output so `self` is free again.
                (o.traversals.clone(), o.credits.clone())
            };
            for tr in out.0 {
                self.link_flits[node * ports + tr.out_port.index()] += 1;
                if tr.out_port == Dir::Local {
                    self.eject(node_id, tr.flit, now);
                } else {
                    let nb = self
                        .mesh
                        .neighbor(node_id, tr.out_port)
                        .expect("route stays inside mesh");
                    let in_port = tr.out_port.opposite();
                    self.wires[nb.index() * ports + in_port.index()]
                        .push_back((now + self.cfg.link_latency, tr.flit));
                }
            }
            for cr in out.1 {
                if cr.in_port == Dir::Local {
                    continue; // injector reads buffer occupancy directly
                }
                let upstream = self
                    .mesh
                    .neighbor(node_id, cr.in_port)
                    .expect("credit goes to an existing neighbor");
                let up_out_port = cr.in_port.opposite();
                self.credit_wires[upstream.index() * ports + up_out_port.index()]
                    .push_back((now + 1, cr.vc));
            }
        }
    }

    /// Consumes a flit at its destination; delivers the packet on its tail.
    fn eject(&mut self, node: NodeId, flit: Flit, now: Cycle) {
        if flit.kind.is_head() {
            self.head_ages.insert(flit.packet.0, flit.age);
        }
        if !flit.kind.is_tail() {
            return;
        }
        let final_age = self
            .head_ages
            .remove(&flit.packet.0)
            .unwrap_or(flit.age);
        let (meta, payload) = self
            .in_flight
            .remove(&flit.packet.0)
            .expect("delivered packet was in flight");
        debug_assert_eq!(meta.dest, node, "flit ejected at wrong node");
        let delivered = Delivered {
            meta,
            final_age,
            delivered_at: now,
            payload,
        };
        self.stats.packets_delivered.inc();
        let lat = delivered.network_latency() as f64;
        match meta.vnet {
            VNet::Request => self.stats.request_latency.record(lat),
            VNet::Response => self.stats.response_latency.record(lat),
        }
        self.inboxes[node.index()].push(delivered);
    }
}

/// Number of flits for a message with `payload_bytes` of data: one header
/// flit plus enough flits to carry the payload (Table 1: 128-bit flits, so a
/// 64 B cache line takes 1 + 4 = 5 flits).
#[must_use]
pub fn flits_for_payload(payload_bytes: usize, flit_bits: usize) -> u8 {
    let data_flits = (payload_bytes * 8).div_ceil(flit_bits);
    (1 + data_flits) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn network() -> Network<u32> {
        let cfg = SystemConfig::baseline_32();
        Network::new(Mesh::new(8, 4), cfg.noc)
    }

    fn run_until_delivered(
        net: &mut Network<u32>,
        dest: NodeId,
        start: Cycle,
        limit: Cycle,
    ) -> (Cycle, Vec<Delivered<u32>>) {
        for t in start..start + limit {
            net.tick(t);
            let got = net.take_delivered(dest);
            if !got.is_empty() {
                return (t, got);
            }
        }
        panic!("packet not delivered within {limit} cycles");
    }

    #[test]
    fn single_flit_end_to_end() {
        let mut net = network();
        let src = NodeId(0);
        let dest = NodeId(7); // 7 hops east
        net.inject(src, dest, VNet::Request, Priority::Normal, 1, 0, 42, 0);
        let (t, got) = run_until_delivered(&mut net, dest, 0, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 42);
        assert_eq!(got[0].meta.src, src);
        // 8 switch traversals (7 forwarding routers + ejection) at 4 cycles
        // of pipeline each, plus 7 link cycles: earliest delivery is t=39.
        assert_eq!(t, 39, "zero-load latency must match the pipeline model");
        assert_eq!(got[0].final_age, 32, "age = 8 routers x 4-cycle residency");
        assert_eq!(net.packets_in_flight(), 0);
    }

    #[test]
    fn multi_flit_packet_arrives_whole() {
        let mut net = network();
        let src = NodeId(3);
        let dest = NodeId(28);
        net.inject(src, dest, VNet::Response, Priority::Normal, 5, 100, 7, 0);
        let (_, got) = run_until_delivered(&mut net, dest, 0, 400);
        assert_eq!(got.len(), 1);
        assert!(got[0].final_age >= 100, "initial age must be preserved");
    }

    #[test]
    fn local_delivery_works() {
        let mut net = network();
        let n = NodeId(9);
        net.inject(n, n, VNet::Request, Priority::Normal, 1, 0, 1, 0);
        let (_, got) = run_until_delivered(&mut net, n, 0, 50);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn high_priority_is_faster_under_load() {
        let cfg = SystemConfig::baseline_32();
        let mesh = Mesh::new(8, 4);
        let measure = |priority: Priority| -> f64 {
            let mut net: Network<u32> = Network::new(mesh, cfg.noc);
            // Background traffic: every node hammers node 31.
            let mut t: Cycle = 0;
            let mut probe_latencies = Vec::new();
            let mut next_probe = 50;
            let mut outstanding: Option<(PacketId, Cycle)> = None;
            while t < 6000 {
                if t % 3 == 0 {
                    let src = NodeId((t % 24) as u16);
                    net.inject(src, NodeId(31), VNet::Request, Priority::Normal, 5, 0, 0, t);
                }
                if t == next_probe && outstanding.is_none() {
                    let id = net.inject(NodeId(0), NodeId(31), VNet::Request, priority, 1, 0, 1, t);
                    outstanding = Some((id, t));
                }
                net.tick(t);
                for d in net.take_delivered(NodeId(31)) {
                    if let Some((id, at)) = outstanding {
                        if d.meta.id == id {
                            probe_latencies.push((d.delivered_at - at) as f64);
                            outstanding = None;
                            next_probe = t + 200;
                        }
                    }
                }
                t += 1;
            }
            assert!(!probe_latencies.is_empty(), "no probes delivered");
            probe_latencies.iter().sum::<f64>() / probe_latencies.len() as f64
        };
        let normal = measure(Priority::Normal);
        let high = measure(Priority::High);
        assert!(
            high < normal,
            "high priority ({high:.1}) must beat normal ({normal:.1}) under load"
        );
    }

    #[test]
    fn conservation_no_packet_lost_under_random_traffic() {
        use noclat_sim::rng::SimRng;
        let mut net = network();
        let mut rng = SimRng::new(99);
        let mut injected = 0u64;
        for t in 0..5000u64 {
            if rng.chance(0.4) {
                let src = NodeId(rng.index(32) as u16);
                let dest = NodeId(rng.index(32) as u16);
                let vnet = if rng.chance(0.5) {
                    VNet::Request
                } else {
                    VNet::Response
                };
                let pri = if rng.chance(0.1) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                let flits = if vnet == VNet::Response { 5 } else { 1 };
                net.inject(src, dest, vnet, pri, flits, 0, 0, t);
                injected += 1;
            }
            net.tick(t);
        }
        // Drain: no more injections; everything in flight must arrive.
        let mut t = 5000u64;
        while net.packets_in_flight() > 0 && t < 60_000 {
            net.tick(t);
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0, "packets stuck in network");
        let delivered: u64 = net.stats().packets_delivered.get();
        assert_eq!(delivered, injected);
    }

    #[test]
    fn age_reflects_path_length() {
        let mut net = network();
        // Short hop: 0 -> 1. Long: 0 -> 31.
        net.inject(NodeId(0), NodeId(1), VNet::Request, Priority::Normal, 1, 0, 1, 0);
        let (_, short) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        let mut net2 = network();
        net2.inject(NodeId(0), NodeId(31), VNet::Request, Priority::Normal, 1, 0, 2, 0);
        let (_, long) = run_until_delivered(&mut net2, NodeId(31), 0, 300);
        assert!(
            long[0].final_age > short[0].final_age,
            "age must grow with distance ({} vs {})",
            long[0].final_age,
            short[0].final_age
        );
    }

    #[test]
    fn take_delivered_clears_the_inbox() {
        let mut net = network();
        net.inject(NodeId(0), NodeId(1), VNet::Request, Priority::Normal, 1, 0, 1, 0);
        let (_, got) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        assert_eq!(got.len(), 1);
        assert!(net.take_delivered(NodeId(1)).is_empty(), "inbox must drain");
    }

    #[test]
    fn initial_age_is_clamped_to_the_field_width() {
        let mut net = network();
        net.inject(
            NodeId(0),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            1,
            u32::MAX, // far beyond the 12-bit field
            9,
            0,
        );
        let (_, got) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        assert!(got[0].final_age <= 4095, "age {} exceeds 12 bits", got[0].final_age);
    }

    #[test]
    fn latency_stats_split_by_vnet() {
        let mut net = network();
        net.inject(NodeId(0), NodeId(3), VNet::Request, Priority::Normal, 1, 0, 1, 0);
        net.inject(NodeId(0), NodeId(3), VNet::Response, Priority::Normal, 5, 0, 2, 0);
        for t in 0..300 {
            net.tick(t);
            let _ = net.take_delivered(NodeId(3));
        }
        assert_eq!(net.stats().request_latency.count(), 1);
        assert_eq!(net.stats().response_latency.count(), 1);
    }

    #[test]
    fn flits_for_payload_matches_table1() {
        assert_eq!(flits_for_payload(64, 128), 5);
        assert_eq!(flits_for_payload(0, 128), 1);
        assert_eq!(flits_for_payload(16, 128), 2);
        assert_eq!(flits_for_payload(17, 128), 3);
    }

    #[test]
    fn slowed_router_delays_traffic_through_it() {
        // Packets 0 -> 2 pass through router 1; dividing router 1's clock
        // by 8 must lengthen the trip, and the slow residency must appear
        // in the age field.
        let deliver = |slow: bool| -> (u64, u32) {
            let cfg = SystemConfig::baseline_32().noc;
            let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg);
            if slow {
                net.set_node_period(NodeId(1), 8);
            }
            net.inject(NodeId(0), NodeId(2), VNet::Request, Priority::Normal, 1, 0, 1, 0);
            for t in 0..500 {
                net.tick(t);
                if let Some(d) = net.take_delivered(NodeId(2)).first() {
                    return (d.delivered_at, d.final_age);
                }
            }
            panic!("not delivered");
        };
        let (fast_t, fast_age) = deliver(false);
        let (slow_t, slow_age) = deliver(true);
        assert!(slow_t > fast_t, "slow domain must delay delivery");
        assert!(slow_age > fast_age, "the extra residency must age the message");
    }

    #[test]
    fn freq_mult_scales_accumulated_age() {
        // The paper's Equation 1 divides local delays by the local clock and
        // multiplies by FREQ_MULT; with a uniform clock, doubling FREQ_MULT
        // doubles every accumulated delay.
        let run_age = |fm: u32| -> u32 {
            let mut cfg = SystemConfig::baseline_32().noc;
            cfg.freq_mult = fm;
            let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg);
            net.inject(NodeId(0), NodeId(7), VNet::Request, Priority::Normal, 1, 0, 1, 0);
            for t in 0..200 {
                net.tick(t);
                let got = net.take_delivered(NodeId(7));
                if let Some(d) = got.first() {
                    return d.final_age;
                }
            }
            panic!("not delivered");
        };
        let a1 = run_age(1);
        let a2 = run_age(2);
        assert_eq!(a2, a1 * 2, "ages must scale with FREQ_MULT");
    }

    #[test]
    fn yx_routing_delivers_everything() {
        use noclat_sim::config::RoutingAlgorithm;
        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.routing = RoutingAlgorithm::YX;
        let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg.noc);
        for i in 0..64u64 {
            net.inject(
                NodeId((i % 32) as u16),
                NodeId(((i * 7) % 32) as u16),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                i as u32,
                i,
            );
        }
        let mut t = 0;
        while net.packets_in_flight() > 0 && t < 20_000 {
            net.tick(t);
            for n in 0..32 {
                let _ = net.take_delivered(NodeId(n));
            }
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0, "Y-X routing lost packets");
    }

    #[test]
    fn batching_policy_delivers_everything() {
        use noclat_sim::config::StarvationPolicy;
        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.starvation = StarvationPolicy::Batching { interval: 500 };
        let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg.noc);
        let mut rng = noclat_sim::rng::SimRng::new(5);
        let mut injected = 0u64;
        for t in 0..3000u64 {
            if rng.chance(0.3) {
                let pri = if rng.chance(0.3) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                net.inject(
                    NodeId(rng.index(32) as u16),
                    NodeId(rng.index(32) as u16),
                    VNet::Response,
                    pri,
                    5,
                    0,
                    0,
                    t,
                );
                injected += 1;
            }
            net.tick(t);
        }
        let mut t = 3000;
        while net.packets_in_flight() > 0 && t < 60_000 {
            net.tick(t);
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0);
        assert_eq!(net.stats().packets_delivered.get(), injected);
    }

    #[test]
    fn link_counters_track_forwarded_flits() {
        let mut net = network();
        // A single 5-flit packet 0 -> 2 crosses two eastward links and
        // ejects at node 2.
        net.inject(NodeId(0), NodeId(2), VNet::Response, Priority::Normal, 5, 0, 1, 0);
        for t in 0..200 {
            net.tick(t);
        }
        assert_eq!(net.link_flits(NodeId(0), Dir::East), 5);
        assert_eq!(net.link_flits(NodeId(1), Dir::East), 5);
        assert_eq!(net.link_flits(NodeId(2), Dir::Local), 5);
        assert_eq!(net.link_flits(NodeId(0), Dir::South), 0);
        let heat = net.node_forwarding_heat();
        assert_eq!(heat[0], 5);
        assert_eq!(heat[1], 5);
        assert_eq!(heat[2], 0, "ejection is not forwarding");
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_injection_rejected() {
        let mut net = network();
        net.inject(NodeId(0), NodeId(1), VNet::Request, Priority::Normal, 0, 0, 1, 0);
    }
}
