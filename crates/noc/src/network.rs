//! The mesh network: routers, links, credit wires, injection queues and
//! ejection (packet reassembly).
//!
//! [`Network`] is generic over the payload type `P`; payloads are held in a
//! side table while their flits are in flight, so flits stay small and
//! `Copy`. Injection queues and ejection inboxes are unbounded (standard
//! source/sink simplification): the network interior is fully flow-controlled
//! by credits, while end-point protocol queues are bounded in practice by
//! the cores' instruction windows and MSHRs.

use std::collections::{HashMap, VecDeque};

/// Struct-of-arrays side table for packets in flight.
///
/// Metadata, payloads and head-flit ages live in parallel vectors indexed by
/// slot; a [`PacketId`] packs `(generation << 32) | slot` so freed slots can
/// be reused without ever aliasing a live id. Compared to the former
/// `HashMap<u64, (PacketMeta, P)>`, lookups are direct indexing and the hot
/// metadata scan stays dense in cache.
#[derive(Debug, Clone)]
struct PacketStore<P> {
    metas: Vec<PacketMeta>,
    payloads: Vec<Option<P>>,
    /// Head-flit age recorded at ejection; `u32::MAX` = not yet recorded
    /// (real ages saturate at 4095, so the sentinel is unreachable).
    head_ages: Vec<u32>,
    /// Current generation per slot; bumped when the slot is freed.
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

const HEAD_AGE_UNSET: u32 = u32::MAX;

impl<P> PacketStore<P> {
    fn new() -> Self {
        PacketStore {
            metas: Vec::new(),
            payloads: Vec::new(),
            head_ages: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn pack(gen: u32, slot: u32) -> PacketId {
        PacketId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn unpack(id: PacketId) -> (u32, u32) {
        ((id.0 >> 32) as u32, id.0 as u32)
    }

    /// Slot index for `id` if that id is still live.
    fn slot_of(&self, id: PacketId) -> Option<usize> {
        let (gen, slot) = Self::unpack(id);
        let s = slot as usize;
        (s < self.gens.len() && self.gens[s] == gen && self.payloads[s].is_some()).then_some(s)
    }

    /// Allocates a slot, builds the metadata from the assigned id, and
    /// stores both.
    fn insert_with(
        &mut self,
        make_meta: impl FnOnce(PacketId) -> PacketMeta,
        payload: P,
    ) -> PacketId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            let id = Self::pack(self.gens[s], slot);
            self.metas[s] = make_meta(id);
            self.payloads[s] = Some(payload);
            self.head_ages[s] = HEAD_AGE_UNSET;
            id
        } else {
            let slot = self.metas.len() as u32;
            let id = Self::pack(0, slot);
            self.metas.push(make_meta(id));
            self.payloads.push(Some(payload));
            self.head_ages.push(HEAD_AGE_UNSET);
            self.gens.push(0);
            id
        }
    }

    fn meta(&self, id: PacketId) -> Option<&PacketMeta> {
        self.slot_of(id).map(|s| &self.metas[s])
    }

    fn set_head_age(&mut self, id: PacketId, age: u32) {
        if let Some(s) = self.slot_of(id) {
            self.head_ages[s] = age;
        }
    }

    fn take_head_age(&mut self, id: PacketId) -> Option<u32> {
        let s = self.slot_of(id)?;
        let age = std::mem::replace(&mut self.head_ages[s], HEAD_AGE_UNSET);
        (age != HEAD_AGE_UNSET).then_some(age)
    }

    /// Removes a live packet, freeing its slot for reuse under a new
    /// generation.
    fn remove(&mut self, id: PacketId) -> Option<(PacketMeta, P)> {
        let s = self.slot_of(id)?;
        let payload = self.payloads[s].take().expect("slot_of checked payload");
        self.gens[s] = self.gens[s].wrapping_add(1);
        self.free.push(s as u32);
        self.live -= 1;
        Some((self.metas[s], payload))
    }

    fn len(&self) -> usize {
        self.live
    }
}

use noclat_sim::config::{NocConfig, StarvationPolicy};
use noclat_sim::error::SimError;
use noclat_sim::faults::{FaultPlan, LinkFaultState, LinkOutcome, RouterStallState};
use noclat_sim::stats::{Counter, RunningMean};
use noclat_sim::Cycle;

use crate::packet::{
    accumulate_age, Delivered, Flit, FlitKind, PacketId, PacketMeta, Priority, VNet,
};
use crate::router::{Router, RouterCounters};
use crate::topology::{Dir, Mesh, NodeId};

/// Network-wide event counters and latency aggregates.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Packets handed to [`Network::inject`].
    pub packets_injected: Counter,
    /// Packets fully delivered to their destination inbox.
    pub packets_delivered: Counter,
    /// Packets injected at high priority.
    pub high_priority_injected: Counter,
    /// Per-leg network latency of request-class packets.
    pub request_latency: RunningMean,
    /// Per-leg network latency of response-class packets.
    pub response_latency: RunningMean,
    /// Packets destroyed by injected link faults (head flit dropped).
    pub packets_dropped: Counter,
    /// Individual flits destroyed by injected link faults.
    pub flits_dropped: Counter,
}

/// One switch traversal, as seen by a [`Network::tick_with`] observer: a
/// flit leaving `node` through `out_port` (`Local` = ejection at that node).
///
/// This is the per-hop probe point of the policy layer. The observer is a
/// generic closure, so [`Network::tick`] — which passes an empty one —
/// monomorphizes to exactly the pre-probe code.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Router the flit is leaving.
    pub node: NodeId,
    /// Output port (`Local` = ejection).
    pub out_port: Dir,
    /// Priority class of the flit.
    pub priority: Priority,
    /// Virtual network the flit travels on.
    pub vnet: VNet,
    /// So-far-delay field after this router's residency.
    pub age: u32,
    /// Cycle of the traversal.
    pub cycle: Cycle,
}

/// A packet waiting at a node for a free injection VC.
#[derive(Debug, Clone, Copy)]
struct PendingPacket {
    id: PacketId,
}

/// A packet currently streaming flits into its bound local VC.
///
/// Carries its own copy of the packet metadata: a fault may drop the head
/// flit (removing the packet from the in-flight table) while later flits are
/// still streaming in at the source, and those flits must keep flowing so
/// the wormhole state unwinds cleanly.
#[derive(Debug, Clone, Copy)]
struct ActiveInjection {
    id: PacketId,
    sent: u8,
    meta: PacketMeta,
}

/// Per-node injection state: FIFOs per (vnet, priority) and the packet bound
/// to each local input VC.
#[derive(Debug, Clone)]
struct Injector {
    /// Index: `vnet.index() * 2 + priority` (high first at dequeue).
    queues: [VecDeque<PendingPacket>; 4],
    /// One slot per local input VC.
    active: Vec<Option<ActiveInjection>>,
    /// Round-robin pointer over VCs for the one-flit-per-cycle local port.
    rr: usize,
}

impl Injector {
    fn new(vcs: usize) -> Self {
        Injector {
            queues: [
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
                VecDeque::new(),
            ],
            active: vec![None; vcs],
            rr: 0,
        }
    }

    fn queue_index(vnet: VNet, priority: Priority) -> usize {
        vnet.index() * 2 + usize::from(priority == Priority::High)
    }
}

/// The mesh network.
#[derive(Debug)]
pub struct Network<P> {
    mesh: Mesh,
    cfg: NocConfig,
    routers: Vec<Router>,
    /// In-flight flits per (node, input port): `(arrival_cycle, flit)`.
    wires: Vec<VecDeque<(Cycle, Flit)>>,
    /// In-flight credits per (node, output port): `(arrival_cycle, vc)`.
    credit_wires: Vec<VecDeque<(Cycle, u8)>>,
    injectors: Vec<Injector>,
    inboxes: Vec<Vec<Delivered<P>>>,
    /// Flits carried per directed link, indexed `node * 5 + out_port`
    /// (`Local` = ejections at that node).
    link_flits: Vec<u64>,
    /// Clock divider per router: router `n` arbitrates only on cycles
    /// divisible by `periods[n]` (1 = full speed). Models the heterogeneous
    /// clock domains Equation 1's `FREQ_MULT / local_frequency` term is
    /// designed for.
    periods: Vec<u32>,
    /// Payload, metadata and head-flit age of packets not yet delivered,
    /// stored struct-of-arrays and indexed by packet slot.
    packets: PacketStore<P>,
    stats: NetworkStats,
    /// Injected link faults (empty state = healthy links, zero cost).
    link_faults: LinkFaultState,
    /// Injected router arbitration stalls.
    router_stalls: RouterStallState,
    /// Packets whose head flit was dropped, mapped to the node whose
    /// outgoing link destroyed them. Remaining flits of a doomed packet are
    /// silently discarded at the same link so wormhole state stays
    /// consistent (no tail-less packet ever wedges a downstream VC).
    doomed: HashMap<u64, usize>,
    /// Dropped packets awaiting pickup by [`Network::take_dropped`].
    dropped: Vec<(PacketMeta, P)>,
}

impl<P> Network<P> {
    /// Creates a healthy network over `mesh` with the given NoC parameters.
    #[must_use]
    pub fn new(mesh: Mesh, cfg: NocConfig) -> Self {
        Self::with_faults(mesh, cfg, &FaultPlan::none())
    }

    /// Creates a network with an injected fault plan (link drops/delays and
    /// router stalls; bank and ingress faults are consumed by the memory
    /// controllers, not the network).
    #[must_use]
    pub fn with_faults(mesh: Mesh, cfg: NocConfig, plan: &FaultPlan) -> Self {
        // Tiles and routers coincide except on a concentrated mesh, where
        // several tiles share one router: router-side state (wires, ports,
        // clock dividers, injection front-ends) is per router, while
        // delivery inboxes stay per tile.
        let tiles = mesh.num_nodes();
        let n = mesh.num_routers();
        let ports = mesh.num_ports();
        Network {
            mesh,
            cfg,
            routers: mesh
                .routers()
                .map(|id| Router::new(id, mesh, cfg))
                .collect(),
            wires: (0..n * ports).map(|_| VecDeque::new()).collect(),
            credit_wires: (0..n * ports).map(|_| VecDeque::new()).collect(),
            injectors: (0..n).map(|_| Injector::new(cfg.vcs_per_port)).collect(),
            inboxes: (0..tiles).map(|_| Vec::new()).collect(),
            link_flits: vec![0; n * ports],
            periods: vec![1; n],
            packets: PacketStore::new(),
            stats: NetworkStats::default(),
            link_faults: LinkFaultState::new(plan),
            router_stalls: RouterStallState::new(plan),
            doomed: HashMap::new(),
            dropped: Vec::new(),
        }
    }

    /// The mesh this network spans.
    #[must_use]
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Network-wide statistics.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Sum of all routers' event counters.
    #[must_use]
    pub fn router_counters(&self) -> RouterCounters {
        let mut total = RouterCounters::default();
        for r in &self.routers {
            let c = r.counters();
            total.flits_traversed += c.flits_traversed;
            total.flits_bypassed += c.flits_bypassed;
            total.high_priority_traversed += c.high_priority_traversed;
            total.age_saturations += c.age_saturations;
        }
        total
    }

    /// Flits currently buffered at each router, indexed by node (watchdog
    /// diagnostic snapshot).
    #[must_use]
    pub fn router_queue_depths(&self) -> Vec<usize> {
        self.routers.iter().map(Router::buffered_flits).collect()
    }

    /// The longest any buffered flit has waited at any router, with the
    /// router holding it (watchdog starvation probe; `None` when the network
    /// interior is empty).
    #[must_use]
    pub fn max_buffered_wait(&self, now: Cycle) -> Option<(NodeId, Cycle)> {
        self.routers
            .iter()
            .filter_map(|r| r.oldest_buffered_wait(now).map(|w| (r.node(), w)))
            .max_by_key(|&(_, w)| w)
    }

    /// Number of packets injected but not yet delivered.
    #[must_use]
    pub fn packets_in_flight(&self) -> usize {
        self.packets.len()
    }

    /// The next cycle (at or after `now`) at which ticking the network could
    /// do any work, or `None` when the network is completely drained (the
    /// event kernel's wake-up).
    ///
    /// Any injector-side state (queued or actively streaming packets) or
    /// buffered flit inside a router means "busy right now" — arbitration,
    /// clock dividers and stall faults make the precise next-progress cycle
    /// expensive to predict, and a whole-system skip only happens when every
    /// component is quiet anyway. With all of those empty, the only latent
    /// events are flits and credits still travelling on wires; skipping past
    /// a credit's arrival would make the first post-skip arbitration see
    /// stale credit state, so wire fronts are exact wake-ups.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let injecting = self.injectors.iter().any(|inj| {
            inj.active.iter().any(Option::is_some) || inj.queues.iter().any(|q| !q.is_empty())
        });
        if injecting || self.routers.iter().any(|r| r.occupancy() > 0) {
            return Some(now);
        }
        let mut wake: Option<Cycle> = None;
        let mut fold = |t: Cycle| wake = Some(wake.map_or(t, |w: Cycle| w.min(t)));
        for w in &self.wires {
            if let Some(&(t, _)) = w.front() {
                fold(t);
            }
        }
        for cw in &self.credit_wires {
            if let Some(&(t, _)) = cw.front() {
                fold(t);
            }
        }
        wake.map(|t| t.max(now))
    }

    /// Slows router `node` (a router-grid id) down to arbitrate once every
    /// `period` cycles (1 = full speed). Flits still arrive and buffer at
    /// wire speed; only the router pipeline is clock-divided, as in a
    /// slower clock domain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroClockPeriod`] if `period` is zero and
    /// [`SimError::NodeOutOfRange`] if `node` is outside the router grid.
    pub fn set_node_period(&mut self, node: NodeId, period: u32) -> Result<(), SimError> {
        if period == 0 {
            return Err(SimError::ZeroClockPeriod);
        }
        let nodes = self.mesh.num_routers();
        if node.index() >= nodes {
            return Err(SimError::NodeOutOfRange {
                node: node.index(),
                nodes,
            });
        }
        self.periods[node.index()] = period;
        Ok(())
    }

    /// Flits carried by the directed link leaving router `node` through
    /// `port` (`Local` counts ejections at that router).
    #[must_use]
    pub fn link_flits(&self, node: NodeId, port: Dir) -> u64 {
        self.link_flits[node.index() * self.mesh.num_ports() + port.index()]
    }

    /// Per-router total of flits forwarded onto links (a congestion
    /// heat-map: hot routers forward the most flits). Ejections (`Local`)
    /// are excluded; express channels count like any other link.
    #[must_use]
    pub fn node_forwarding_heat(&self) -> Vec<u64> {
        let ports = self.mesh.num_ports();
        (0..self.routers.len())
            .map(|n| {
                self.mesh
                    .ports()
                    .iter()
                    .filter(|d| **d != Dir::Local)
                    .map(|d| self.link_flits[n * ports + d.index()])
                    .sum()
            })
            .collect()
    }

    /// Hands a packet to the network for delivery.
    ///
    /// `initial_age` seeds the header's so-far-delay field (the delay the
    /// enclosing transaction accumulated before this network leg).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroFlitPacket`] if `num_flits` is zero and
    /// [`SimError::NodeOutOfRange`] if src or dest is outside the mesh.
    #[allow(clippy::too_many_arguments)]
    pub fn inject(
        &mut self,
        src: NodeId,
        dest: NodeId,
        vnet: VNet,
        priority: Priority,
        num_flits: u8,
        initial_age: u32,
        payload: P,
        now: Cycle,
    ) -> Result<PacketId, SimError> {
        if num_flits == 0 {
            return Err(SimError::ZeroFlitPacket);
        }
        let nodes = self.mesh.num_nodes();
        for n in [src, dest] {
            if n.index() >= nodes {
                return Err(SimError::NodeOutOfRange {
                    node: n.index(),
                    nodes,
                });
            }
        }
        let max_age = self.cfg.max_age();
        let id = self.packets.insert_with(
            |id| PacketMeta {
                id,
                src,
                dest,
                vnet,
                priority,
                num_flits,
                initial_age: initial_age.min(max_age),
                injected_at: now,
            },
            payload,
        );
        let inj = &mut self.injectors[self.mesh.router_of(src).index()];
        inj.queues[Injector::queue_index(vnet, priority)].push_back(PendingPacket { id });
        self.stats.packets_injected.inc();
        if priority == Priority::High {
            self.stats.high_priority_injected.inc();
        }
        Ok(id)
    }

    /// Takes all packets delivered to `node` since the last call.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Delivered<P>> {
        std::mem::take(&mut self.inboxes[node.index()])
    }

    /// Takes all packets destroyed by link faults since the last call,
    /// with their payloads (the recovery layer re-injects from these).
    pub fn take_dropped(&mut self) -> Vec<(PacketMeta, P)> {
        std::mem::take(&mut self.dropped)
    }

    /// Advances the network by one cycle.
    ///
    /// Order matters: routers run *before* wire delivery so that a flit
    /// arriving one cycle behind its (bypassed) predecessor observes the
    /// buffer state after this cycle's switch traversals — without this, a
    /// high-priority body flit would never see the empty buffer that makes
    /// it bypass-eligible (Section 3.3).
    pub fn tick(&mut self, now: Cycle) {
        self.tick_with(now, &mut |_| {});
    }

    /// Like [`Network::tick`], invoking `observer` once per switch
    /// traversal (the per-hop probe point). Monomorphized per closure type:
    /// the no-op observer of `tick` compiles away entirely.
    pub fn tick_with<F: FnMut(&Hop)>(&mut self, now: Cycle, observer: &mut F) {
        self.injection_step(now);
        self.router_step(now, observer);
        self.deliver_wires(now);
    }

    /// Moves arrived flits and credits from the wires into the routers.
    fn deliver_wires(&mut self, now: Cycle) {
        let ports = self.mesh.num_ports();
        let port_dirs = self.mesh.ports();
        for node in 0..self.routers.len() {
            for (port, &dir) in port_dirs.iter().enumerate() {
                let w = &mut self.wires[node * ports + port];
                while w.front().is_some_and(|&(t, _)| t <= now) {
                    let (_, flit) = w.pop_front().expect("checked front");
                    self.routers[node].accept_flit(dir, flit, now);
                }
                let cw = &mut self.credit_wires[node * ports + port];
                while cw.front().is_some_and(|&(t, _)| t <= now) {
                    let (_, vc) = cw.pop_front().expect("checked front");
                    self.routers[node].apply_credit(dir, vc);
                }
            }
        }
    }

    /// Binds pending packets to free local VCs and streams one flit per
    /// virtual network per node per cycle into the local input port (the
    /// network interface serves each message class independently, as in
    /// Garnet-style NIs).
    fn injection_step(&mut self, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        let half = vcs / 2;
        for node in 0..self.routers.len() {
            // Bind pending packets (high-priority queue first per vnet).
            for vnet in [VNet::Request, VNet::Response] {
                let (start, end) = (vnet.index() * half, vnet.index() * half + half);
                for pri_first in [Priority::High, Priority::Normal] {
                    let qi = Injector::queue_index(vnet, pri_first);
                    while !self.injectors[node].queues[qi].is_empty() {
                        let free_vc = (start..end).find(|&v| {
                            self.injectors[node].active[v].is_none()
                                && !self.routers[node].local_vc_busy(v)
                        });
                        let Some(v) = free_vc else { break };
                        let pending = self.injectors[node].queues[qi]
                            .pop_front()
                            .expect("queue non-empty");
                        let meta = *self
                            .packets
                            .meta(pending.id)
                            .expect("pending packet is in flight");
                        self.injectors[node].active[v] = Some(ActiveInjection {
                            id: pending.id,
                            sent: 0,
                            meta,
                        });
                    }
                }
            }
            for vnet in [VNet::Request, VNet::Response] {
                self.stream_one_flit(node, vnet, now);
            }
        }
    }

    /// Streams at most one flit of `vnet`-class traffic at `node`,
    /// round-robin over that class's active VCs.
    fn stream_one_flit(&mut self, node: usize, vnet: VNet, now: Cycle) {
        let vcs = self.cfg.vcs_per_port;
        let half = vcs / 2;
        let start = vnet.index() * half;
        {
            let rr = self.injectors[node].rr;
            for off in 0..half {
                let v = start + (rr + off) % half;
                let Some(active) = self.injectors[node].active[v] else {
                    continue;
                };
                if self.routers[node].local_vc_space(v) == 0 {
                    continue;
                }
                let meta = &active.meta;
                let kind = match (active.sent, meta.num_flits) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (s, n) if s + 1 == n => FlitKind::Tail,
                    _ => FlitKind::Body,
                };
                // Charge the time spent waiting in the source queue to the
                // so-far-delay field: the network interface is one of the
                // "stages" of Equation 1.
                let batch = match self.cfg.starvation {
                    StarvationPolicy::Batching { interval } => {
                        (meta.injected_at / Cycle::from(interval.max(1))) as u32
                    }
                    _ => 0,
                };
                let flit = Flit {
                    packet: active.id,
                    kind,
                    dest: meta.dest,
                    vnet: meta.vnet,
                    priority: meta.priority,
                    age: accumulate_age(
                        meta.initial_age,
                        now.saturating_sub(meta.injected_at),
                        self.cfg.freq_mult,
                        self.cfg.max_age(),
                    ),
                    batch,
                    vc: v as u8,
                    arrived_at: now,
                    ready_at: now,
                };
                let num_flits = meta.num_flits;
                self.routers[node].accept_flit(Dir::Local, flit, now);
                let slot = self.injectors[node].active[v]
                    .as_mut()
                    .expect("active injection");
                slot.sent += 1;
                if slot.sent == num_flits {
                    self.injectors[node].active[v] = None;
                }
                self.injectors[node].rr = (v + 1) % half;
                return; // one flit per vnet per node per cycle
            }
        }
    }

    /// Ticks every router and routes its outputs onto wires / inboxes.
    fn router_step<F: FnMut(&Hop)>(&mut self, now: Cycle, observer: &mut F) {
        let ports = self.mesh.num_ports();
        for node in 0..self.routers.len() {
            let node_id = NodeId(node as u16);
            // A slowed router only arbitrates on its own clock edges.
            if !now.is_multiple_of(Cycle::from(self.periods[node])) {
                continue;
            }
            // An injected stall freezes VA/SA entirely; flits keep arriving
            // and buffering at wire speed (deliver_wires still runs).
            if self.router_stalls.is_active() && self.router_stalls.stalled(node, now) {
                continue;
            }
            // Split borrows: the router produces, the network consumes.
            let out = {
                let r = &mut self.routers[node];
                let o = r.tick(now);
                // Clone the small per-cycle output so `self` is free again.
                (o.traversals.clone(), o.credits.clone())
            };
            for tr in out.0 {
                self.link_flits[node * ports + tr.out_port.index()] += 1;
                observer(&Hop {
                    node: node_id,
                    out_port: tr.out_port,
                    priority: tr.flit.priority,
                    vnet: tr.flit.vnet,
                    age: tr.flit.age,
                    cycle: now,
                });
                if tr.out_port == Dir::Local {
                    self.eject(node_id, tr.flit, now);
                } else {
                    let mut extra_delay: Cycle = 0;
                    if self.link_faults.is_active() || !self.doomed.is_empty() {
                        match self.link_fate(node, &tr.flit, now) {
                            LinkOutcome::Drop => {
                                // The router already did its work (credit
                                // consumed, VC ownership advanced); refund
                                // the credit so the output VC does not leak,
                                // and let remaining flits of the packet be
                                // discarded here too so no tail-less packet
                                // ever reaches downstream.
                                self.routers[node].apply_credit(tr.out_port, tr.flit.vc);
                                continue;
                            }
                            LinkOutcome::Delay(d) => extra_delay = d,
                            LinkOutcome::Deliver => {}
                        }
                    }
                    let nb = self
                        .mesh
                        .neighbor(node_id, tr.out_port)
                        .expect("route stays inside mesh");
                    let in_port = tr.out_port.opposite();
                    self.wires[nb.index() * ports + in_port.index()]
                        .push_back((now + self.cfg.link_latency + extra_delay, tr.flit));
                }
            }
            for cr in out.1 {
                if cr.in_port == Dir::Local {
                    continue; // injector reads buffer occupancy directly
                }
                let upstream = self
                    .mesh
                    .neighbor(node_id, cr.in_port)
                    .expect("credit goes to an existing neighbor");
                let up_out_port = cr.in_port.opposite();
                self.credit_wires[upstream.index() * ports + up_out_port.index()]
                    .push_back((now + 1, cr.vc));
            }
        }
    }

    /// Decides what the faulty link leaving `node` does to `flit`.
    ///
    /// Stochastic drop/delay decisions are made once per packet, on the head
    /// flit; body and tail flits inherit the head's fate (dropping a body
    /// flit independently would leave a tail-less worm wedging a downstream
    /// VC forever, which models an unprotected link, not a recoverable one).
    fn link_fate(&mut self, node: usize, flit: &Flit, now: Cycle) -> LinkOutcome {
        if let Some(&doom_node) = self.doomed.get(&flit.packet.0) {
            if doom_node == node {
                self.stats.flits_dropped.inc();
                if flit.kind.is_tail() {
                    self.doomed.remove(&flit.packet.0);
                }
                return LinkOutcome::Drop;
            }
            return LinkOutcome::Deliver;
        }
        if !flit.kind.is_head() || !self.link_faults.is_active() {
            return LinkOutcome::Deliver;
        }
        let outcome = self.link_faults.outcome(node, now);
        if outcome == LinkOutcome::Drop {
            self.stats.flits_dropped.inc();
            self.stats.packets_dropped.inc();
            if !flit.kind.is_tail() {
                self.doomed.insert(flit.packet.0, node);
            }
            if let Some((meta, payload)) = self.packets.remove(flit.packet) {
                self.dropped.push((meta, payload));
            }
        }
        outcome
    }

    /// Consumes a flit at its destination; delivers the packet on its tail.
    fn eject(&mut self, node: NodeId, flit: Flit, now: Cycle) {
        if flit.kind.is_head() {
            self.packets.set_head_age(flit.packet, flit.age);
        }
        if !flit.kind.is_tail() {
            return;
        }
        let final_age = self.packets.take_head_age(flit.packet).unwrap_or(flit.age);
        let (meta, payload) = self
            .packets
            .remove(flit.packet)
            .expect("delivered packet was in flight");
        debug_assert_eq!(
            self.mesh.router_of(meta.dest),
            node,
            "flit ejected at wrong router"
        );
        let delivered = Delivered {
            meta,
            final_age,
            delivered_at: now,
            payload,
        };
        self.stats.packets_delivered.inc();
        let lat = delivered.network_latency() as f64;
        match meta.vnet {
            VNet::Request => self.stats.request_latency.record(lat),
            VNet::Response => self.stats.response_latency.record(lat),
        }
        // Deliver to the destination *tile*: on a concentrated mesh several
        // tiles share the ejecting router.
        self.inboxes[meta.dest.index()].push(delivered);
    }
}

/// Number of flits for a message with `payload_bytes` of data: one header
/// flit plus enough flits to carry the payload (Table 1: 128-bit flits, so a
/// 64 B cache line takes 1 + 4 = 5 flits).
#[must_use]
pub fn flits_for_payload(payload_bytes: usize, flit_bits: usize) -> u8 {
    let data_flits = (payload_bytes * 8).div_ceil(flit_bits);
    (1 + data_flits) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn network() -> Network<u32> {
        let cfg = SystemConfig::baseline_32();
        Network::new(Mesh::new(8, 4), cfg.noc)
    }

    fn run_until_delivered(
        net: &mut Network<u32>,
        dest: NodeId,
        start: Cycle,
        limit: Cycle,
    ) -> (Cycle, Vec<Delivered<u32>>) {
        for t in start..start + limit {
            net.tick(t);
            let got = net.take_delivered(dest);
            if !got.is_empty() {
                return (t, got);
            }
        }
        panic!("packet not delivered within {limit} cycles");
    }

    #[test]
    fn single_flit_end_to_end() {
        let mut net = network();
        let src = NodeId(0);
        let dest = NodeId(7); // 7 hops east
        net.inject(src, dest, VNet::Request, Priority::Normal, 1, 0, 42, 0)
            .unwrap();
        let (t, got) = run_until_delivered(&mut net, dest, 0, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 42);
        assert_eq!(got[0].meta.src, src);
        // 8 switch traversals (7 forwarding routers + ejection) at 4 cycles
        // of pipeline each, plus 7 link cycles: earliest delivery is t=39.
        assert_eq!(t, 39, "zero-load latency must match the pipeline model");
        assert_eq!(got[0].final_age, 32, "age = 8 routers x 4-cycle residency");
        assert_eq!(net.packets_in_flight(), 0);
    }

    #[test]
    fn multi_flit_packet_arrives_whole() {
        let mut net = network();
        let src = NodeId(3);
        let dest = NodeId(28);
        net.inject(src, dest, VNet::Response, Priority::Normal, 5, 100, 7, 0)
            .unwrap();
        let (_, got) = run_until_delivered(&mut net, dest, 0, 400);
        assert_eq!(got.len(), 1);
        assert!(got[0].final_age >= 100, "initial age must be preserved");
    }

    #[test]
    fn local_delivery_works() {
        let mut net = network();
        let n = NodeId(9);
        net.inject(n, n, VNet::Request, Priority::Normal, 1, 0, 1, 0)
            .unwrap();
        let (_, got) = run_until_delivered(&mut net, n, 0, 50);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn next_event_tracks_idle_and_busy_states() {
        let mut net = network();
        assert_eq!(net.next_event(0), None, "fresh network is fully drained");
        net.inject(
            NodeId(0),
            NodeId(3),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            9,
            0,
        )
        .unwrap();
        assert_eq!(net.next_event(0), Some(0), "queued packet means busy now");
    }

    #[test]
    fn event_driven_delivery_matches_cycle_driven() {
        let dest = NodeId(7);
        let mut reference = network();
        reference
            .inject(
                NodeId(0),
                dest,
                VNet::Request,
                Priority::Normal,
                1,
                0,
                42,
                0,
            )
            .unwrap();
        let (t_ref, _) = run_until_delivered(&mut reference, dest, 0, 200);

        // Event-driven twin: tick only at cycles next_event reports.
        let mut net = network();
        net.inject(
            NodeId(0),
            dest,
            VNet::Request,
            Priority::Normal,
            1,
            0,
            42,
            0,
        )
        .unwrap();
        let mut t: Cycle = 0;
        let mut delivered_at = None;
        while delivered_at.is_none() {
            assert!(t < 500, "packet never delivered");
            let wake = net.next_event(t).expect("packet still in flight");
            t = wake.max(t);
            net.tick(t);
            if !net.take_delivered(dest).is_empty() {
                delivered_at = Some(t);
            }
            t += 1;
        }
        assert_eq!(
            delivered_at,
            Some(t_ref),
            "skipping idle cycles changed timing"
        );
        // Drain trailing credits; the network then reports fully idle.
        while let Some(wake) = net.next_event(t) {
            assert!(t < 1_000, "credits never drained");
            t = wake.max(t);
            net.tick(t);
            t += 1;
        }
        assert_eq!(net.next_event(t), None);
    }

    #[test]
    fn packet_ids_stay_unique_across_slot_reuse() {
        let mut net = network();
        let first = net
            .inject(
                NodeId(0),
                NodeId(1),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                1,
                0,
            )
            .unwrap();
        let (_, got) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        assert_eq!(got[0].meta.id, first);
        let second = net
            .inject(
                NodeId(0),
                NodeId(1),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                2,
                50,
            )
            .unwrap();
        assert_ne!(first, second, "reused slot must carry a fresh generation");
        let (_, got2) = run_until_delivered(&mut net, NodeId(1), 50, 100);
        assert_eq!(got2[0].meta.id, second);
        assert_eq!(got2[0].payload, 2);
    }

    #[test]
    fn high_priority_is_faster_under_load() {
        let cfg = SystemConfig::baseline_32();
        let mesh = Mesh::new(8, 4);
        let measure = |priority: Priority| -> f64 {
            let mut net: Network<u32> = Network::new(mesh, cfg.noc);
            // Background traffic: every node hammers node 31.
            let mut t: Cycle = 0;
            let mut probe_latencies = Vec::new();
            let mut next_probe = 50;
            let mut outstanding: Option<(PacketId, Cycle)> = None;
            while t < 6000 {
                if t.is_multiple_of(3) {
                    let src = NodeId((t % 24) as u16);
                    net.inject(src, NodeId(31), VNet::Request, Priority::Normal, 5, 0, 0, t)
                        .unwrap();
                }
                if t == next_probe && outstanding.is_none() {
                    let id = net
                        .inject(NodeId(0), NodeId(31), VNet::Request, priority, 1, 0, 1, t)
                        .unwrap();
                    outstanding = Some((id, t));
                }
                net.tick(t);
                for d in net.take_delivered(NodeId(31)) {
                    if let Some((id, at)) = outstanding {
                        if d.meta.id == id {
                            probe_latencies.push((d.delivered_at - at) as f64);
                            outstanding = None;
                            next_probe = t + 200;
                        }
                    }
                }
                t += 1;
            }
            assert!(!probe_latencies.is_empty(), "no probes delivered");
            probe_latencies.iter().sum::<f64>() / probe_latencies.len() as f64
        };
        let normal = measure(Priority::Normal);
        let high = measure(Priority::High);
        assert!(
            high < normal,
            "high priority ({high:.1}) must beat normal ({normal:.1}) under load"
        );
    }

    #[test]
    fn conservation_no_packet_lost_under_random_traffic() {
        use noclat_sim::rng::SimRng;
        let mut net = network();
        let mut rng = SimRng::new(99);
        let mut injected = 0u64;
        for t in 0..5000u64 {
            if rng.chance(0.4) {
                let src = NodeId(rng.index(32) as u16);
                let dest = NodeId(rng.index(32) as u16);
                let vnet = if rng.chance(0.5) {
                    VNet::Request
                } else {
                    VNet::Response
                };
                let pri = if rng.chance(0.1) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                let flits = if vnet == VNet::Response { 5 } else { 1 };
                net.inject(src, dest, vnet, pri, flits, 0, 0, t).unwrap();
                injected += 1;
            }
            net.tick(t);
        }
        // Drain: no more injections; everything in flight must arrive.
        let mut t = 5000u64;
        while net.packets_in_flight() > 0 && t < 60_000 {
            net.tick(t);
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0, "packets stuck in network");
        let delivered: u64 = net.stats().packets_delivered.get();
        assert_eq!(delivered, injected);
    }

    #[test]
    fn age_reflects_path_length() {
        let mut net = network();
        // Short hop: 0 -> 1. Long: 0 -> 31.
        net.inject(
            NodeId(0),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        )
        .unwrap();
        let (_, short) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        let mut net2 = network();
        net2.inject(
            NodeId(0),
            NodeId(31),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            2,
            0,
        )
        .unwrap();
        let (_, long) = run_until_delivered(&mut net2, NodeId(31), 0, 300);
        assert!(
            long[0].final_age > short[0].final_age,
            "age must grow with distance ({} vs {})",
            long[0].final_age,
            short[0].final_age
        );
    }

    #[test]
    fn take_delivered_clears_the_inbox() {
        let mut net = network();
        net.inject(
            NodeId(0),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        )
        .unwrap();
        let (_, got) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        assert_eq!(got.len(), 1);
        assert!(net.take_delivered(NodeId(1)).is_empty(), "inbox must drain");
    }

    #[test]
    fn initial_age_is_clamped_to_the_field_width() {
        let mut net = network();
        net.inject(
            NodeId(0),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            1,
            u32::MAX, // far beyond the 12-bit field
            9,
            0,
        )
        .unwrap();
        let (_, got) = run_until_delivered(&mut net, NodeId(1), 0, 100);
        assert!(
            got[0].final_age <= 4095,
            "age {} exceeds 12 bits",
            got[0].final_age
        );
    }

    #[test]
    fn latency_stats_split_by_vnet() {
        let mut net = network();
        net.inject(
            NodeId(0),
            NodeId(3),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        )
        .unwrap();
        net.inject(
            NodeId(0),
            NodeId(3),
            VNet::Response,
            Priority::Normal,
            5,
            0,
            2,
            0,
        )
        .unwrap();
        for t in 0..300 {
            net.tick(t);
            let _ = net.take_delivered(NodeId(3));
        }
        assert_eq!(net.stats().request_latency.count(), 1);
        assert_eq!(net.stats().response_latency.count(), 1);
    }

    #[test]
    fn flits_for_payload_matches_table1() {
        assert_eq!(flits_for_payload(64, 128), 5);
        assert_eq!(flits_for_payload(0, 128), 1);
        assert_eq!(flits_for_payload(16, 128), 2);
        assert_eq!(flits_for_payload(17, 128), 3);
    }

    #[test]
    fn slowed_router_delays_traffic_through_it() {
        // Packets 0 -> 2 pass through router 1; dividing router 1's clock
        // by 8 must lengthen the trip, and the slow residency must appear
        // in the age field.
        let deliver = |slow: bool| -> (u64, u32) {
            let cfg = SystemConfig::baseline_32().noc;
            let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg);
            if slow {
                net.set_node_period(NodeId(1), 8).unwrap();
            }
            net.inject(
                NodeId(0),
                NodeId(2),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                1,
                0,
            )
            .unwrap();
            for t in 0..500 {
                net.tick(t);
                if let Some(d) = net.take_delivered(NodeId(2)).first() {
                    return (d.delivered_at, d.final_age);
                }
            }
            panic!("not delivered");
        };
        let (fast_t, fast_age) = deliver(false);
        let (slow_t, slow_age) = deliver(true);
        assert!(slow_t > fast_t, "slow domain must delay delivery");
        assert!(
            slow_age > fast_age,
            "the extra residency must age the message"
        );
    }

    #[test]
    fn freq_mult_scales_accumulated_age() {
        // The paper's Equation 1 divides local delays by the local clock and
        // multiplies by FREQ_MULT; with a uniform clock, doubling FREQ_MULT
        // doubles every accumulated delay.
        let run_age = |fm: u32| -> u32 {
            let mut cfg = SystemConfig::baseline_32().noc;
            cfg.freq_mult = fm;
            let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg);
            net.inject(
                NodeId(0),
                NodeId(7),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                1,
                0,
            )
            .unwrap();
            for t in 0..200 {
                net.tick(t);
                let got = net.take_delivered(NodeId(7));
                if let Some(d) = got.first() {
                    return d.final_age;
                }
            }
            panic!("not delivered");
        };
        let a1 = run_age(1);
        let a2 = run_age(2);
        assert_eq!(a2, a1 * 2, "ages must scale with FREQ_MULT");
    }

    #[test]
    fn yx_routing_delivers_everything() {
        use noclat_sim::config::RoutingAlgorithm;
        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.routing = RoutingAlgorithm::YX;
        let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg.noc);
        for i in 0..64u64 {
            net.inject(
                NodeId((i % 32) as u16),
                NodeId(((i * 7) % 32) as u16),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                i as u32,
                i,
            )
            .unwrap();
        }
        let mut t = 0;
        while net.packets_in_flight() > 0 && t < 20_000 {
            net.tick(t);
            for n in 0..32 {
                let _ = net.take_delivered(NodeId(n));
            }
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0, "Y-X routing lost packets");
    }

    #[test]
    fn batching_policy_delivers_everything() {
        use noclat_sim::config::StarvationPolicy;
        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.starvation = StarvationPolicy::Batching { interval: 500 };
        let mut net: Network<u32> = Network::new(Mesh::new(8, 4), cfg.noc);
        let mut rng = noclat_sim::rng::SimRng::new(5);
        let mut injected = 0u64;
        for t in 0..3000u64 {
            if rng.chance(0.3) {
                let pri = if rng.chance(0.3) {
                    Priority::High
                } else {
                    Priority::Normal
                };
                net.inject(
                    NodeId(rng.index(32) as u16),
                    NodeId(rng.index(32) as u16),
                    VNet::Response,
                    pri,
                    5,
                    0,
                    0,
                    t,
                )
                .unwrap();
                injected += 1;
            }
            net.tick(t);
        }
        let mut t = 3000;
        while net.packets_in_flight() > 0 && t < 60_000 {
            net.tick(t);
            t += 1;
        }
        assert_eq!(net.packets_in_flight(), 0);
        assert_eq!(net.stats().packets_delivered.get(), injected);
    }

    #[test]
    fn link_counters_track_forwarded_flits() {
        let mut net = network();
        // A single 5-flit packet 0 -> 2 crosses two eastward links and
        // ejects at node 2.
        net.inject(
            NodeId(0),
            NodeId(2),
            VNet::Response,
            Priority::Normal,
            5,
            0,
            1,
            0,
        )
        .unwrap();
        for t in 0..200 {
            net.tick(t);
        }
        assert_eq!(net.link_flits(NodeId(0), Dir::East), 5);
        assert_eq!(net.link_flits(NodeId(1), Dir::East), 5);
        assert_eq!(net.link_flits(NodeId(2), Dir::Local), 5);
        assert_eq!(net.link_flits(NodeId(0), Dir::South), 0);
        let heat = net.node_forwarding_heat();
        assert_eq!(heat[0], 5);
        assert_eq!(heat[1], 5);
        assert_eq!(heat[2], 0, "ejection is not forwarding");
    }

    #[test]
    fn zero_flit_injection_rejected() {
        let mut net = network();
        let got = net.inject(
            NodeId(0),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            0,
            0,
            1,
            0,
        );
        assert_eq!(got, Err(SimError::ZeroFlitPacket));
    }

    #[test]
    fn out_of_mesh_endpoints_rejected() {
        let mut net = network();
        let got = net.inject(
            NodeId(99),
            NodeId(1),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        );
        assert!(matches!(
            got,
            Err(SimError::NodeOutOfRange { node: 99, .. })
        ));
        let got = net.inject(
            NodeId(0),
            NodeId(40),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        );
        assert!(matches!(
            got,
            Err(SimError::NodeOutOfRange { node: 40, .. })
        ));
        assert_eq!(
            net.set_node_period(NodeId(0), 0),
            Err(SimError::ZeroClockPeriod)
        );
        assert!(matches!(
            net.set_node_period(NodeId(99), 2),
            Err(SimError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn dropped_packets_are_reported_not_lost() {
        use noclat_sim::faults::{CycleWindow, FaultPlan, LinkFault};
        // Every link drops every head flit in [0, 50): the packet must come
        // back through take_dropped(), with wormhole state fully unwound.
        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            node: None,
            drop_prob: 1.0,
            extra_delay: 0,
            window: CycleWindow { start: 0, end: 50 },
        });
        let cfg = SystemConfig::baseline_32();
        let mut net: Network<u32> = Network::with_faults(Mesh::new(8, 4), cfg.noc, &plan);
        net.inject(
            NodeId(0),
            NodeId(7),
            VNet::Response,
            Priority::Normal,
            5,
            0,
            77,
            0,
        )
        .unwrap();
        for t in 0..200 {
            net.tick(t);
        }
        let dropped = net.take_dropped();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].1, 77, "payload must come back with the drop");
        assert_eq!(net.packets_in_flight(), 0);
        assert_eq!(net.stats().packets_dropped.get(), 1);
        assert_eq!(net.stats().flits_dropped.get(), 5, "all 5 flits discarded");
        assert_eq!(net.stats().packets_delivered.get(), 0);
        // The network must be fully healthy afterwards: a fresh packet past
        // the fault window sails through.
        net.inject(
            NodeId(0),
            NodeId(7),
            VNet::Response,
            Priority::Normal,
            5,
            0,
            78,
            200,
        )
        .unwrap();
        let (_, got) = run_until_delivered(&mut net, NodeId(7), 200, 300);
        assert_eq!(got[0].payload, 78);
    }

    #[test]
    fn link_delay_faults_slow_but_do_not_lose_packets() {
        use noclat_sim::faults::{CycleWindow, FaultPlan, LinkFault};
        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            node: None,
            drop_prob: 0.0,
            extra_delay: 10,
            window: CycleWindow::ALWAYS,
        });
        let cfg = SystemConfig::baseline_32();
        let mut healthy: Network<u32> = Network::new(Mesh::new(8, 4), cfg.noc);
        healthy
            .inject(
                NodeId(0),
                NodeId(7),
                VNet::Request,
                Priority::Normal,
                1,
                0,
                1,
                0,
            )
            .unwrap();
        let (t_healthy, _) = run_until_delivered(&mut healthy, NodeId(7), 0, 400);
        let mut slow: Network<u32> = Network::with_faults(Mesh::new(8, 4), cfg.noc, &plan);
        slow.inject(
            NodeId(0),
            NodeId(7),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            1,
            0,
        )
        .unwrap();
        let (t_slow, _) = run_until_delivered(&mut slow, NodeId(7), 0, 400);
        assert!(
            t_slow >= t_healthy + 70,
            "7 faulty links x 10 extra cycles must show up ({t_healthy} -> {t_slow})"
        );
        assert_eq!(slow.stats().packets_dropped.get(), 0);
    }

    #[test]
    fn stalled_router_blocks_and_releases_traffic() {
        use noclat_sim::faults::{CycleWindow, FaultPlan, RouterStall};
        let mut plan = FaultPlan::none();
        plan.router_stalls.push(RouterStall {
            node: 1,
            window: CycleWindow { start: 0, end: 100 },
        });
        let cfg = SystemConfig::baseline_32();
        let mut net: Network<u32> = Network::with_faults(Mesh::new(8, 4), cfg.noc, &plan);
        net.inject(
            NodeId(0),
            NodeId(2),
            VNet::Request,
            Priority::Normal,
            1,
            0,
            9,
            0,
        )
        .unwrap();
        let (t, got) = run_until_delivered(&mut net, NodeId(2), 0, 400);
        assert_eq!(got[0].payload, 9);
        assert!(
            t >= 100,
            "delivery at {t} should have waited out the stall window"
        );
    }
}
