//! Property-based tests of the network: under arbitrary admissible traffic,
//! no packet is lost, duplicated, or delivered faster than physics allows,
//! and the age field never decreases along a path.

use noclat_noc::{flits_for_payload, Dir, Mesh, Network, NodeId, Priority, Topology, VNet};
use noclat_sim::check::{self, pick, range_u64};
use noclat_sim::config::{RouterPipeline, RoutingAlgorithm, SystemConfig};
use noclat_sim::rng::SimRng;

/// One injected packet description.
#[derive(Debug, Clone)]
struct Inj {
    src: u16,
    dest: u16,
    response: bool,
    high: bool,
    at: u64,
    initial_age: u32,
}

fn random_injections(rng: &mut SimRng, nodes: u16, horizon: u64) -> Vec<Inj> {
    let n = range_u64(rng, 1, 150) as usize;
    (0..n)
        .map(|_| Inj {
            src: rng.below(u64::from(nodes)) as u16,
            dest: rng.below(u64::from(nodes)) as u16,
            response: rng.chance(0.5),
            high: rng.chance(0.5),
            at: rng.below(horizon),
            initial_age: rng.below(500) as u32,
        })
        .collect()
}

fn run_traffic(
    injections: Vec<Inj>,
    pipeline: RouterPipeline,
    bypass: bool,
) -> Vec<(Inj, u64, u32)> {
    let mut cfg = SystemConfig::baseline_32().noc;
    cfg.pipeline = pipeline;
    cfg.bypass_enabled = bypass;
    let mesh = Mesh::new(8, 4);
    let mut net: Network<usize> = Network::new(mesh, cfg);
    let mut sorted = injections;
    sorted.sort_by_key(|i| i.at);
    let mut delivered: Vec<Option<(u64, u32)>> = vec![None; sorted.len()];
    let mut next = 0usize;
    let mut ids = std::collections::HashMap::new();
    let mut t = 0u64;
    while delivered.iter().any(Option::is_none) {
        assert!(t < 400_000, "traffic did not drain (deadlock?)");
        while next < sorted.len() && sorted[next].at <= t {
            let i = &sorted[next];
            let flits = if i.response {
                flits_for_payload(64, cfg.flit_bits)
            } else {
                1
            };
            let id = net
                .inject(
                    NodeId(i.src),
                    NodeId(i.dest),
                    if i.response {
                        VNet::Response
                    } else {
                        VNet::Request
                    },
                    if i.high {
                        Priority::High
                    } else {
                        Priority::Normal
                    },
                    flits,
                    i.initial_age,
                    next,
                    t,
                )
                .expect("admissible injection");
            ids.insert(id, next);
            next += 1;
        }
        net.tick(t);
        for node in 0..32 {
            for d in net.take_delivered(NodeId(node as u16)) {
                let idx = ids[&d.meta.id];
                assert!(delivered[idx].is_none(), "duplicate delivery");
                delivered[idx] = Some((d.delivered_at, d.final_age));
            }
        }
        t += 1;
    }
    sorted
        .into_iter()
        .zip(delivered)
        .map(|(i, d)| {
            let (at, age) = d.expect("all delivered");
            (i, at, age)
        })
        .collect()
}

#[test]
fn conservation_and_physics() {
    check::cases(16, |rng| {
        let injections = random_injections(rng, 32, 3_000);
        let pipeline = pick(rng, &[RouterPipeline::FiveStage, RouterPipeline::TwoStage]);
        let bypass = rng.chance(0.5);
        let mesh = Mesh::new(8, 4);
        let results = run_traffic(injections, pipeline, bypass);
        for (inj, delivered_at, final_age) in results {
            // Physics: a packet cannot beat per-hop pipeline delay.
            let hops = mesh.hop_distance(NodeId(inj.src), NodeId(inj.dest)) as u64;
            let min_residency = match (pipeline, bypass && inj.high) {
                (RouterPipeline::TwoStage, _) | (_, true) => 1,
                (RouterPipeline::FiveStage, false) => 4,
            };
            // hops+1 routers traversed (incl. ejection), link per hop.
            let floor = (hops + 1) * (min_residency + 1);
            let latency = delivered_at - inj.at;
            assert!(
                latency + 1 >= floor,
                "{}->{} delivered in {latency} < floor {floor}",
                inj.src,
                inj.dest
            );
            // The age field never loses the delay accumulated before
            // injection (it saturates at 4095).
            assert!(
                final_age >= inj.initial_age.min(4095),
                "age shrank: {} -> {final_age}",
                inj.initial_age
            );
        }
    });
}

#[test]
fn conservation_under_random_drop_faults() {
    use noclat_sim::faults::FaultPlan;
    // Every injected packet either arrives or is reported dropped — never
    // both, never neither — and the network always drains.
    check::cases(12, |rng| {
        let injections = random_injections(rng, 32, 2_000);
        let plan = FaultPlan::uniform_drop(rng.next_u64(), 0.01);
        let cfg = SystemConfig::baseline_32().noc;
        let mut net: Network<usize> = Network::with_faults(Mesh::new(8, 4), cfg, &plan);
        let mut sorted = injections;
        sorted.sort_by_key(|i| i.at);
        let mut outcome: Vec<Option<&'static str>> = vec![None; sorted.len()];
        let mut ids = std::collections::HashMap::new();
        let mut next = 0usize;
        for t in 0..40_000u64 {
            while next < sorted.len() && sorted[next].at <= t {
                let i = &sorted[next];
                let id = net
                    .inject(
                        NodeId(i.src),
                        NodeId(i.dest),
                        if i.response {
                            VNet::Response
                        } else {
                            VNet::Request
                        },
                        if i.high {
                            Priority::High
                        } else {
                            Priority::Normal
                        },
                        if i.response { 5 } else { 1 },
                        i.initial_age,
                        next,
                        t,
                    )
                    .expect("admissible injection");
                ids.insert(id, next);
                next += 1;
            }
            net.tick(t);
            for node in 0..32 {
                for d in net.take_delivered(NodeId(node as u16)) {
                    let idx = ids[&d.meta.id];
                    assert_eq!(outcome[idx], None, "double outcome");
                    outcome[idx] = Some("delivered");
                }
            }
            for (meta, payload) in net.take_dropped() {
                let idx = ids[&meta.id];
                assert_eq!(idx, payload, "payload follows its packet");
                assert_eq!(outcome[idx], None, "double outcome");
                outcome[idx] = Some("dropped");
            }
            if next == sorted.len() && net.packets_in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.packets_in_flight(), 0, "network failed to drain");
        assert!(
            outcome.iter().all(Option::is_some),
            "every packet needs exactly one outcome"
        );
        let dropped = outcome.iter().filter(|o| **o == Some("dropped")).count() as u64;
        assert_eq!(net.stats().packets_dropped.get(), dropped);
    });
}

// ---------------------------------------------------------------------------
// Topology-parametric properties: every fabric the config layer can build is
// checked for route termination (with an exact per-topology hop bound),
// link sanity (no self-loops, neighbor symmetry), and — on the torus — the
// acyclicity of the dateline VC discipline's channel-dependency graph.
// ---------------------------------------------------------------------------

/// A representative instance of every fabric, including odd torus rings and
/// both even and non-dividing-adjacent express skips.
fn all_fabrics() -> Vec<Topology> {
    vec![
        Topology::new(8, 4),
        Topology::new(16, 16),
        Topology::torus(8, 4),
        Topology::torus(5, 5),
        Topology::torus(16, 16),
        Topology::cmesh(8, 4, 2),
        Topology::cmesh(8, 8, 4),
        Topology::cmesh(16, 16, 4),
        Topology::express(8, 8, 2),
        Topology::express(16, 16, 2),
        Topology::express(16, 16, 5),
    ]
}

/// Walks the deterministic route from `src` to `dest`, returning the hop
/// sequence `(router, out_dir)` taken (excluding the final `Local` step).
/// Panics if the walk exceeds an obviously-broken step budget.
fn walk_route(
    topo: &Topology,
    algo: RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
) -> Vec<(NodeId, Dir)> {
    let budget = 2 * (topo.width() + topo.height()) as usize + 4;
    let mut here = topo.router_of(src);
    let mut hops = Vec::new();
    loop {
        let d = topo.route(algo, here, dest);
        if d == Dir::Local {
            return hops;
        }
        assert!(
            hops.len() < budget,
            "{}: route {src}->{dest} did not terminate within {budget} hops",
            topo.config().label(),
        );
        hops.push((here, d));
        here = topo
            .neighbor(here, d)
            .unwrap_or_else(|| panic!("route stepped off the fabric: {here} {d:?}"));
    }
}

#[test]
fn routes_terminate_with_exact_hop_distance() {
    for topo in all_fabrics() {
        let label = topo.config().label();
        for algo in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
            for src in topo.nodes() {
                for dest in topo.nodes() {
                    let hops = walk_route(&topo, algo, src, dest);
                    let last = hops
                        .last()
                        .map_or(topo.router_of(src), |&(r, d)| topo.neighbor(r, d).unwrap());
                    assert_eq!(
                        last,
                        topo.router_of(dest),
                        "{label}: {algo:?} route {src}->{dest} ended at wrong router"
                    );
                    assert_eq!(
                        hops.len() as u32,
                        topo.hop_distance(src, dest),
                        "{label}: {algo:?} route {src}->{dest} hop count != hop_distance"
                    );
                }
            }
        }
    }
}

#[test]
fn no_link_is_a_self_loop() {
    for topo in all_fabrics() {
        for r in topo.routers() {
            for &d in topo.ports() {
                if d == Dir::Local {
                    continue;
                }
                assert_ne!(
                    topo.neighbor(r, d),
                    Some(r),
                    "{}: router {r} port {d:?} loops back to itself",
                    topo.config().label()
                );
            }
        }
    }
}

#[test]
fn neighbor_links_are_symmetric() {
    for topo in all_fabrics() {
        for r in topo.routers() {
            for &d in topo.ports() {
                if d == Dir::Local {
                    continue;
                }
                if let Some(s) = topo.neighbor(r, d) {
                    assert_eq!(
                        topo.neighbor(s, d.opposite()),
                        Some(r),
                        "{}: link {r} -{d:?}-> {s} has no reverse",
                        topo.config().label()
                    );
                }
            }
        }
    }
}

/// The deadlock-freedom argument for torus wraparound: collect the channel
/// dependencies (VC class at one router feeding a VC class at the next) of
/// *every* deterministic route, then check the dependency graph is acyclic.
/// Without datelines, any ring of size ≥ 3 makes this fail.
#[test]
fn torus_dateline_discipline_never_forms_a_cycle() {
    use std::collections::{HashMap, HashSet};
    for topo in [
        Topology::torus(4, 4),
        Topology::torus(5, 3),
        Topology::torus(8, 8),
    ] {
        let label = topo.config().label();
        // Channel = (router, mesh dir, dateline subclass), densely numbered.
        let chan = |r: NodeId, d: Dir, s: u8| -> u32 {
            ((r.index() * 4 + d.index()) * 2 + s as usize) as u32
        };
        // One graph per routing algorithm: a network runs exactly one, so
        // only dependencies of the same algorithm can ever coexist.
        for algo in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
            let mut edges: HashSet<(u32, u32)> = HashSet::new();
            let mut nodes: HashSet<u32> = HashSet::new();
            for src in topo.nodes() {
                for dest in topo.nodes() {
                    let mut prev: Option<u32> = None;
                    for (r, d) in walk_route(&topo, algo, src, dest) {
                        let s = topo
                            .vc_subclass(r, dest, d)
                            .expect("torus mesh dirs are classed");
                        let c = chan(r, d, s);
                        nodes.insert(c);
                        if let Some(p) = prev {
                            edges.insert((p, c));
                        }
                        prev = Some(c);
                    }
                }
            }
            // Kahn's algorithm: a full topological drain proves acyclicity.
            let mut indeg: HashMap<u32, usize> = nodes.iter().map(|&n| (n, 0)).collect();
            let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
            for &(a, b) in &edges {
                *indeg.get_mut(&b).unwrap() += 1;
                adj.entry(a).or_default().push(b);
            }
            let mut queue: Vec<u32> = indeg
                .iter()
                .filter(|&(_, &deg)| deg == 0)
                .map(|(&n, _)| n)
                .collect();
            let mut drained = 0usize;
            while let Some(n) = queue.pop() {
                drained += 1;
                for &m in adj.get(&n).into_iter().flatten() {
                    let deg = indeg.get_mut(&m).unwrap();
                    *deg -= 1;
                    if *deg == 0 {
                        queue.push(m);
                    }
                }
            }
            assert_eq!(
                drained,
                nodes.len(),
                "{label}/{algo:?}: channel dependency graph has a cycle ({drained} of {} channels drain)",
                nodes.len()
            );
        }
    }
}
