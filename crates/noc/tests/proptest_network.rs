//! Property-based tests of the network: under arbitrary admissible traffic,
//! no packet is lost, duplicated, or delivered faster than physics allows,
//! and the age field never decreases along a path.

use noclat_noc::{flits_for_payload, Mesh, Network, NodeId, Priority, VNet};
use noclat_sim::check::{self, pick, range_u64};
use noclat_sim::config::{RouterPipeline, SystemConfig};
use noclat_sim::rng::SimRng;

/// One injected packet description.
#[derive(Debug, Clone)]
struct Inj {
    src: u16,
    dest: u16,
    response: bool,
    high: bool,
    at: u64,
    initial_age: u32,
}

fn random_injections(rng: &mut SimRng, nodes: u16, horizon: u64) -> Vec<Inj> {
    let n = range_u64(rng, 1, 150) as usize;
    (0..n)
        .map(|_| Inj {
            src: rng.below(u64::from(nodes)) as u16,
            dest: rng.below(u64::from(nodes)) as u16,
            response: rng.chance(0.5),
            high: rng.chance(0.5),
            at: rng.below(horizon),
            initial_age: rng.below(500) as u32,
        })
        .collect()
}

fn run_traffic(
    injections: Vec<Inj>,
    pipeline: RouterPipeline,
    bypass: bool,
) -> Vec<(Inj, u64, u32)> {
    let mut cfg = SystemConfig::baseline_32().noc;
    cfg.pipeline = pipeline;
    cfg.bypass_enabled = bypass;
    let mesh = Mesh::new(8, 4);
    let mut net: Network<usize> = Network::new(mesh, cfg);
    let mut sorted = injections;
    sorted.sort_by_key(|i| i.at);
    let mut delivered: Vec<Option<(u64, u32)>> = vec![None; sorted.len()];
    let mut next = 0usize;
    let mut ids = std::collections::HashMap::new();
    let mut t = 0u64;
    while delivered.iter().any(Option::is_none) {
        assert!(t < 400_000, "traffic did not drain (deadlock?)");
        while next < sorted.len() && sorted[next].at <= t {
            let i = &sorted[next];
            let flits = if i.response {
                flits_for_payload(64, cfg.flit_bits)
            } else {
                1
            };
            let id = net
                .inject(
                    NodeId(i.src),
                    NodeId(i.dest),
                    if i.response {
                        VNet::Response
                    } else {
                        VNet::Request
                    },
                    if i.high {
                        Priority::High
                    } else {
                        Priority::Normal
                    },
                    flits,
                    i.initial_age,
                    next,
                    t,
                )
                .expect("admissible injection");
            ids.insert(id, next);
            next += 1;
        }
        net.tick(t);
        for node in 0..32 {
            for d in net.take_delivered(NodeId(node as u16)) {
                let idx = ids[&d.meta.id];
                assert!(delivered[idx].is_none(), "duplicate delivery");
                delivered[idx] = Some((d.delivered_at, d.final_age));
            }
        }
        t += 1;
    }
    sorted
        .into_iter()
        .zip(delivered)
        .map(|(i, d)| {
            let (at, age) = d.expect("all delivered");
            (i, at, age)
        })
        .collect()
}

#[test]
fn conservation_and_physics() {
    check::cases(16, |rng| {
        let injections = random_injections(rng, 32, 3_000);
        let pipeline = pick(rng, &[RouterPipeline::FiveStage, RouterPipeline::TwoStage]);
        let bypass = rng.chance(0.5);
        let mesh = Mesh::new(8, 4);
        let results = run_traffic(injections, pipeline, bypass);
        for (inj, delivered_at, final_age) in results {
            // Physics: a packet cannot beat per-hop pipeline delay.
            let hops = mesh.hop_distance(NodeId(inj.src), NodeId(inj.dest)) as u64;
            let min_residency = match (pipeline, bypass && inj.high) {
                (RouterPipeline::TwoStage, _) | (_, true) => 1,
                (RouterPipeline::FiveStage, false) => 4,
            };
            // hops+1 routers traversed (incl. ejection), link per hop.
            let floor = (hops + 1) * (min_residency + 1);
            let latency = delivered_at - inj.at;
            assert!(
                latency + 1 >= floor,
                "{}->{} delivered in {latency} < floor {floor}",
                inj.src,
                inj.dest
            );
            // The age field never loses the delay accumulated before
            // injection (it saturates at 4095).
            assert!(
                final_age >= inj.initial_age.min(4095),
                "age shrank: {} -> {final_age}",
                inj.initial_age
            );
        }
    });
}

#[test]
fn conservation_under_random_drop_faults() {
    use noclat_sim::faults::FaultPlan;
    // Every injected packet either arrives or is reported dropped — never
    // both, never neither — and the network always drains.
    check::cases(12, |rng| {
        let injections = random_injections(rng, 32, 2_000);
        let plan = FaultPlan::uniform_drop(rng.next_u64(), 0.01);
        let cfg = SystemConfig::baseline_32().noc;
        let mut net: Network<usize> = Network::with_faults(Mesh::new(8, 4), cfg, &plan);
        let mut sorted = injections;
        sorted.sort_by_key(|i| i.at);
        let mut outcome: Vec<Option<&'static str>> = vec![None; sorted.len()];
        let mut ids = std::collections::HashMap::new();
        let mut next = 0usize;
        for t in 0..40_000u64 {
            while next < sorted.len() && sorted[next].at <= t {
                let i = &sorted[next];
                let id = net
                    .inject(
                        NodeId(i.src),
                        NodeId(i.dest),
                        if i.response {
                            VNet::Response
                        } else {
                            VNet::Request
                        },
                        if i.high {
                            Priority::High
                        } else {
                            Priority::Normal
                        },
                        if i.response { 5 } else { 1 },
                        i.initial_age,
                        next,
                        t,
                    )
                    .expect("admissible injection");
                ids.insert(id, next);
                next += 1;
            }
            net.tick(t);
            for node in 0..32 {
                for d in net.take_delivered(NodeId(node as u16)) {
                    let idx = ids[&d.meta.id];
                    assert_eq!(outcome[idx], None, "double outcome");
                    outcome[idx] = Some("delivered");
                }
            }
            for (meta, payload) in net.take_dropped() {
                let idx = ids[&meta.id];
                assert_eq!(idx, payload, "payload follows its packet");
                assert_eq!(outcome[idx], None, "double outcome");
                outcome[idx] = Some("dropped");
            }
            if next == sorted.len() && net.packets_in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.packets_in_flight(), 0, "network failed to drain");
        assert!(
            outcome.iter().all(Option::is_some),
            "every packet needs exactly one outcome"
        );
        let dropped = outcome.iter().filter(|o| **o == Some("dropped")).count() as u64;
        assert_eq!(net.stats().packets_dropped.get(), dropped);
    });
}
