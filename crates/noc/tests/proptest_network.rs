//! Property-based tests of the network: under arbitrary admissible traffic,
//! no packet is lost, duplicated, or delivered faster than physics allows,
//! and the age field never decreases along a path.

use noclat_noc::{flits_for_payload, Mesh, Network, NodeId, Priority, VNet};
use noclat_sim::config::{RouterPipeline, SystemConfig};
use proptest::prelude::*;

/// One injected packet description.
#[derive(Debug, Clone)]
struct Inj {
    src: u16,
    dest: u16,
    response: bool,
    high: bool,
    at: u64,
    initial_age: u32,
}

fn inj_strategy(nodes: u16, horizon: u64) -> impl Strategy<Value = Inj> {
    (
        0..nodes,
        0..nodes,
        any::<bool>(),
        any::<bool>(),
        0..horizon,
        0u32..500,
    )
        .prop_map(|(src, dest, response, high, at, initial_age)| Inj {
            src,
            dest,
            response,
            high,
            at,
            initial_age,
        })
}

fn run_traffic(
    injections: Vec<Inj>,
    pipeline: RouterPipeline,
    bypass: bool,
) -> Vec<(Inj, u64, u32)> {
    let mut cfg = SystemConfig::baseline_32().noc;
    cfg.pipeline = pipeline;
    cfg.bypass_enabled = bypass;
    let mesh = Mesh::new(8, 4);
    let mut net: Network<usize> = Network::new(mesh, cfg);
    let mut sorted = injections;
    sorted.sort_by_key(|i| i.at);
    let mut delivered: Vec<Option<(u64, u32)>> = vec![None; sorted.len()];
    let mut next = 0usize;
    let mut ids = std::collections::HashMap::new();
    let mut t = 0u64;
    while delivered.iter().any(Option::is_none) {
        assert!(t < 400_000, "traffic did not drain (deadlock?)");
        while next < sorted.len() && sorted[next].at <= t {
            let i = &sorted[next];
            let flits = if i.response {
                flits_for_payload(64, cfg.flit_bits)
            } else {
                1
            };
            let id = net.inject(
                NodeId(i.src),
                NodeId(i.dest),
                if i.response { VNet::Response } else { VNet::Request },
                if i.high { Priority::High } else { Priority::Normal },
                flits,
                i.initial_age,
                next,
                t,
            );
            ids.insert(id, next);
            next += 1;
        }
        net.tick(t);
        for node in 0..32 {
            for d in net.take_delivered(NodeId(node as u16)) {
                let idx = ids[&d.meta.id];
                assert!(delivered[idx].is_none(), "duplicate delivery");
                delivered[idx] = Some((d.delivered_at, d.final_age));
            }
        }
        t += 1;
    }
    sorted
        .into_iter()
        .zip(delivered)
        .map(|(i, d)| {
            let (at, age) = d.expect("all delivered");
            (i, at, age)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_and_physics(
        injections in prop::collection::vec(inj_strategy(32, 3_000), 1..150),
        pipeline in prop::sample::select(vec![RouterPipeline::FiveStage, RouterPipeline::TwoStage]),
        bypass in any::<bool>(),
    ) {
        let mesh = Mesh::new(8, 4);
        let results = run_traffic(injections, pipeline, bypass);
        for (inj, delivered_at, final_age) in results {
            // Physics: a packet cannot beat per-hop pipeline delay.
            let hops = mesh.hop_distance(NodeId(inj.src), NodeId(inj.dest)) as u64;
            let min_residency = match (pipeline, bypass && inj.high) {
                (RouterPipeline::TwoStage, _) | (_, true) => 1,
                (RouterPipeline::FiveStage, false) => 4,
            };
            // hops+1 routers traversed (incl. ejection), link per hop.
            let floor = (hops + 1) * (min_residency + 1);
            let latency = delivered_at - inj.at;
            prop_assert!(
                latency + 1 >= floor,
                "{}->{} delivered in {latency} < floor {floor}",
                inj.src, inj.dest
            );
            // The age field never loses the delay accumulated before
            // injection (it saturates at 4095).
            prop_assert!(
                final_age >= inj.initial_age.min(4095),
                "age shrank: {} -> {final_age}",
                inj.initial_age
            );
        }
    }
}
