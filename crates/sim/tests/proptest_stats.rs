//! Property-based tests of the statistics containers against naive
//! reference computations.

use noclat_sim::stats::{Histogram, RunningMean, TimeSeries};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_mean_and_count_match_reference(
        values in prop::collection::vec(0u64..5_000, 1..300),
    ) {
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let mean: f64 = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert!((h.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    #[test]
    fn histogram_cdf_is_monotone_and_normalized(
        values in prop::collection::vec(0u64..5_000, 1..300),
    ) {
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let pts = h.cdf_points();
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
            prop_assert!(w[1].0 > w[0].0);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        let pdf_sum: f64 = h.pdf_points().iter().map(|(_, f)| f).sum();
        prop_assert!((pdf_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_brackets_reference(
        values in prop::collection::vec(0u64..4_000, 1..300),
        p in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx];
        let approx = h.percentile(p);
        // Bin-quantized percentile may differ by at most one bin width.
        prop_assert!(
            approx <= exact && exact < approx + 2 * 25,
            "percentile({p}) = {approx}, exact {exact}"
        );
    }

    #[test]
    fn running_mean_matches_reference(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut m = RunningMean::new();
        for &v in &values {
            m.record(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((m.mean().unwrap() - mean).abs() < 1e-6);
    }

    #[test]
    fn time_series_overall_mean_matches_reference(
        samples in prop::collection::vec((0u64..10_000, 0.0f64..1.0), 1..200),
    ) {
        let mut ts = TimeSeries::new(500);
        for &(t, v) in &samples {
            ts.record(t, v);
        }
        let mean: f64 = samples.iter().map(|&(_, v)| v).sum::<f64>() / samples.len() as f64;
        prop_assert!((ts.overall_mean().unwrap() - mean).abs() < 1e-9);
        prop_assert!(ts.len() <= 21);
    }
}
