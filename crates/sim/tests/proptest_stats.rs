//! Property-based tests of the statistics containers against naive
//! reference computations, driven by the in-tree `check` harness.

use noclat_sim::check::{self, range_f64, range_u64};
use noclat_sim::rng::SimRng;
use noclat_sim::stats::{Histogram, RunningMean, TimeSeries};

fn random_values(rng: &mut SimRng, max: u64) -> Vec<u64> {
    let n = range_u64(rng, 1, 300) as usize;
    (0..n).map(|_| rng.below(max)).collect()
}

#[test]
fn histogram_mean_and_count_match_reference() {
    check::cases(128, |rng| {
        let values = random_values(rng, 5_000);
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let mean: f64 = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert_eq!(h.count(), values.len() as u64);
        assert!((h.mean() - mean).abs() < 1e-9);
        assert_eq!(h.max(), *values.iter().max().unwrap());
    });
}

#[test]
fn histogram_cdf_is_monotone_and_normalized() {
    check::cases(128, |rng| {
        let values = random_values(rng, 5_000);
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let pts = h.cdf_points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        let pdf_sum: f64 = h.pdf_points().iter().map(|(_, f)| f).sum();
        assert!((pdf_sum - 1.0).abs() < 1e-12);
    });
}

#[test]
fn histogram_percentile_brackets_reference() {
    check::cases(128, |rng| {
        let values = random_values(rng, 4_000);
        let p = range_f64(rng, 0.0, 1.0);
        let mut h = Histogram::new(25, 4000);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        let exact = sorted[idx];
        let approx = h.percentile(p);
        // Bin-quantized percentile may differ by at most one bin width.
        assert!(
            approx <= exact && exact < approx + 2 * 25,
            "percentile({p}) = {approx}, exact {exact}"
        );
    });
}

#[test]
fn running_mean_matches_reference() {
    check::cases(128, |rng| {
        let n = range_u64(rng, 1, 200) as usize;
        let values: Vec<f64> = (0..n).map(|_| range_f64(rng, -1e6, 1e6)).collect();
        let mut m = RunningMean::new();
        for &v in &values {
            m.record(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((m.mean().unwrap() - mean).abs() < 1e-6);
    });
}

#[test]
fn histogram_merge_of_arbitrary_shards_equals_unsharded() {
    check::cases(128, |rng| {
        let values = random_values(rng, 5_000);
        let shards = range_u64(rng, 1, 9) as usize;
        // Unsharded reference aggregate.
        let mut whole = Histogram::new(25, 4000);
        for &v in &values {
            whole.record(v);
        }
        // Scatter the samples across shards (arbitrary assignment), then
        // reduce the shards in index order.
        let mut parts = vec![Histogram::new(25, 4000); shards];
        for &v in &values {
            parts[rng.index(shards)].record(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole, "sharded reduction must be exact");
    });
}

#[test]
fn running_mean_merge_of_arbitrary_shards_equals_unsharded() {
    check::cases(128, |rng| {
        let n = range_u64(rng, 1, 200) as usize;
        let values: Vec<f64> = (0..n).map(|_| range_f64(rng, -1e6, 1e6)).collect();
        let shards = range_u64(rng, 1, 9) as usize;
        // Assign contiguous slices to shards so intra-shard addition order
        // matches the unsharded pass; the merged (count, sum) pair is then
        // bit-identical, not merely close.
        let mut bounds: Vec<usize> = (0..shards - 1).map(|_| rng.index(n + 1)).collect();
        bounds.sort_unstable();
        bounds.insert(0, 0);
        bounds.push(n);
        let mut whole = RunningMean::new();
        for &v in &values {
            whole.record(v);
        }
        let mut merged = RunningMean::new();
        for w in bounds.windows(2) {
            let mut shard = RunningMean::new();
            for &v in &values[w[0]..w[1]] {
                shard.record(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.count(), whole.count());
        let (a, b) = (merged.mean().unwrap(), whole.mean().unwrap());
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "merged mean {a} drifted from unsharded {b}"
        );
    });
}

#[test]
fn time_series_merge_of_arbitrary_shards_equals_unsharded() {
    check::cases(128, |rng| {
        let n = range_u64(rng, 1, 200) as usize;
        let samples: Vec<(u64, f64)> = (0..n).map(|_| (rng.below(10_000), rng.unit())).collect();
        let shards = range_u64(rng, 1, 6) as usize;
        let mut whole = TimeSeries::new(500);
        for &(t, v) in &samples {
            whole.record(t, v);
        }
        let mut parts = vec![TimeSeries::new(500); shards];
        for &(t, v) in &samples {
            parts[rng.index(shards)].record(t, v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.len(), whole.len());
        let (am, wm) = (
            merged.overall_mean().unwrap(),
            whole.overall_mean().unwrap(),
        );
        assert!((am - wm).abs() < 1e-9);
        for (a, b) in merged.averages(0.0).iter().zip(whole.averages(0.0)) {
            assert!((a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn time_series_overall_mean_matches_reference() {
    check::cases(128, |rng| {
        let n = range_u64(rng, 1, 200) as usize;
        let samples: Vec<(u64, f64)> = (0..n).map(|_| (rng.below(10_000), rng.unit())).collect();
        let mut ts = TimeSeries::new(500);
        for &(t, v) in &samples {
            ts.record(t, v);
        }
        let mean: f64 = samples.iter().map(|&(_, v)| v).sum::<f64>() / samples.len() as f64;
        assert!((ts.overall_mean().unwrap() - mean).abs() < 1e-9);
        assert!(ts.len() <= 21);
    });
}
