//! Deterministic cycle-driven simulation kernel for the NoC-multicore
//! reproduction of *Addressing End-to-End Memory Access Latency in NoC-Based
//! Multicores* (MICRO 2012).
//!
//! This crate holds the pieces every other crate in the workspace shares:
//!
//! * [`Cycle`] — the global time unit (one core clock cycle),
//! * [`config`] — the full system configuration, with defaults mirroring the
//!   paper's Table 1,
//! * [`rng`] — seeded, splittable random number generation so whole-system
//!   runs are reproducible bit-for-bit,
//! * [`stats`] — counters, histograms, CDF/PDF extraction and windowed time
//!   series used to regenerate the paper's figures,
//! * [`faults`] — deterministic fault injection plans (link drops/delays,
//!   router stalls, DRAM bank faults, controller backpressure),
//! * [`error`] — typed errors ([`error::SimError`]) raised by public APIs
//!   instead of panicking,
//! * [`check`] — a dependency-free seeded property-testing harness,
//! * [`pool`] — a scoped worker pool with deterministic per-job seeding,
//!   panic isolation, per-job deadlines and bounded retry, backing the
//!   parallel sweep harnesses,
//! * [`cancel`] — cooperative cancellation tokens the pool's deadline
//!   supervisor uses to wind down overrunning simulations cleanly,
//! * [`journal`] — the durable, content-addressed run journal behind
//!   `--resume`: append-only, checksummed per record, recoverable after
//!   truncation or tail corruption.
//!
//! # Example
//!
//! ```
//! use noclat_sim::config::SystemConfig;
//!
//! let cfg = SystemConfig::baseline_32();
//! assert_eq!(cfg.topology.num_nodes(), 32);
//! assert_eq!(cfg.mem.num_controllers, 4);
//! ```

pub mod cancel;
pub mod check;
pub mod config;
pub mod error;
pub mod faults;
pub mod journal;
pub mod pool;
pub mod rng;
pub mod stats;

/// Global simulation time, measured in core clock cycles.
///
/// A plain alias (not a newtype) because cycle arithmetic saturates the hot
/// path of every component; the alias keeps call sites readable without
/// unwrap noise. Component-local clock domains convert through
/// [`config::NocConfig::freq_mult`].
pub type Cycle = u64;
