//! Scoped worker pool for fanning independent simulation jobs across cores.
//!
//! The paper's evaluation is a grid of independent simulations (per-workload,
//! per-scheme, per-load cells); this module runs such a grid on `N` worker
//! threads while keeping the results *deterministic*: every job is
//! self-contained, seeded only from `(base_seed, job_index)` via
//! [`job_seed`], and results are returned in job-index order regardless of
//! which worker ran which job or in what order they finished. Running the
//! same grid with 1 worker or 16 therefore produces byte-identical output.
//!
//! A panicking job is isolated: the panic is caught on the worker, converted
//! into [`SimError::JobPanicked`] naming the job, and sibling jobs keep
//! running to completion. The pool never aborts the harness.
//!
//! Built on `std::thread::scope` only — no external thread-pool crates, so
//! the workspace builds offline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::SimError;
use crate::rng::{splitmix64, SimRng};

/// Domain-separation salt for [`job_seed`], so job streams never collide
/// with component streams split from the same master seed.
const JOB_SEED_SALT: u64 = 0x6a6f_625f_7365_6564; // "job_seed"

/// Deterministic per-job seed derived from `(base_seed, job_index)`.
///
/// The derivation is a SplitMix64 finalizer chain (the same construction as
/// [`SimRng::split`]) under a dedicated salt, so:
///
/// * the same `(base_seed, job_index)` always yields the same seed,
///   independent of worker count and scheduling order, and
/// * seeds of neighbouring indices are statistically independent.
#[must_use]
pub fn job_seed(base_seed: u64, job_index: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(job_index ^ JOB_SEED_SALT))
}

/// Deterministic per-job RNG; shorthand for `SimRng::new(job_seed(..))`.
#[must_use]
pub fn job_rng(base_seed: u64, job_index: u64) -> SimRng {
    SimRng::new(job_seed(base_seed, job_index))
}

/// One unit of work for [`run_jobs`]: a label (used in error reports and
/// progress output) plus the closure that produces the job's result.
pub struct Job<T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Job<T> {
    /// Packages a closure as a labelled job.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Self {
        Job {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The job's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("label", &self.label).finish()
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` on up to `workers` threads and returns their results in
/// job-index order.
///
/// * `workers` is clamped to `[1, jobs.len()]`; `workers == 1` runs the grid
///   on one spawned thread (the degenerate serial case used for equivalence
///   checks).
/// * A job that panics yields `Err(SimError::JobPanicked { .. })` in its
///   slot; all other jobs run to completion unaffected.
/// * Result order depends only on the order of `jobs`, never on scheduling.
pub fn run_jobs<T: Send>(workers: usize, jobs: Vec<Job<T>>) -> Vec<Result<T, SimError>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let tasks: Vec<Mutex<Option<Job<T>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<Result<T, SimError>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let label = job.label;
                let run = job.run;
                let outcome =
                    catch_unwind(AssertUnwindSafe(run)).map_err(|payload| SimError::JobPanicked {
                        job: label,
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 8] {
            let jobs: Vec<Job<usize>> = (0..16)
                .map(|i| Job::new(format!("job-{i}"), move || i * i))
                .collect();
            let out: Vec<usize> = run_jobs(workers, jobs)
                .into_iter()
                .map(|r| r.expect("no job panics"))
                .collect();
            assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = |workers: usize| -> Vec<u64> {
            let jobs: Vec<Job<u64>> = (0..10)
                .map(|i| {
                    Job::new(format!("cell-{i}"), move || {
                        let mut rng = job_rng(42, i);
                        (0..100).map(|_| rng.below(1000)).sum()
                    })
                })
                .collect();
            run_jobs(workers, jobs)
                .into_iter()
                .map(|r| r.unwrap())
                .collect()
        };
        let serial = grid(1);
        assert_eq!(serial, grid(4));
        assert_eq!(serial, grid(8));
    }

    #[test]
    fn panicking_job_is_isolated_and_named() {
        let jobs = vec![
            Job::new("healthy-0", || 1u32),
            Job::new("doomed", || panic!("synthetic failure")),
            Job::new("healthy-2", || 3u32),
        ];
        let out = run_jobs(2, jobs);
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        match &out[1] {
            Err(SimError::JobPanicked {
                job,
                index,
                message,
            }) => {
                assert_eq!(job, "doomed");
                assert_eq!(*index, 1);
                assert!(message.contains("synthetic failure"));
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<Result<u8, _>> = run_jobs(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![Job::new("only", || 7u8)];
        let out = run_jobs(64, jobs);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn job_seed_is_stable_and_spread() {
        assert_eq!(job_seed(1, 0), job_seed(1, 0));
        assert_ne!(job_seed(1, 0), job_seed(1, 1));
        assert_ne!(job_seed(1, 0), job_seed(2, 0));
        // Job streams must not collide with component splits of the same seed.
        let mut component = SimRng::new(1).split(0);
        let mut job = job_rng(1, 0);
        let same = (0..64)
            .filter(|_| component.next_u64() == job.next_u64())
            .count();
        assert!(same < 4);
    }
}
