//! Scoped worker pool for fanning independent simulation jobs across cores,
//! with per-job deadlines, bounded retry and quarantine.
//!
//! The paper's evaluation is a grid of independent simulations (per-workload,
//! per-scheme, per-load cells); this module runs such a grid on `N` worker
//! threads while keeping the results *deterministic*: every job is
//! self-contained, seeded only from `(base_seed, job_index)` via
//! [`job_seed`], and results are returned in job-index order regardless of
//! which worker ran which job or in what order they finished. Running the
//! same grid with 1 worker or 16 therefore produces byte-identical output.
//!
//! Failure containment is layered ([`RetryPolicy`]):
//!
//! * a panicking attempt is caught on the worker and never aborts the
//!   harness;
//! * when a wall-clock deadline is set, a supervisor thread fires the
//!   attempt's [`CancelToken`] once the deadline passes — the simulation
//!   loop polls it and winds down cleanly, and any value a cancelled
//!   attempt still returned is discarded as partial;
//! * failed attempts are retried with exponential backoff up to the retry
//!   budget; a cell that keeps failing is *quarantined*: its slot reports a
//!   typed [`SimError::JobPanicked`] / [`SimError::JobTimeout`] naming the
//!   cell, its config hash and the attempt count, while sibling jobs run to
//!   completion unaffected.
//!
//! Timeouts and retries only ever affect the failure path: a successful
//! grid's output never depends on wall-clock behaviour, so determinism
//! guarantees are preserved.
//!
//! Built on `std::thread::scope` only — no external thread-pool crates, so
//! the workspace builds offline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::error::SimError;
use crate::rng::{splitmix64, SimRng};

/// Domain-separation salt for [`job_seed`], so job streams never collide
/// with component streams split from the same master seed.
const JOB_SEED_SALT: u64 = 0x6a6f_625f_7365_6564; // "job_seed"

/// Deterministic per-job seed derived from `(base_seed, job_index)`.
///
/// The derivation is a SplitMix64 finalizer chain (the same construction as
/// [`SimRng::split`]) under a dedicated salt, so:
///
/// * the same `(base_seed, job_index)` always yields the same seed,
///   independent of worker count and scheduling order, and
/// * seeds of neighbouring indices are statistically independent.
#[must_use]
pub fn job_seed(base_seed: u64, job_index: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(job_index ^ JOB_SEED_SALT))
}

/// Deterministic per-job RNG; shorthand for `SimRng::new(job_seed(..))`.
#[must_use]
pub fn job_rng(base_seed: u64, job_index: u64) -> SimRng {
    SimRng::new(job_seed(base_seed, job_index))
}

/// Per-attempt context handed to a job closure: its cancellation token (the
/// same one the deadline supervisor fires) and the 0-based attempt number.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Cancellation token of this attempt. Also installed as the thread's
    /// current token, so simulations built inside the job inherit it.
    pub cancel: CancelToken,
    /// 0 for the first attempt, 1 for the first retry, …
    pub attempt: u32,
}

/// One unit of work for [`run_jobs`]: a label (used in error reports and
/// progress output) plus the closure that produces the job's result.
///
/// The closure is `Fn` (not `FnOnce`) because a timed-out or panicked
/// attempt may be retried; jobs must be re-runnable and — like everything
/// else in the sweep layer — deterministic in their inputs.
pub struct Job<T> {
    label: String,
    config_hash: Option<String>,
    run: Box<dyn Fn(&JobCtx) -> T + Send>,
}

impl<T> Job<T> {
    /// Packages a closure as a labelled job.
    pub fn new(label: impl Into<String>, run: impl Fn() -> T + Send + 'static) -> Self {
        Job {
            label: label.into(),
            config_hash: None,
            run: Box::new(move |_ctx| run()),
        }
    }

    /// Packages a closure that wants its [`JobCtx`] (cancellation-aware
    /// jobs, retry-sensitive test fixtures).
    pub fn with_ctx(label: impl Into<String>, run: impl Fn(&JobCtx) -> T + Send + 'static) -> Self {
        Job {
            label: label.into(),
            config_hash: None,
            run: Box::new(run),
        }
    }

    /// Attaches the cell's content address (journal key); job-level errors
    /// will carry it so a failing configuration can be looked up precisely.
    #[must_use]
    pub fn config_hash(mut self, hash: impl Into<String>) -> Self {
        self.config_hash = Some(hash.into());
        self
    }

    /// The job's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("label", &self.label)
            .field("config_hash", &self.config_hash)
            .finish_non_exhaustive()
    }
}

/// Deadline/retry budget for one grid run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wall-clock deadline per attempt. `None` disables the supervisor.
    pub timeout: Option<Duration>,
    /// Retries after the first failed attempt (0 = fail immediately).
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The backoff sleep before retry number `retry` (0-based), exponential
    /// with a cap.
    #[must_use]
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        (self.backoff * factor).min(self.backoff_cap)
    }
}

/// How one attempt of one job ended.
enum AttemptOutcome<T> {
    Done(T),
    TimedOut,
    Panicked(String),
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `jobs` on up to `workers` threads and returns their results in
/// job-index order (no deadlines, no retries — the historical fast path).
///
/// * `workers` is clamped to `[1, jobs.len()]`; `workers == 1` runs the grid
///   on one spawned thread (the degenerate serial case used for equivalence
///   checks).
/// * A job that panics yields `Err(SimError::JobPanicked { .. })` in its
///   slot; all other jobs run to completion unaffected.
/// * Result order depends only on the order of `jobs`, never on scheduling.
pub fn run_jobs<T: Send>(workers: usize, jobs: Vec<Job<T>>) -> Vec<Result<T, SimError>> {
    run_jobs_supervised(workers, jobs, &RetryPolicy::default(), None)
}

/// Callback observing each job's final outcome as it completes (still on
/// the worker thread). The sweep layer journals successful cells from here
/// so a crash never loses completed work.
pub type ResultObserver<'a, T> = &'a (dyn Fn(usize, &Result<T, SimError>) + Sync);

/// Runs `jobs` under a [`RetryPolicy`]: per-attempt deadlines enforced by a
/// supervisor thread, bounded retry with exponential backoff, quarantine on
/// exhaustion. See [`run_jobs`] for the ordering and isolation contract.
///
/// Classification: an attempt whose cancellation token was fired counts as
/// a *timeout* even if the job also panicked after the deadline (cancelled
/// code is allowed to fail loudly; the cell is reported exactly once, as
/// [`SimError::JobTimeout`]). An attempt that panicked with an unfired
/// token counts as a *panic*. Whichever kind the final attempt was decides
/// the reported error.
pub fn run_jobs_supervised<T: Send>(
    workers: usize,
    jobs: Vec<Job<T>>,
    policy: &RetryPolicy,
    on_result: Option<ResultObserver<'_, T>>,
) -> Vec<Result<T, SimError>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let all_done = AtomicBool::new(false);
    let tasks: Vec<Mutex<Option<Job<T>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<Result<T, SimError>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // One entry per worker: the start instant and token of the attempt it is
    // currently running, for the supervisor to scan.
    let running: Vec<Mutex<Option<(Instant, CancelToken)>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        if let Some(timeout) = policy.timeout {
            let running = &running;
            let all_done = &all_done;
            // Poll often enough that short test deadlines are enforced
            // promptly, but never busier than once a millisecond.
            let poll = (timeout / 20).clamp(Duration::from_millis(1), Duration::from_millis(50));
            scope.spawn(move || {
                while !all_done.load(Ordering::Acquire) {
                    std::thread::sleep(poll);
                    for entry in running {
                        if let Some((start, token)) = &*entry.lock().expect("supervisor table") {
                            if start.elapsed() >= timeout {
                                token.cancel();
                            }
                        }
                    }
                }
            });
        }

        for my_running in running.iter().take(workers) {
            let tasks = &tasks;
            let slots = &slots;
            let next = &next;
            let completed = &completed;
            let all_done = &all_done;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = tasks[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let outcome = run_with_retries(&job, i, policy, my_running);
                if let Some(observer) = on_result {
                    observer(i, &outcome);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                if completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                    all_done.store(true, Ordering::Release);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// One job's attempt loop: run, classify, back off, retry, quarantine.
fn run_with_retries<T>(
    job: &Job<T>,
    index: usize,
    policy: &RetryPolicy,
    running: &Mutex<Option<(Instant, CancelToken)>>,
) -> Result<T, SimError> {
    let mut attempt: u32 = 0;
    loop {
        let outcome = run_one_attempt(job, attempt, running);
        match outcome {
            AttemptOutcome::Done(v) => return Ok(v),
            AttemptOutcome::TimedOut | AttemptOutcome::Panicked(_) if attempt < policy.retries => {
                std::thread::sleep(policy.backoff_for(attempt));
                attempt += 1;
            }
            AttemptOutcome::TimedOut => {
                return Err(SimError::JobTimeout {
                    job: job.label.clone(),
                    index,
                    config_hash: job.config_hash.clone(),
                    timeout_ms: policy
                        .timeout
                        .map_or(0, |t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
                    attempts: attempt + 1,
                });
            }
            AttemptOutcome::Panicked(message) => {
                return Err(SimError::JobPanicked {
                    job: job.label.clone(),
                    index,
                    message,
                    config_hash: job.config_hash.clone(),
                    attempts: attempt + 1,
                });
            }
        }
    }
}

fn run_one_attempt<T>(
    job: &Job<T>,
    attempt: u32,
    running: &Mutex<Option<(Instant, CancelToken)>>,
) -> AttemptOutcome<T> {
    let token = CancelToken::new();
    let ctx = JobCtx {
        cancel: token.clone(),
        attempt,
    };
    *running.lock().expect("supervisor table") = Some((Instant::now(), token.clone()));
    // Install the token as the thread's current one so simulations built
    // inside the job inherit it without explicit plumbing.
    let guard = token.install_current();
    let result = catch_unwind(AssertUnwindSafe(|| (job.run)(&ctx)));
    drop(guard);
    *running.lock().expect("supervisor table") = None;
    // Timeout classification wins over panics: once the supervisor fired
    // the token, the attempt is over-deadline no matter how the cancelled
    // code wound down, and a discarded partial value is never a success.
    let timed_out = token.is_cancelled();
    match (result, timed_out) {
        (Ok(v), false) => AttemptOutcome::Done(v),
        (_, true) => AttemptOutcome::TimedOut,
        (Err(payload), false) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 8] {
            let jobs: Vec<Job<usize>> = (0..16)
                .map(|i| Job::new(format!("job-{i}"), move || i * i))
                .collect();
            let out: Vec<usize> = run_jobs(workers, jobs)
                .into_iter()
                .map(|r| r.expect("no job panics"))
                .collect();
            assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = |workers: usize| -> Vec<u64> {
            let jobs: Vec<Job<u64>> = (0..10)
                .map(|i| {
                    Job::new(format!("cell-{i}"), move || {
                        let mut rng = job_rng(42, i);
                        (0..100).map(|_| rng.below(1000)).sum()
                    })
                })
                .collect();
            run_jobs(workers, jobs)
                .into_iter()
                .map(|r| r.unwrap())
                .collect()
        };
        let serial = grid(1);
        assert_eq!(serial, grid(4));
        assert_eq!(serial, grid(8));
    }

    #[test]
    fn panicking_job_is_isolated_and_named() {
        let jobs = vec![
            Job::new("healthy-0", || 1u32),
            Job::new("doomed", || panic!("synthetic failure")).config_hash("cafe0000cafe0000"),
            Job::new("healthy-2", || 3u32),
        ];
        let out = run_jobs(2, jobs);
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        match &out[1] {
            Err(SimError::JobPanicked {
                job,
                index,
                message,
                config_hash,
                attempts,
            }) => {
                assert_eq!(job, "doomed");
                assert_eq!(*index, 1);
                assert!(message.contains("synthetic failure"));
                assert_eq!(config_hash.as_deref(), Some("cafe0000cafe0000"));
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected JobPanicked, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<Result<u8, _>> = run_jobs(4, Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![Job::new("only", || 7u8)];
        let out = run_jobs(64, jobs);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn job_seed_is_stable_and_spread() {
        assert_eq!(job_seed(1, 0), job_seed(1, 0));
        assert_ne!(job_seed(1, 0), job_seed(1, 1));
        assert_ne!(job_seed(1, 0), job_seed(2, 0));
        // Job streams must not collide with component splits of the same seed.
        let mut component = SimRng::new(1).split(0);
        let mut job = job_rng(1, 0);
        let same = (0..64)
            .filter(|_| component.next_u64() == job.next_u64())
            .count();
        assert!(same < 4);
    }

    /// Busy-waits until the attempt's token fires (a cancellation-aware job
    /// in miniature), then reports whether it was cancelled.
    fn wait_for_cancel(ctx: &JobCtx, limit: Duration) -> bool {
        let start = Instant::now();
        while !ctx.cancel.is_cancelled() {
            if start.elapsed() > limit {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    #[test]
    fn overrunning_job_is_cancelled_and_reported_as_timeout() {
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(30)),
            ..RetryPolicy::default()
        };
        let jobs = vec![
            Job::new("fast", || 1u32),
            Job::with_ctx("slow", |ctx| {
                assert!(
                    wait_for_cancel(ctx, Duration::from_secs(10)),
                    "deadline supervisor never fired"
                );
                0u32 // partial value; must be discarded
            })
            .config_hash("00000000000000aa"),
        ];
        let out = run_jobs_supervised(2, jobs, &policy, None);
        assert_eq!(out[0], Ok(1));
        match &out[1] {
            Err(SimError::JobTimeout {
                job,
                index,
                config_hash,
                timeout_ms,
                attempts,
            }) => {
                assert_eq!(job, "slow");
                assert_eq!(*index, 1);
                assert_eq!(config_hash.as_deref(), Some("00000000000000aa"));
                assert_eq!(*timeout_ms, 30);
                assert_eq!(*attempts, 1);
            }
            other => panic!("expected JobTimeout, got {other:?}"),
        }
    }

    #[test]
    fn attempt_token_is_installed_as_thread_current() {
        let jobs = vec![Job::with_ctx("inherit", |ctx| {
            let current = CancelToken::current().expect("worker installs a current token");
            current.same_token(&ctx.cancel)
        })];
        let out = run_jobs(1, jobs);
        assert_eq!(out[0], Ok(true));
        // And it is uninstalled once the pool is done with this thread.
        assert!(CancelToken::current().is_none());
    }

    #[test]
    fn flaky_job_succeeds_after_retry() {
        let policy = RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let jobs = vec![Job::with_ctx("flaky", |ctx| {
            assert!(ctx.attempt < 3, "retry budget is bounded");
            if ctx.attempt < 2 {
                panic!("transient failure on attempt {}", ctx.attempt);
            }
            ctx.attempt
        })];
        let out = run_jobs_supervised(1, jobs, &policy, None);
        assert_eq!(out[0], Ok(2), "third attempt (index 2) succeeds");
    }

    #[test]
    fn exhausted_retries_quarantine_with_attempt_count() {
        let policy = RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let jobs: Vec<Job<u8>> = vec![Job::new("poisoned", || panic!("always fails"))];
        let out = run_jobs_supervised(1, jobs, &policy, None);
        match &out[0] {
            Err(SimError::JobPanicked { attempts, .. }) => assert_eq!(*attempts, 3),
            other => panic!("expected JobPanicked, got {other:?}"),
        }
    }

    #[test]
    fn panic_after_deadline_is_reported_once_as_timeout() {
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(25)),
            ..RetryPolicy::default()
        };
        let jobs = vec![
            Job::with_ctx("doomed-slow", |ctx| -> u32 {
                assert!(
                    wait_for_cancel(ctx, Duration::from_secs(10)),
                    "deadline supervisor never fired"
                );
                panic!("cancelled code failing loudly")
            }),
            Job::new("sibling", || 9u32),
        ];
        let out = run_jobs_supervised(2, jobs, &policy, None);
        // Exactly one error for the doomed cell, classified as a timeout
        // (the panic happened after the deadline fired), sibling untouched.
        let errors: Vec<_> = out.iter().filter(|r| r.is_err()).collect();
        assert_eq!(errors.len(), 1, "one failure reported, not two");
        assert!(matches!(
            out[0],
            Err(SimError::JobTimeout { attempts: 1, .. })
        ));
        assert_eq!(out[1], Ok(9));
    }

    #[test]
    fn timed_out_job_retries_and_can_succeed() {
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(30)),
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let jobs = vec![Job::with_ctx("slow-once", |ctx| {
            if ctx.attempt == 0 {
                assert!(
                    wait_for_cancel(ctx, Duration::from_secs(10)),
                    "deadline supervisor never fired"
                );
            }
            ctx.attempt
        })];
        let out = run_jobs_supervised(1, jobs, &policy, None);
        assert_eq!(out[0], Ok(1), "second attempt beats the deadline");
    }

    #[test]
    fn observer_sees_every_result_as_it_completes() {
        let seen = Mutex::new(Vec::new());
        let jobs: Vec<Job<usize>> = (0..6)
            .map(|i| Job::new(format!("cell-{i}"), move || i))
            .collect();
        let observer = |i: usize, r: &Result<usize, SimError>| {
            seen.lock().unwrap().push((i, r.clone()));
        };
        let out = run_jobs_supervised(3, jobs, &RetryPolicy::default(), Some(&observer));
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_by_key(|(i, _)| *i);
        assert_eq!(seen.len(), 6);
        for (i, r) in seen {
            assert_eq!(r, out[i]);
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(350),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(100));
        assert_eq!(p.backoff_for(1), Duration::from_millis(200));
        assert_eq!(p.backoff_for(2), Duration::from_millis(350));
        assert_eq!(p.backoff_for(31), Duration::from_millis(350));
    }
}
