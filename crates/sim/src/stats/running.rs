//! Running aggregates: counters, running means, exponential averages.

/// A simple event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Merges another counter into this one (shard reduction).
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// Running arithmetic mean over all recorded samples.
///
/// Scheme-1's per-application `Delay_avg` ("the average delay of the off-chip
/// memory accesses that belong to that application", Section 3.1) is tracked
/// with this type: the paper updates the average every time a response
/// message returns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    count: u64,
    sum: f64,
}

impl RunningMean {
    /// Creates an empty mean.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running sum (the other half of the `(count, sum)` state; the
    /// sweep journal serializes both to restore the mean bit-for-bit).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Reconstructs a running mean from its `(count, sum)` state.
    #[must_use]
    pub fn from_parts(count: u64, sum: f64) -> Self {
        RunningMean { count, sum }
    }

    /// Current mean, or `fallback` when no samples have been recorded.
    #[must_use]
    pub fn mean_or(&self, fallback: f64) -> f64 {
        if self.count == 0 {
            fallback
        } else {
            self.sum / self.count as f64
        }
    }

    /// Current mean; `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Merges another running mean into this one.
    ///
    /// Because the mean is kept as `(count, sum)`, merging shards in any
    /// grouping yields exactly the aggregate a single unsharded pass over
    /// the same samples would produce (floating-point addition is performed
    /// in shard-index order by the sweep reducers, so the result is also
    /// bit-stable).
    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Exponentially weighted moving average, for phase-adaptive averages.
///
/// `alpha` is the weight of each new sample (`0 < alpha <= 1`). The first
/// sample initializes the average directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with the given new-sample weight.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current average; `None` before the first sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `fallback` before the first sample.
    #[must_use]
    pub fn value_or(&self, fallback: f64) -> f64 {
        self.value.unwrap_or(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_merge_adds() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        a.merge(&b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn running_mean_merge_equals_unsharded() {
        let samples = [1.0, 2.5, 3.25, 10.0, 0.5];
        let mut whole = RunningMean::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = RunningMean::new();
        let mut right = RunningMean::new();
        for &s in &samples[..2] {
            left.record(s);
        }
        for &s in &samples[2..] {
            right.record(s);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or(7.0), 7.0);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), Some(3.0));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn running_mean_parts_roundtrip_is_exact() {
        let mut m = RunningMean::new();
        m.record(1.5);
        m.record(2.25);
        assert_eq!(RunningMean::from_parts(m.count(), m.sum()), m);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.record(0.0);
        for _ in 0..32 {
            e.record(10.0);
        }
        assert!((e.value_or(0.0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        e.record(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
