//! Interval-sampled time series (e.g. bank idleness over execution,
//! Figure 14).

/// A time series of per-interval averages.
///
/// Samples recorded within the same fixed-length interval are averaged; the
/// series exposes one value per elapsed interval. Intervals with no samples
/// report the neutral value supplied at query time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    interval: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given interval length (in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        TimeSeries {
            interval,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records `value` at absolute time `now`.
    pub fn record(&mut self, now: u64, value: f64) {
        let idx = (now / self.interval) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Interval length in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of intervals touched so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Per-interval averages; empty intervals yield `neutral`.
    #[must_use]
    pub fn averages(&self, neutral: f64) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { neutral } else { s / c as f64 })
            .collect()
    }

    /// Mean over all samples (not per-interval); `None` when empty.
    #[must_use]
    pub fn overall_mean(&self) -> Option<f64> {
        let n: u64 = self.counts.iter().sum();
        (n > 0).then(|| self.sums.iter().sum::<f64>() / n as f64)
    }

    /// Merges another series into this one (shard reduction): per-interval
    /// sums and sample counts add, so the merged per-interval averages equal
    /// those of a single pass over the union of samples.
    ///
    /// # Panics
    ///
    /// Panics if the interval lengths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.interval, other.interval, "interval mismatch");
        if other.sums.len() > self.sums.len() {
            self.sums.resize(other.sums.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_within_intervals() {
        let mut ts = TimeSeries::new(100);
        ts.record(10, 1.0);
        ts.record(20, 3.0);
        ts.record(150, 5.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.averages(0.0), vec![2.0, 5.0]);
    }

    #[test]
    fn empty_intervals_use_neutral() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, 1.0);
        ts.record(25, 2.0);
        assert_eq!(ts.averages(-1.0), vec![1.0, -1.0, 2.0]);
    }

    #[test]
    fn overall_mean_spans_intervals() {
        let mut ts = TimeSeries::new(10);
        assert_eq!(ts.overall_mean(), None);
        ts.record(0, 2.0);
        ts.record(100, 4.0);
        assert_eq!(ts.overall_mean(), Some(3.0));
    }

    #[test]
    fn merge_equals_unsharded() {
        let mut whole = TimeSeries::new(10);
        let mut a = TimeSeries::new(10);
        let mut b = TimeSeries::new(10);
        for (t, v) in [(0, 1.0), (5, 3.0), (25, 2.0), (40, 8.0)] {
            whole.record(t, v);
            if t < 20 {
                a.record(t, v);
            } else {
                b.record(t, v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging the shorter shard into the longer one works too.
        let mut c = TimeSeries::new(10);
        c.record(40, 8.0);
        let mut d = TimeSeries::new(10);
        d.record(0, 1.0);
        d.record(5, 3.0);
        d.record(25, 2.0);
        c.merge(&d);
        assert_eq!(c, whole);
    }

    #[test]
    #[should_panic(expected = "interval mismatch")]
    fn merge_rejects_mismatched_intervals() {
        let mut a = TimeSeries::new(10);
        let b = TimeSeries::new(20);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimeSeries::new(0);
    }
}
