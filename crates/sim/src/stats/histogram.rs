//! Fixed-bin-width histogram with CDF/PDF extraction.

/// A histogram over non-negative values with uniform bin width.
///
/// Values beyond the configured range accumulate in a final overflow bin, so
/// no sample is ever dropped. Latency distributions in the paper (Figures 5,
/// 9, 12) are plotted straight from this container.
///
/// # Example
///
/// ```
/// use noclat_sim::stats::Histogram;
///
/// let mut h = Histogram::new(25, 2000);
/// for v in [100, 110, 120, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!((h.mean() - 282.5).abs() < 1e-9);
/// assert_eq!(h.percentile(0.75), 100); // bin-quantized (25-cycle bins)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given bin width covering `[0, range)`;
    /// values ≥ `range` land in an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `range < bin_width`.
    #[must_use]
    pub fn new(bin_width: u64, range: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(range >= bin_width, "range must cover at least one bin");
        let n_bins = (range / bin_width) as usize + 1; // +1 overflow
        Histogram {
            bin_width,
            bins: vec![0; n_bins],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bin_width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the recorded samples (not bin-quantized).
    /// Returns 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Configured bin width.
    #[must_use]
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// The smallest bin lower-edge `x` such that at least fraction `p` of
    /// samples are `< x + bin_width` (bin-quantized percentile).
    ///
    /// Returns 0 when empty. `p` is clamped to `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = (p * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i as u64 * self.bin_width;
            }
        }
        (self.bins.len() as u64 - 1) * self.bin_width
    }

    /// Fraction of samples strictly below `x` (`F(x)` of the empirical CDF,
    /// bin-quantized). Returns 0.0 when empty.
    #[must_use]
    pub fn cdf_at(&self, x: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let full_bins = ((x / self.bin_width) as usize).min(self.bins.len());
        let below: u64 = self.bins[..full_bins].iter().sum();
        below as f64 / self.count as f64
    }

    /// CDF sampled at every bin edge: `(edge, F(edge))` pairs covering the
    /// recorded range.
    #[must_use]
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::with_capacity(self.bins.len());
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            let edge = (i as u64 + 1) * self.bin_width;
            let frac = if self.count == 0 {
                0.0
            } else {
                acc as f64 / self.count as f64
            };
            points.push((edge, frac));
            if acc == self.count {
                break;
            }
        }
        points
    }

    /// PDF as per-bin fractions: `(bin_center, fraction)` pairs, including
    /// empty interior bins up to the last occupied one.
    #[must_use]
    pub fn pdf_points(&self) -> Vec<(u64, f64)> {
        let last = self.bins.iter().rposition(|&c| c > 0).unwrap_or(0);
        (0..=last)
            .map(|i| {
                let center = i as u64 * self.bin_width + self.bin_width / 2;
                let frac = if self.count == 0 {
                    0.0
                } else {
                    self.bins[i] as f64 / self.count as f64
                };
                (center, frac)
            })
            .collect()
    }

    /// Fraction of samples in `[lo, hi)` (bin-quantized; `lo`/`hi` are
    /// rounded down to bin edges).
    #[must_use]
    pub fn fraction_between(&self, lo: u64, hi: u64) -> f64 {
        if self.count == 0 || hi <= lo {
            return 0.0;
        }
        let lo_bin = ((lo / self.bin_width) as usize).min(self.bins.len());
        let hi_bin = ((hi / self.bin_width) as usize).min(self.bins.len());
        let n: u64 = self.bins[lo_bin..hi_bin].iter().sum();
        n as f64 / self.count as f64
    }

    /// Five-number summary of the recorded samples.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            max: self.max,
        }
    }

    /// Raw per-bin counts (including the trailing overflow bin). Together
    /// with [`Histogram::from_raw_parts`] this forms the lossless
    /// serialization surface the sweep journal uses.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Reconstructs a histogram from its raw parts (inverse of reading
    /// `bin_width`/`bins`/`count`/`sum`/`max` back). The journal decoder
    /// uses this to restore a checkpointed distribution bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `bins` is empty.
    #[must_use]
    pub fn from_raw_parts(bin_width: u64, bins: Vec<u64>, count: u64, sum: u64, max: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        Histogram {
            bin_width,
            bins,
            count,
            sum,
            max,
        }
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A compact distribution summary, as printed by the harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bin-quantized).
    pub p50: u64,
    /// 90th percentile (bin-quantized).
    pub p90: u64,
    /// 99th percentile (bin-quantized).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_accessors() {
        let mut h = Histogram::new(10, 1000);
        for v in [5, 15, 25, 500] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 500);
        assert_eq!(s.p99, h.percentile(0.99));
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new(10, 100);
        for v in [5, 15, 15, 95, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 250);
        assert!((h.mean() - 76.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_bin_catches_outliers() {
        let mut h = Histogram::new(10, 100);
        h.record(1_000_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new(5, 500);
        for v in 0..100 {
            h.record(v * 3);
        }
        let mut prev = 0;
        for i in 0..=10 {
            let p = h.percentile(i as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = Histogram::new(25, 1000);
        for v in [10, 200, 480, 999] {
            h.record(v);
        }
        let pts = h.cdf_points();
        let (_, last) = *pts.last().unwrap();
        assert!((last - 1.0).abs() < 1e-12);
        assert!(h.cdf_at(0) < 1e-12);
        assert!((h.cdf_at(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut h = Histogram::new(25, 1000);
        for v in [10, 200, 200, 480, 999, 1500] {
            h.record(v);
        }
        let pts = h.cdf_points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn pdf_fractions_sum_to_one() {
        let mut h = Histogram::new(25, 1000);
        for v in [10, 200, 480, 999] {
            h.record(v);
        }
        let total: f64 = h.pdf_points().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_between_bins() {
        let mut h = Histogram::new(10, 100);
        for v in [5, 15, 25, 35] {
            h.record(v);
        }
        assert!((h.fraction_between(10, 30) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_between(30, 30), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(10, 100);
        let mut b = Histogram::new(10, 100);
        a.record(5);
        b.record(95);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 95);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatched_widths() {
        let mut a = Histogram::new(10, 100);
        let b = Histogram::new(20, 100);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = Histogram::new(0, 100);
    }

    #[test]
    fn raw_parts_roundtrip_is_exact() {
        let mut h = Histogram::new(25, 1000);
        for v in [10, 200, 480, 5000] {
            h.record(v);
        }
        let r = Histogram::from_raw_parts(
            h.bin_width(),
            h.bins().to_vec(),
            h.count(),
            h.sum(),
            h.max(),
        );
        assert_eq!(r, h);
    }
}
