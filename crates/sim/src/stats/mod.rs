//! Statistics containers used to regenerate the paper's figures.
//!
//! * [`Histogram`] — fixed-bin-width latency histograms, with CDF/PDF
//!   extraction (Figures 5, 9, 12),
//! * [`RunningMean`] / [`Ewma`] — dynamic averages (the per-application
//!   `Delay_avg` of Scheme-1),
//! * [`TimeSeries`] — interval-sampled values (bank idleness over time,
//!   Figure 14),
//! * [`Counter`] — simple saturating event counter.

mod histogram;
mod running;
mod series;

pub use histogram::{Histogram, Summary};
pub use running::{Counter, Ewma, RunningMean};
pub use series::TimeSeries;

/// Mean of a slice; `None` when empty.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of a slice of positive values; `None` when empty or when
/// any value is non-positive. Used for aggregate speedups.
#[must_use]
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        None
    } else {
        let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
        Some((log_sum / values.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn geomean_of_slice() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }
}
