//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes, per run, which parts of the machine misbehave
//! and when: mesh links drop or delay flits, routers stall their arbitration
//! pipelines, DRAM banks slow down or go offline, and memory-controller
//! ingress pipelines exert backpressure. Every stochastic decision derives
//! from the plan's own seed through [`SimRng`](crate::rng::SimRng), so a
//! fault scenario replays bit-for-bit from `(config, plan)` alone.
//!
//! The plan is pure data; components own small *state* evaluators
//! ([`LinkFaultState`], [`RouterStallState`], [`ControllerFaultState`]) built
//! from it, which they consult on their hot paths. With an empty plan every
//! evaluator short-circuits, so the fault machinery costs nothing when
//! disabled.

use crate::error::FaultError;
use crate::rng::SimRng;
use crate::Cycle;

/// A half-open window of cycles `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleWindow {
    /// First cycle the fault is active.
    pub start: Cycle,
    /// First cycle the fault is no longer active.
    pub end: Cycle,
}

impl CycleWindow {
    /// A window covering every cycle of a run.
    pub const ALWAYS: CycleWindow = CycleWindow {
        start: 0,
        end: Cycle::MAX,
    };

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: Cycle) -> bool {
        self.start <= now && now < self.end
    }

    /// Validates that the window is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyWindow`] when `end <= start`.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.end <= self.start {
            return Err(FaultError::EmptyWindow {
                start: self.start,
                end: self.end,
            });
        }
        Ok(())
    }
}

/// A link-level fault: flits leaving matching routers are dropped with a
/// probability and/or delayed by extra cycles while the window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Router whose *outgoing* mesh links are affected; `None` = every
    /// router.
    pub node: Option<usize>,
    /// Per-flit drop probability while active (head-flit drops doom the
    /// whole packet, preserving wormhole integrity).
    pub drop_prob: f64,
    /// Extra link traversal delay in cycles while active.
    pub extra_delay: Cycle,
    /// When the fault is active.
    pub window: CycleWindow,
}

/// A router stall: the router skips VA/SA arbitration entirely while the
/// window is active (flits still arrive and buffer at wire speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStall {
    /// Stalled router.
    pub node: usize,
    /// When the stall is active.
    pub window: CycleWindow,
}

/// What a faulty DRAM bank does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankFaultKind {
    /// The bank accepts no commands (requests queue up and wait).
    Offline,
    /// Every access occupies the bank `multiplier`× as long.
    Slowdown(u32),
}

/// A DRAM bank fault on one controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankFault {
    /// Controller index.
    pub controller: usize,
    /// Bank behind that controller; `None` = all of its banks.
    pub bank: Option<usize>,
    /// Offline or slowdown.
    pub kind: BankFaultKind,
    /// When the fault is active.
    pub window: CycleWindow,
}

/// Memory-controller ingress backpressure: the front-end pipeline stops
/// draining while active, so arriving requests accumulate ahead of the bank
/// queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStall {
    /// Controller index.
    pub controller: usize,
    /// When the backpressure is active.
    pub window: CycleWindow,
}

/// A complete, deterministic fault scenario for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every stochastic fault decision (independent of the system
    /// seed, so traffic and faults can be varied separately).
    pub seed: u64,
    /// Link drop/delay faults.
    pub links: Vec<LinkFault>,
    /// Router arbitration stalls.
    pub router_stalls: Vec<RouterStall>,
    /// DRAM bank faults.
    pub banks: Vec<BankFault>,
    /// Controller ingress backpressure windows.
    pub ingress: Vec<IngressStall>,
}

impl FaultPlan {
    /// The empty plan: no faults.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.router_stalls.is_empty()
            && self.banks.is_empty()
            && self.ingress.is_empty()
    }

    /// Convenience: drop every flit on every link with probability `p` for
    /// the whole run.
    #[must_use]
    pub fn uniform_drop(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            links: vec![LinkFault {
                node: None,
                drop_prob: p,
                extra_delay: 0,
                window: CycleWindow::ALWAYS,
            }],
            ..FaultPlan::default()
        }
    }

    /// Validates every entry of the plan.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found.
    pub fn validate(&self) -> Result<(), FaultError> {
        for l in &self.links {
            if !(0.0..=1.0).contains(&l.drop_prob) || l.drop_prob.is_nan() {
                return Err(FaultError::BadProbability(l.drop_prob));
            }
            l.window.validate()?;
        }
        for s in &self.router_stalls {
            s.window.validate()?;
        }
        for b in &self.banks {
            if let BankFaultKind::Slowdown(m) = b.kind {
                if m < 1 {
                    return Err(FaultError::BadSlowdown(m));
                }
            }
            b.window.validate()?;
        }
        for i in &self.ingress {
            i.window.validate()?;
        }
        Ok(())
    }
}

/// Per-network runtime state for link faults.
///
/// Owned by the network; consulted once per flit leaving a router onto a
/// mesh link. The RNG stream is split from the plan seed so link decisions
/// never perturb workload or traffic randomness.
#[derive(Debug, Clone)]
pub struct LinkFaultState {
    faults: Vec<LinkFault>,
    rng: SimRng,
    drops: u64,
    delays: u64,
}

/// What a link does to one flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Deliver normally.
    Deliver,
    /// Deliver after this many extra cycles.
    Delay(Cycle),
    /// The flit is lost.
    Drop,
}

impl LinkFaultState {
    /// Builds the state from a plan (only link faults are retained).
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        LinkFaultState {
            faults: plan.links.clone(),
            rng: SimRng::new(plan.seed).split(0x11),
            drops: 0,
            delays: 0,
        }
    }

    /// Whether any link fault exists at all (fast path guard).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Decides the fate of a flit leaving `node` at `now`.
    pub fn outcome(&mut self, node: usize, now: Cycle) -> LinkOutcome {
        let mut delay: Cycle = 0;
        for f in &self.faults {
            if !f.window.contains(now) || f.node.is_some_and(|n| n != node) {
                continue;
            }
            if f.drop_prob > 0.0 && self.rng.chance(f.drop_prob) {
                self.drops += 1;
                return LinkOutcome::Drop;
            }
            delay += f.extra_delay;
        }
        if delay > 0 {
            self.delays += 1;
            LinkOutcome::Delay(delay)
        } else {
            LinkOutcome::Deliver
        }
    }

    /// Flits dropped so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Flits delayed so far.
    #[must_use]
    pub fn delays(&self) -> u64 {
        self.delays
    }
}

/// Per-network runtime state for router stalls.
#[derive(Debug, Clone, Default)]
pub struct RouterStallState {
    stalls: Vec<RouterStall>,
}

impl RouterStallState {
    /// Builds the state from a plan (only router stalls are retained).
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        RouterStallState {
            stalls: plan.router_stalls.clone(),
        }
    }

    /// Whether any stall exists at all (fast path guard).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.stalls.is_empty()
    }

    /// Whether router `node` skips arbitration at `now`.
    #[must_use]
    pub fn stalled(&self, node: usize, now: Cycle) -> bool {
        self.stalls
            .iter()
            .any(|s| s.node == node && s.window.contains(now))
    }
}

/// Per-controller runtime state for DRAM bank faults and ingress stalls.
#[derive(Debug, Clone, Default)]
pub struct ControllerFaultState {
    banks: Vec<BankFault>,
    ingress: Vec<IngressStall>,
}

impl ControllerFaultState {
    /// Builds the state for controller `controller` from a plan.
    #[must_use]
    pub fn new(plan: &FaultPlan, controller: usize) -> Self {
        ControllerFaultState {
            banks: plan
                .banks
                .iter()
                .copied()
                .filter(|b| b.controller == controller)
                .collect(),
            ingress: plan
                .ingress
                .iter()
                .copied()
                .filter(|i| i.controller == controller)
                .collect(),
        }
    }

    /// Whether any fault exists for this controller (fast path guard).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.banks.is_empty() || !self.ingress.is_empty()
    }

    /// Whether `bank` refuses commands at `now`.
    #[must_use]
    pub fn bank_offline(&self, bank: usize, now: Cycle) -> bool {
        self.banks.iter().any(|b| {
            b.kind == BankFaultKind::Offline
                && b.bank.is_none_or(|x| x == bank)
                && b.window.contains(now)
        })
    }

    /// Access-time multiplier of `bank` at `now` (1 = healthy).
    #[must_use]
    pub fn bank_slowdown(&self, bank: usize, now: Cycle) -> u32 {
        self.banks
            .iter()
            .filter(|b| b.bank.is_none_or(|x| x == bank) && b.window.contains(now))
            .filter_map(|b| match b.kind {
                BankFaultKind::Slowdown(m) => Some(m),
                BankFaultKind::Offline => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// Whether the controller's ingress pipeline is stalled at `now`.
    #[must_use]
    pub fn ingress_stalled(&self, now: Cycle) -> bool {
        self.ingress.iter().any(|i| i.window.contains(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_contain_and_validate() {
        let w = CycleWindow { start: 10, end: 20 };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(w.validate().is_ok());
        assert!(CycleWindow { start: 5, end: 5 }.validate().is_err());
        assert!(CycleWindow::ALWAYS.contains(u64::MAX - 1));
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.validate().is_ok());
        assert!(!LinkFaultState::new(&p).is_active());
        assert!(!RouterStallState::new(&p).is_active());
        assert!(!ControllerFaultState::new(&p, 0).is_active());
    }

    #[test]
    fn validation_catches_bad_entries() {
        let mut p = FaultPlan::uniform_drop(1, 1.5);
        assert!(matches!(
            p.validate(),
            Err(FaultError::BadProbability(x)) if x > 1.0
        ));
        p = FaultPlan::none();
        p.banks.push(BankFault {
            controller: 0,
            bank: None,
            kind: BankFaultKind::Slowdown(0),
            window: CycleWindow::ALWAYS,
        });
        assert_eq!(p.validate(), Err(FaultError::BadSlowdown(0)));
        p = FaultPlan::none();
        p.router_stalls.push(RouterStall {
            node: 3,
            window: CycleWindow { start: 9, end: 9 },
        });
        assert!(matches!(p.validate(), Err(FaultError::EmptyWindow { .. })));
    }

    #[test]
    fn link_drops_are_deterministic_and_calibrated() {
        let plan = FaultPlan::uniform_drop(42, 0.25);
        let run = || {
            let mut s = LinkFaultState::new(&plan);
            (0..10_000)
                .map(|t| u64::from(s.outcome(3, t) == LinkOutcome::Drop))
                .sum::<u64>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan must replay identically");
        assert!((2000..3000).contains(&a), "drop rate off: {a}/10000");
    }

    #[test]
    fn link_faults_respect_node_and_window() {
        let mut plan = FaultPlan::none();
        plan.links.push(LinkFault {
            node: Some(5),
            drop_prob: 1.0,
            extra_delay: 0,
            window: CycleWindow {
                start: 100,
                end: 200,
            },
        });
        let mut s = LinkFaultState::new(&plan);
        assert_eq!(s.outcome(5, 50), LinkOutcome::Deliver);
        assert_eq!(s.outcome(4, 150), LinkOutcome::Deliver);
        assert_eq!(s.outcome(5, 150), LinkOutcome::Drop);
        assert_eq!(s.outcome(5, 200), LinkOutcome::Deliver);
        assert_eq!(s.drops(), 1);
    }

    #[test]
    fn link_delay_accumulates_across_matching_faults() {
        let mut plan = FaultPlan::none();
        for _ in 0..2 {
            plan.links.push(LinkFault {
                node: None,
                drop_prob: 0.0,
                extra_delay: 3,
                window: CycleWindow::ALWAYS,
            });
        }
        let mut s = LinkFaultState::new(&plan);
        assert_eq!(s.outcome(0, 0), LinkOutcome::Delay(6));
        assert_eq!(s.delays(), 1);
    }

    #[test]
    fn router_stalls_match_node_and_window() {
        let mut plan = FaultPlan::none();
        plan.router_stalls.push(RouterStall {
            node: 7,
            window: CycleWindow { start: 10, end: 30 },
        });
        let s = RouterStallState::new(&plan);
        assert!(s.stalled(7, 15));
        assert!(!s.stalled(7, 30));
        assert!(!s.stalled(6, 15));
    }

    #[test]
    fn controller_faults_filter_by_controller() {
        let mut plan = FaultPlan::none();
        plan.banks.push(BankFault {
            controller: 1,
            bank: Some(2),
            kind: BankFaultKind::Offline,
            window: CycleWindow::ALWAYS,
        });
        plan.banks.push(BankFault {
            controller: 1,
            bank: None,
            kind: BankFaultKind::Slowdown(4),
            window: CycleWindow { start: 0, end: 100 },
        });
        plan.ingress.push(IngressStall {
            controller: 0,
            window: CycleWindow { start: 0, end: 50 },
        });
        let c0 = ControllerFaultState::new(&plan, 0);
        let c1 = ControllerFaultState::new(&plan, 1);
        assert!(c0.ingress_stalled(10));
        assert!(!c0.ingress_stalled(50));
        assert!(!c0.bank_offline(2, 10));
        assert!(c1.bank_offline(2, 10));
        assert!(!c1.bank_offline(3, 10));
        assert_eq!(c1.bank_slowdown(3, 10), 4);
        assert_eq!(c1.bank_slowdown(3, 100), 1);
        assert_eq!(c0.bank_slowdown(3, 10), 1);
    }
}
