//! Typed errors for the simulation stack's public API surface.
//!
//! Panic paths reachable through public APIs (bad node indices, zero-flit
//! packets, misconfigured clocks, out-of-range banks) surface as
//! [`SimError`] values instead of aborting the process; `debug_assert!`s on
//! hot inner loops remain assertions because they guard internal invariants
//! the library itself must uphold.

use crate::config::ConfigError;
use crate::Cycle;

/// An error raised by a public simulator API.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A node index fell outside the mesh.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// A packet must carry at least one flit.
    ZeroFlitPacket,
    /// A router clock period must be positive.
    ZeroClockPeriod,
    /// A DRAM bank index fell outside the controller.
    BankOutOfRange {
        /// Offending bank index.
        bank: usize,
        /// Banks behind this controller.
        banks: usize,
    },
    /// The stream count handed to a system builder does not match the core
    /// count of the configured mesh.
    StreamCountMismatch {
        /// Streams provided.
        streams: usize,
        /// Cores configured.
        cores: usize,
    },
    /// A simulation was built without a workload: neither applications nor
    /// instruction streams were attached to the builder.
    MissingWorkload,
    /// A fault-plan entry is inconsistent (empty window, bad probability…).
    Fault(FaultError),
    /// A sweep job panicked on a worker thread; the pool isolated it and
    /// reports the failing configuration instead of aborting the harness.
    JobPanicked {
        /// Label of the failing job (the configuration it was running).
        job: String,
        /// Index of the job within its grid.
        index: usize,
        /// The panic message, when one was attached.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} outside the {nodes}-node mesh")
            }
            SimError::ZeroFlitPacket => write!(f, "packet must carry at least one flit"),
            SimError::ZeroClockPeriod => write!(f, "router clock period must be positive"),
            SimError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} outside the {banks}-bank controller")
            }
            SimError::StreamCountMismatch { streams, cores } => {
                write!(f, "{streams} instruction streams for {cores} cores")
            }
            SimError::MissingWorkload => {
                write!(
                    f,
                    "simulation built without a workload (attach applications or streams)"
                )
            }
            SimError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            SimError::JobPanicked {
                job,
                index,
                message,
            } => {
                write!(f, "sweep job #{index} ({job}) panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

/// An inconsistency inside a [`FaultPlan`](crate::faults::FaultPlan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability fell outside `[0, 1]`.
    BadProbability(f64),
    /// A window's end does not exceed its start.
    EmptyWindow {
        /// Window start cycle.
        start: Cycle,
        /// Window end cycle.
        end: Cycle,
    },
    /// A bank slowdown multiplier must be at least 1.
    BadSlowdown(u32),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            FaultError::EmptyWindow { start, end } => {
                write!(f, "fault window [{start}, {end}) is empty")
            }
            FaultError::BadSlowdown(m) => write!(f, "slowdown multiplier {m} must be >= 1"),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let errors: Vec<SimError> = vec![
            SimError::Config(ConfigError::ZeroBufferDepth),
            SimError::NodeOutOfRange {
                node: 40,
                nodes: 32,
            },
            SimError::ZeroFlitPacket,
            SimError::ZeroClockPeriod,
            SimError::BankOutOfRange {
                bank: 99,
                banks: 16,
            },
            SimError::StreamCountMismatch {
                streams: 4,
                cores: 32,
            },
            SimError::Fault(FaultError::BadProbability(2.0)),
            SimError::Fault(FaultError::EmptyWindow { start: 5, end: 5 }),
            SimError::Fault(FaultError::BadSlowdown(0)),
            SimError::JobPanicked {
                job: "w2/both".into(),
                index: 3,
                message: "boom".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_wrap() {
        let e: SimError = ConfigError::ZeroBufferDepth.into();
        assert!(matches!(e, SimError::Config(_)));
        let e: SimError = FaultError::BadSlowdown(0).into();
        assert!(matches!(e, SimError::Fault(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
