//! Typed errors for the simulation stack's public API surface.
//!
//! Panic paths reachable through public APIs (bad node indices, zero-flit
//! packets, misconfigured clocks, out-of-range banks) surface as
//! [`SimError`] values instead of aborting the process; `debug_assert!`s on
//! hot inner loops remain assertions because they guard internal invariants
//! the library itself must uphold.

use crate::config::ConfigError;
use crate::Cycle;

/// An error raised by a public simulator API.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// A node index fell outside the mesh.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// A packet must carry at least one flit.
    ZeroFlitPacket,
    /// A router clock period must be positive.
    ZeroClockPeriod,
    /// A DRAM bank index fell outside the controller.
    BankOutOfRange {
        /// Offending bank index.
        bank: usize,
        /// Banks behind this controller.
        banks: usize,
    },
    /// The stream count handed to a system builder does not match the core
    /// count of the configured mesh.
    StreamCountMismatch {
        /// Streams provided.
        streams: usize,
        /// Cores configured.
        cores: usize,
    },
    /// A simulation was built without a workload: neither applications nor
    /// instruction streams were attached to the builder.
    MissingWorkload,
    /// A fault-plan entry is inconsistent (empty window, bad probability…).
    Fault(FaultError),
    /// A sweep job panicked on a worker thread; the pool isolated it and
    /// reports the failing configuration instead of aborting the harness.
    JobPanicked {
        /// Label of the failing job (the configuration it was running).
        job: String,
        /// Index of the job within its grid.
        index: usize,
        /// The panic message, when one was attached.
        message: String,
        /// Content address of the offending configuration (journal key),
        /// when the sweep layer assigned one.
        config_hash: Option<String>,
        /// Attempts made before giving up (1 when retries were disabled).
        attempts: u32,
    },
    /// A sweep job exceeded its wall-clock deadline; the supervisor fired
    /// its cancellation token and the pool quarantined the cell after its
    /// retry budget ran out.
    JobTimeout {
        /// Label of the failing job (the configuration it was running).
        job: String,
        /// Index of the job within its grid.
        index: usize,
        /// Content address of the offending configuration (journal key),
        /// when the sweep layer assigned one.
        config_hash: Option<String>,
        /// The deadline that was exceeded, in milliseconds.
        timeout_ms: u64,
        /// Attempts made before giving up (1 when retries were disabled).
        attempts: u32,
    },
    /// A simulation run was cancelled cooperatively before reaching its
    /// target cycle (deadline supervisor, Ctrl-C…). Partial state is intact
    /// but the run's metrics must not be trusted as a complete result.
    Cancelled {
        /// Cycle at which the run observed the cancellation.
        at: Cycle,
    },
    /// The resume journal could not be read or does not match this sweep.
    Journal(JournalError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} outside the {nodes}-node mesh")
            }
            SimError::ZeroFlitPacket => write!(f, "packet must carry at least one flit"),
            SimError::ZeroClockPeriod => write!(f, "router clock period must be positive"),
            SimError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} outside the {banks}-bank controller")
            }
            SimError::StreamCountMismatch { streams, cores } => {
                write!(f, "{streams} instruction streams for {cores} cores")
            }
            SimError::MissingWorkload => {
                write!(
                    f,
                    "simulation built without a workload (attach applications or streams)"
                )
            }
            SimError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            SimError::JobPanicked {
                job,
                index,
                message,
                config_hash,
                attempts,
            } => {
                write!(f, "sweep job #{index} ({job}) panicked: {message}")?;
                if let Some(h) = config_hash {
                    write!(f, " [config {h}]")?;
                }
                if *attempts > 1 {
                    write!(f, " after {attempts} attempts")?;
                }
                Ok(())
            }
            SimError::JobTimeout {
                job,
                index,
                config_hash,
                timeout_ms,
                attempts,
            } => {
                write!(
                    f,
                    "sweep job #{index} ({job}) exceeded its {timeout_ms} ms deadline"
                )?;
                if let Some(h) = config_hash {
                    write!(f, " [config {h}]")?;
                }
                write!(f, " after {attempts} attempt(s)")
            }
            SimError::Cancelled { at } => {
                write!(f, "simulation cancelled cooperatively at cycle {at}")
            }
            SimError::Journal(e) => write!(f, "resume journal error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Fault(e) => Some(e),
            SimError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

impl From<JournalError> for SimError {
    fn from(e: JournalError) -> Self {
        SimError::Journal(e)
    }
}

/// A problem with a resume journal (see [`crate::journal`]).
///
/// IO errors are carried as rendered strings because `SimError` is `Clone +
/// PartialEq` end-to-end (the pool duplicates errors across result slots and
/// tests compare them), which `std::io::Error` is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file exists but does not start with a valid journal header.
    MissingHeader,
    /// The journal was written by a sweep with different arguments; resuming
    /// would silently mix incompatible records.
    FingerprintMismatch {
        /// Fingerprint of the sweep attempting to resume.
        expected: u64,
        /// Fingerprint pinned in the journal header.
        found: u64,
    },
    /// A filesystem operation failed (message includes the path).
    Io(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::MissingHeader => {
                write!(f, "file is not a noclat run journal (missing header)")
            }
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different sweep (fingerprint {found:016x}, \
                 this run is {expected:016x}); pass a fresh --resume path or rerun \
                 with the original arguments"
            ),
            JournalError::Io(msg) => write!(f, "journal IO failed: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// An inconsistency inside a [`FaultPlan`](crate::faults::FaultPlan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability fell outside `[0, 1]`.
    BadProbability(f64),
    /// A window's end does not exceed its start.
    EmptyWindow {
        /// Window start cycle.
        start: Cycle,
        /// Window end cycle.
        end: Cycle,
    },
    /// A bank slowdown multiplier must be at least 1.
    BadSlowdown(u32),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            FaultError::EmptyWindow { start, end } => {
                write!(f, "fault window [{start}, {end}) is empty")
            }
            FaultError::BadSlowdown(m) => write!(f, "slowdown multiplier {m} must be >= 1"),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let errors: Vec<SimError> = vec![
            SimError::Config(ConfigError::ZeroBufferDepth),
            SimError::NodeOutOfRange {
                node: 40,
                nodes: 32,
            },
            SimError::ZeroFlitPacket,
            SimError::ZeroClockPeriod,
            SimError::BankOutOfRange {
                bank: 99,
                banks: 16,
            },
            SimError::StreamCountMismatch {
                streams: 4,
                cores: 32,
            },
            SimError::Fault(FaultError::BadProbability(2.0)),
            SimError::Fault(FaultError::EmptyWindow { start: 5, end: 5 }),
            SimError::Fault(FaultError::BadSlowdown(0)),
            SimError::JobPanicked {
                job: "w2/both".into(),
                index: 3,
                message: "boom".into(),
                config_hash: Some("00c0ffee00c0ffee".into()),
                attempts: 2,
            },
            SimError::JobTimeout {
                job: "w2/both".into(),
                index: 3,
                config_hash: None,
                timeout_ms: 1500,
                attempts: 3,
            },
            SimError::Cancelled { at: 1234 },
            SimError::Journal(JournalError::MissingHeader),
            SimError::Journal(JournalError::FingerprintMismatch {
                expected: 1,
                found: 2,
            }),
            SimError::Journal(JournalError::Io("disk on fire".into())),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_end_to_end() {
        use std::error::Error;
        // Config and fault errors chain one level down.
        let e: SimError = ConfigError::ZeroBufferDepth.into();
        assert!(e.source().is_some());
        let e: SimError = FaultError::BadSlowdown(0).into();
        assert!(e.source().is_some());
        // Journal errors chain too, and their Display survives the chain.
        let e: SimError = JournalError::MissingHeader.into();
        let src = e.source().expect("journal errors carry a source");
        assert!(src.to_string().contains("missing header"));
        // Leaf job-level variants have no deeper cause.
        let leaf = SimError::JobTimeout {
            job: "x".into(),
            index: 0,
            config_hash: None,
            timeout_ms: 1,
            attempts: 1,
        };
        assert!(leaf.source().is_none());
    }

    #[test]
    fn job_errors_name_the_config_hash() {
        let e = SimError::JobPanicked {
            job: "grid/cell".into(),
            index: 7,
            message: "boom".into(),
            config_hash: Some("deadbeefdeadbeef".into()),
            attempts: 1,
        };
        assert!(e.to_string().contains("deadbeefdeadbeef"));
        let e = SimError::JobTimeout {
            job: "grid/cell".into(),
            index: 7,
            config_hash: Some("deadbeefdeadbeef".into()),
            timeout_ms: 250,
            attempts: 2,
        };
        let s = e.to_string();
        assert!(s.contains("deadbeefdeadbeef") && s.contains("250"));
    }

    #[test]
    fn conversions_wrap() {
        let e: SimError = ConfigError::ZeroBufferDepth.into();
        assert!(matches!(e, SimError::Config(_)));
        let e: SimError = FaultError::BadSlowdown(0).into();
        assert!(matches!(e, SimError::Fault(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
