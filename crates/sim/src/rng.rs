//! Seeded, splittable random number generation.
//!
//! Every stochastic component of the simulator (address generators,
//! tie-breaking, workload construction, fault injection) draws from a
//! [`SimRng`] derived from the single master seed in
//! [`SystemConfig::seed`](crate::config::SystemConfig), so whole-system runs
//! are reproducible bit-for-bit and independent of component iteration order.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna), seeded
//! through a SplitMix64 expansion. No external crates are involved, so the
//! stream is stable across toolchains and fully under our control — a
//! prerequisite for replaying fault scenarios from a seed alone.

/// A deterministic random stream.
///
/// Wraps an in-tree xoshiro256++ core and adds [`SimRng::split`], which
/// derives statistically independent child streams from `(seed, stream_id)`
/// pairs via a SplitMix64 finalizer, so adding a component never perturbs
/// another component's stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// SplitMix64 finalizer: maps correlated inputs to well-distributed outputs.
/// Public so address generators can use it as a cheap stateless hash (e.g.
/// for virtual→physical page scattering).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from a master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Expand the seed into four non-zero words with SplitMix64 (the
        // xoshiro authors' recommended seeding procedure).
        let mut s = splitmix64(seed);
        let mut state = [0u64; 4];
        for w in &mut state {
            s = splitmix64(s);
            *w = s;
        }
        // The all-zero state is the one fixed point; nudge away from it.
        if state.iter().all(|&w| w == 0) {
            state[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SimRng { seed, state }
    }

    /// Derives an independent child stream identified by `stream_id`.
    ///
    /// Splitting with the same `(seed, stream_id)` always yields the same
    /// stream, regardless of how much the parent has been consumed.
    #[must_use]
    pub fn split(&self, stream_id: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(stream_id)))
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's widening-multiply reduction with a rejection pass for
        // exact uniformity.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index() requires a positive bound");
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Geometric-like draw: number of failures before a success with
    /// probability `p`, capped at `cap`. Used for burst/gap length sampling.
    pub fn geometric(&mut self, p: f64, cap: u32) -> u32 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-9);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be practically disjoint");
    }

    #[test]
    fn split_is_stable_under_parent_consumption() {
        let mut parent = SimRng::new(7);
        let mut child_before = parent.split(3);
        let _ = parent.next_u64();
        let mut child_after = parent.split(3);
        for _ in 0..32 {
            assert_eq!(child_before.next_u64(), child_after.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let parent = SimRng::new(7);
        let mut a = parent.split(0);
        let mut b = parent.split(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn below_and_index_within_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = SimRng::new(19);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every residue must appear");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::new(13);
        for _ in 0..1000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn geometric_respects_cap() {
        let mut rng = SimRng::new(17);
        for _ in 0..200 {
            assert!(rng.geometric(0.01, 5) <= 5);
        }
        assert_eq!(rng.geometric(1.0, 5), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::new(23);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
