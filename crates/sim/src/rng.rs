//! Seeded, splittable random number generation.
//!
//! Every stochastic component of the simulator (address generators,
//! tie-breaking, workload construction) draws from a [`SimRng`] derived from
//! the single master seed in
//! [`SystemConfig::seed`](crate::config::SystemConfig), so whole-system runs
//! are reproducible bit-for-bit and independent of component iteration order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
///
/// Wraps [`SmallRng`] and adds [`SimRng::split`], which derives statistically
/// independent child streams from `(seed, stream_id)` pairs via a SplitMix64
/// finalizer, so adding a component never perturbs another component's
/// stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: SmallRng,
}

/// SplitMix64 finalizer: maps correlated inputs to well-distributed outputs.
/// Public so address generators can use it as a cheap stateless hash (e.g.
/// for virtual→physical page scattering).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from a master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Derives an independent child stream identified by `stream_id`.
    ///
    /// Splitting with the same `(seed, stream_id)` always yields the same
    /// stream, regardless of how much the parent has been consumed.
    #[must_use]
    pub fn split(&self, stream_id: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(stream_id)))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Geometric-like draw: number of failures before a success with
    /// probability `p`, capped at `cap`. Used for burst/gap length sampling.
    pub fn geometric(&mut self, p: f64, cap: u32) -> u32 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-9);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be practically disjoint");
    }

    #[test]
    fn split_is_stable_under_parent_consumption() {
        let mut parent = SimRng::new(7);
        let mut child_before = parent.split(3);
        let _ = parent.next_u64();
        let mut child_after = parent.split(3);
        for _ in 0..32 {
            assert_eq!(child_before.next_u64(), child_after.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let parent = SimRng::new(7);
        let mut a = parent.split(0);
        let mut b = parent.split(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn below_and_index_within_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::new(13);
        for _ in 0..1000 {
            let x = rng.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn geometric_respects_cap() {
        let mut rng = SimRng::new(17);
        for _ in 0..200 {
            assert!(rng.geometric(0.01, 5) <= 5);
        }
        assert_eq!(rng.geometric(1.0, 5), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::new(23);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
