//! Cooperative cancellation tokens for bounding runaway jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a supervisor
//! (the sweep pool's deadline watcher, a Ctrl-C handler, a test) and the
//! code doing the work. Cancellation is *cooperative*: firing the token
//! never interrupts anything by force — the simulation loop polls
//! [`CancelToken::is_cancelled`] at cycle-chunk boundaries and winds down
//! cleanly, so a cancelled run leaves every data structure intact (its
//! partial results are simply discarded by the caller).
//!
//! Because sweep jobs are arbitrary closures that build their simulations
//! internally, the pool also maintains a per-thread *current* token
//! ([`CancelToken::current`]): the worker installs its attempt token before
//! invoking the job, and `SimulationBuilder::build` inherits it
//! automatically unless the caller attached an explicit token. This is how
//! `--job-timeout` reaches `Simulation::run_until` inside all the bench
//! binaries without threading a parameter through every harness closure.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

thread_local! {
    /// Stack of tokens installed on this thread (innermost last). A stack —
    /// not a single slot — so nested scopes (a supervised job spawning its
    /// own scoped helpers) restore correctly.
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// A shared cancellation flag. Clones observe the same flag; once fired it
/// stays fired for the lifetime of the token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, unfired token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has been fired.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Whether two tokens share the same underlying flag.
    #[must_use]
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.fired, &other.fired)
    }

    /// The token most recently installed on this thread via
    /// [`CancelToken::install_current`], if any.
    #[must_use]
    pub fn current() -> Option<CancelToken> {
        CURRENT.with(|c| c.borrow().last().cloned())
    }

    /// Installs this token as the thread's current token for the lifetime
    /// of the returned guard (dropping the guard restores the previous
    /// current token).
    #[must_use]
    pub fn install_current(&self) -> CurrentTokenGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        CurrentTokenGuard { _private: () }
    }
}

/// Scope guard returned by [`CancelToken::install_current`]; restores the
/// previously current token when dropped.
#[derive(Debug)]
pub struct CurrentTokenGuard {
    _private: (),
}

impl Drop for CurrentTokenGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_and_stays_fired() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.same_token(&c));
        c.cancel();
        assert!(t.is_cancelled());
        assert!(!t.same_token(&CancelToken::new()));
    }

    #[test]
    fn current_token_nests_and_restores() {
        assert!(CancelToken::current().is_none());
        let outer = CancelToken::new();
        let g1 = outer.install_current();
        assert!(CancelToken::current().unwrap().same_token(&outer));
        {
            let inner = CancelToken::new();
            let _g2 = inner.install_current();
            assert!(CancelToken::current().unwrap().same_token(&inner));
        }
        assert!(CancelToken::current().unwrap().same_token(&outer));
        drop(g1);
        assert!(CancelToken::current().is_none());
    }

    #[test]
    fn current_token_is_per_thread() {
        let t = CancelToken::new();
        let _g = t.install_current();
        std::thread::spawn(|| assert!(CancelToken::current().is_none()))
            .join()
            .unwrap();
    }
}
