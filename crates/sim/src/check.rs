//! A minimal, dependency-free property-testing harness.
//!
//! The workspace's randomized tests were originally written against an
//! external property-testing crate; this module provides the small subset
//! the tests actually need — run a closure over many seeded random cases and
//! report a reproducible failure — on top of [`SimRng`](crate::rng::SimRng),
//! so `cargo test` works fully offline and the case streams are bit-stable
//! across toolchains.
//!
//! There is no shrinking: a failing case prints its index and master seed so
//! it can be replayed exactly via `NOCLAT_CHECK_SEED`.

use crate::rng::{splitmix64, SimRng};

/// Default master seed for [`cases`]. Override with the `NOCLAT_CHECK_SEED`
/// environment variable to replay a reported failure.
pub const DEFAULT_MASTER_SEED: u64 = 0xC0FF_EE00_5EED;

/// The master seed in effect (environment override or the default).
#[must_use]
pub fn master_seed() -> u64 {
    std::env::var("NOCLAT_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MASTER_SEED)
}

/// Runs `f` over `n` independent random cases.
///
/// Each case receives its own [`SimRng`] derived from `(master seed, case
/// index)`, so cases are independent and the whole run is reproducible. On a
/// failing case the index and master seed are printed before the panic is
/// propagated.
///
/// # Panics
///
/// Re-raises the panic of the first failing case.
pub fn cases<F: FnMut(&mut SimRng)>(n: u64, mut f: F) {
    let master = master_seed();
    for i in 0..n {
        let mut rng = SimRng::new(splitmix64(master ^ (i.wrapping_mul(0x9e37_79b9))));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed on case {i} of {n} (master seed {master}); \
                 replay with NOCLAT_CHECK_SEED={master}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Picks a uniformly random element of `items`.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn pick<T: Copy>(rng: &mut SimRng, items: &[T]) -> T {
    items[rng.index(items.len())]
}

/// Uniform draw from `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn range_u64(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "empty range {lo}..{hi}");
    lo + rng.below(hi - lo)
}

/// Uniform draw from `[lo, hi)` as `f64`.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
pub fn range_f64(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
    lo + rng.unit() * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0u64;
        cases(17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        cases(5, |rng| a.push(rng.next_u64()));
        cases(5, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn helpers_stay_in_bounds() {
        cases(50, |rng| {
            let v = range_u64(rng, 10, 20);
            assert!((10..20).contains(&v));
            let x = range_f64(rng, -1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
            let p = pick(rng, &[1, 2, 3]);
            assert!((1..=3).contains(&p));
        });
    }
}
