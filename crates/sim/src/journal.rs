//! Durable, content-addressed run journal backing `--resume`.
//!
//! A journal is an append-only text file mapping a *config hash* (the
//! content address of one sweep cell: harness arguments + cell label) to the
//! cell's serialized metrics record. Each record line carries its own
//! checksum, so a journal whose tail was truncated or corrupted by a crash
//! mid-write recovers to the longest valid prefix: the damaged suffix is
//! discarded and the cells it covered are simply recomputed. Because every
//! cell is deterministic (seeded only from the sweep arguments), a resumed
//! sweep produces output bit-identical to an uninterrupted one.
//!
//! # Format
//!
//! ```text
//! noclat-journal v1 <fingerprint:016x>
//! r <key:016x> <checksum:016x> <payload>
//! r <key:016x> <checksum:016x> <payload>
//! ```
//!
//! * The header pins the sweep *fingerprint* (a hash of the arguments that
//!   determine results: seed, window, policy, kernel). Resuming with
//!   different arguments is rejected instead of silently mixing records.
//! * `key` is the cell's config hash; `checksum` is [`fnv1a64`] over
//!   `"<key:016x> <payload>"`; `payload` is a single line (the sweep layer
//!   stores compact JSON) and must not contain `\n`.
//! * Records are verified in order; the first malformed line ends the valid
//!   prefix. Opening for append truncates the file back to that prefix.
//!
//! The journal doubles as a content-addressed result cache: any future
//! consumer (e.g. a sweep server) can serve `key → payload` lookups from it
//! without re-running the simulator.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::JournalError;

/// Magic prefix of the header line (version-bearing).
const HEADER_MAGIC: &str = "noclat-journal v1";

/// 64-bit FNV-1a hash; the workspace's offline stand-in for a content hash.
/// Stable across platforms and runs (no randomized state), which is what
/// makes journal keys durable addresses.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One validated journal record: config hash plus the serialized metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Content address of the cell (config hash).
    pub key: u64,
    /// Serialized metrics record (single line; compact JSON upstream).
    pub payload: String,
}

fn record_checksum(key: u64, payload: &str) -> u64 {
    fnv1a64(format!("{key:016x} {payload}").as_bytes())
}

fn render_record(key: u64, payload: &str) -> String {
    format!(
        "r {key:016x} {:016x} {payload}\n",
        record_checksum(key, payload)
    )
}

/// Result of scanning a journal file: the valid records, the byte length of
/// the valid prefix, and whether a damaged tail was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Records of the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Fingerprint pinned by the header.
    pub fingerprint: u64,
    /// Byte length of the valid prefix (header + valid records).
    pub valid_bytes: u64,
    /// True when bytes beyond the valid prefix were present (truncated or
    /// corrupted tail — the crash-recovery case).
    pub dropped_tail: bool,
}

/// Parses journal text into its valid prefix. Pure (testable without IO).
pub fn scan(text: &str) -> Result<JournalScan, JournalError> {
    let mut lines = text.split_inclusive('\n');
    let Some(header) = lines.next() else {
        return Err(JournalError::MissingHeader);
    };
    let header_trimmed = header.strip_suffix('\n').unwrap_or(header);
    let fingerprint = header_trimmed
        .strip_prefix(HEADER_MAGIC)
        .map(str::trim)
        .and_then(|fp| u64::from_str_radix(fp, 16).ok())
        .ok_or(JournalError::MissingHeader)?;
    if !header.ends_with('\n') {
        // A header without its newline is itself a truncated write.
        return Err(JournalError::MissingHeader);
    }
    let mut records = Vec::new();
    let mut valid_bytes = header.len() as u64;
    let mut dropped_tail = false;
    for line in lines {
        let Some(complete) = line.strip_suffix('\n') else {
            dropped_tail = true; // torn final write
            break;
        };
        match parse_record(complete) {
            Some(rec) => {
                valid_bytes += line.len() as u64;
                records.push(rec);
            }
            None => {
                dropped_tail = true;
                break;
            }
        }
    }
    Ok(JournalScan {
        records,
        fingerprint,
        valid_bytes,
        dropped_tail,
    })
}

fn parse_record(line: &str) -> Option<JournalRecord> {
    let rest = line.strip_prefix("r ")?;
    let (key_hex, rest) = rest.split_once(' ')?;
    let (sum_hex, payload) = rest.split_once(' ')?;
    if key_hex.len() != 16 || sum_hex.len() != 16 {
        return None;
    }
    let key = u64::from_str_radix(key_hex, 16).ok()?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    if record_checksum(key, payload) != sum {
        return None;
    }
    Some(JournalRecord {
        key,
        payload: payload.to_string(),
    })
}

/// An open journal: validated records loaded, file positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a sweep with the given
    /// fingerprint, returning the valid records already present.
    ///
    /// * A missing or empty file is initialized with a fresh header.
    /// * A damaged tail is truncated away (crash recovery); the records of
    ///   the valid prefix survive.
    ///
    /// # Errors
    ///
    /// [`JournalError::FingerprintMismatch`] when the file belongs to a
    /// sweep run with different arguments, [`JournalError::MissingHeader`]
    /// when the file exists but is not a journal, and [`JournalError::Io`]
    /// on filesystem failures.
    pub fn open(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(Journal, Vec<JournalRecord>), JournalError> {
        let io = |e: std::io::Error| JournalError::Io(format!("{}: {e}", path.display()));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io)?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(io)?;
        if text.is_empty() {
            let header = format!("{HEADER_MAGIC} {fingerprint:016x}\n");
            file.write_all(header.as_bytes()).map_err(io)?;
            file.flush().map_err(io)?;
            return Ok((
                Journal {
                    file,
                    path: path.to_path_buf(),
                },
                Vec::new(),
            ));
        }
        let scanned = scan(&text)?;
        if scanned.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint,
                found: scanned.fingerprint,
            });
        }
        if scanned.dropped_tail {
            file.set_len(scanned.valid_bytes).map_err(io)?;
        }
        file.seek(SeekFrom::Start(scanned.valid_bytes))
            .map_err(io)?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            scanned.records,
        ))
    }

    /// Appends one record and flushes it to the OS, so a SIGKILL immediately
    /// after never loses it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write failures.
    pub fn append(&mut self, key: u64, payload: &str) -> Result<(), JournalError> {
        debug_assert!(
            !payload.contains('\n'),
            "journal payloads must be single-line"
        );
        self.file
            .write_all(render_record(key, payload).as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| JournalError::Io(format!("{}: {e}", self.path.display())))
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Collects records into a `key → payload` map (last write wins, matching
/// append order: a re-run cell overrides its stale record).
#[must_use]
pub fn as_map(records: Vec<JournalRecord>) -> HashMap<u64, String> {
    records.into_iter().map(|r| (r.key, r.payload)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noclat-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fnv_is_stable_and_spread() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
    }

    #[test]
    fn roundtrip_append_and_reload() {
        let path = tmp("roundtrip.nj");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, existing) = Journal::open(&path, 7).unwrap();
            assert!(existing.is_empty());
            j.append(1, r#"{"ipc":3}"#).unwrap();
            j.append(2, r#"{"ipc":4}"#).unwrap();
        }
        let (mut j, records) = Journal::open(&path, 7).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, 1);
        assert_eq!(records[1].payload, r#"{"ipc":4}"#);
        // Appending after reload keeps earlier records intact.
        j.append(3, "x").unwrap();
        let (_, records) = Journal::open(&path, 7).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = tmp("fingerprint.nj");
        let _ = std::fs::remove_file(&path);
        drop(Journal::open(&path, 1).unwrap());
        let err = Journal::open(&path, 2).unwrap_err();
        assert!(matches!(
            err,
            JournalError::FingerprintMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn truncated_tail_recovers_valid_prefix() {
        let path = tmp("truncated.nj");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, 9).unwrap();
            j.append(10, "first").unwrap();
            j.append(11, "second").unwrap();
        }
        // Chop the file mid-way through the second record.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        let (mut j, records) = Journal::open(&path, 9).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, "first");
        // The damaged tail was truncated, so appends go after the prefix.
        j.append(12, "third").unwrap();
        let (_, records) = Journal::open(&path, 9).unwrap();
        assert_eq!(
            records.iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![10, 12]
        );
    }

    #[test]
    fn corrupted_tail_checksum_is_dropped() {
        let path = tmp("corrupt.nj");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path, 3).unwrap();
            j.append(20, "keep").unwrap();
            j.append(21, "mangle").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x55; // flip a payload byte of the last record
        std::fs::write(&path, &bytes).unwrap();
        let (_, records) = Journal::open(&path, 3).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, "keep");
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = tmp("not-a-journal.nj");
        std::fs::write(&path, "hello world\n").unwrap();
        assert!(matches!(
            Journal::open(&path, 0).unwrap_err(),
            JournalError::MissingHeader
        ));
    }

    #[test]
    fn scan_is_pure_and_flags_tails() {
        let good = format!(
            "{HEADER_MAGIC} {:016x}\n{}{}",
            5u64,
            render_record(1, "a"),
            render_record(2, "b")
        );
        let s = scan(&good).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(!s.dropped_tail);
        assert_eq!(s.valid_bytes as usize, good.len());

        let torn = &good[..good.len() - 1]; // missing final newline
        let s = scan(torn).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.dropped_tail);
    }

    #[test]
    fn as_map_last_write_wins() {
        let m = as_map(vec![
            JournalRecord {
                key: 1,
                payload: "old".into(),
            },
            JournalRecord {
                key: 1,
                payload: "new".into(),
            },
        ]);
        assert_eq!(m.get(&1).map(String::as_str), Some("new"));
    }
}
