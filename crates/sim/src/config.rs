//! System configuration.
//!
//! The defaults reproduce the paper's Table 1 (baseline configuration of the
//! 32-core, 4×8-mesh system with 4 corner memory controllers). Every
//! experiment in the evaluation section is a perturbation of
//! [`SystemConfig::baseline_32`]; the 16-core system of Figure 15 is
//! [`SystemConfig::baseline_16`].

use crate::error::FaultError;
use crate::faults::FaultPlan;
use crate::Cycle;

/// Which network fabric connects the tiles.
///
/// The tile grid (`width × height`, one core/L1/L2-bank per tile) is the
/// same for every kind — the kind only changes how routers are wired:
///
/// * `Mesh` — the paper's 2D mesh (bit-identical to the pre-topology code).
/// * `Torus` — mesh plus wraparound links in both dimensions; deadlock
///   freedom comes from dateline virtual-channel subclasses, which is why a
///   torus needs `vcs_per_port` divisible by 4 (request/response halves,
///   each split into two dateline subclasses).
/// * `CMesh` — concentrated mesh: `concentration` tiles share one router
///   (2 → 2×1 tile blocks, 4 → 2×2 blocks), quartering router count and
///   average hop distance at 256+ cores.
/// * `Express` — mesh plus express (ruche) channels that skip
///   `express_skip` routers per hop in each dimension, the BSG
///   `RUCHE_FACTOR` parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// Plain 2D mesh (the default; the paper's fabric).
    #[default]
    Mesh,
    /// 2D torus with dateline VCs.
    Torus,
    /// Concentrated mesh.
    CMesh,
    /// Mesh with express/ruche skip channels.
    Express,
}

impl TopologyKind {
    /// Parses a `--topology` fabric name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "mesh" => Ok(TopologyKind::Mesh),
            "torus" => Ok(TopologyKind::Torus),
            "cmesh" => Ok(TopologyKind::CMesh),
            "express" => Ok(TopologyKind::Express),
            _ => Err(format!(
                "--topology: unknown fabric {value:?} (known: mesh, torus, cmesh, express)"
            )),
        }
    }

    /// The CLI name of this fabric.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::CMesh => "cmesh",
            TopologyKind::Express => "express",
        }
    }
}

/// Where memory controllers attach to the tile grid — a swept sub-axis
/// ("Optimal Placement of Cores, Caches and Memory Controllers in NoC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum McPlacement {
    /// The paper's layout: controllers at the grid corners (default).
    #[default]
    Corner,
    /// Controllers at edge midpoints (top/bottom, then left/right).
    Edge,
    /// Controllers in the central block of the grid.
    Center,
}

impl McPlacement {
    /// Parses an `mc=` placement name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "corner" => Ok(McPlacement::Corner),
            "edge" => Ok(McPlacement::Edge),
            "center" => Ok(McPlacement::Center),
            _ => Err(format!(
                "--topology: unknown MC placement {value:?} (known: corner, edge, center)"
            )),
        }
    }

    /// The CLI name of this placement.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            McPlacement::Corner => "corner",
            McPlacement::Edge => "edge",
            McPlacement::Center => "center",
        }
    }
}

/// Tile-grid dimensions and fabric selection.
///
/// `width × height` always counts **tiles** (cores); for a concentrated
/// mesh the router grid is smaller by the concentration factor, but the
/// cache hierarchy, workload mapping and MC placement are all expressed in
/// tiles and are untouched by the fabric choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopologyConfig {
    /// Number of tile columns (the paper's 4×8 mesh is 4 rows × 8 columns).
    pub width: u16,
    /// Number of tile rows.
    pub height: u16,
    /// Which fabric wires the routers together.
    pub kind: TopologyKind,
    /// Tiles per router (`CMesh` only; 1 elsewhere). 2 → 2×1 tile blocks,
    /// 4 → 2×2 blocks.
    pub concentration: u16,
    /// Routers skipped by one express-channel hop (`Express` only;
    /// the BSG `RUCHE_FACTOR`). Must satisfy `2 ≤ skip < min(width, height)`.
    pub express_skip: u16,
    /// Where memory controllers attach.
    pub mc_placement: McPlacement,
}

impl TopologyConfig {
    /// A plain mesh — the paper's fabric and the pre-topology default.
    #[must_use]
    pub fn mesh(width: u16, height: u16) -> Self {
        TopologyConfig {
            width,
            height,
            kind: TopologyKind::Mesh,
            concentration: 1,
            express_skip: 0,
            mc_placement: McPlacement::Corner,
        }
    }

    /// A torus of the same tile grid.
    #[must_use]
    pub fn torus(width: u16, height: u16) -> Self {
        TopologyConfig {
            kind: TopologyKind::Torus,
            ..Self::mesh(width, height)
        }
    }

    /// A concentrated mesh with `concentration` tiles per router.
    #[must_use]
    pub fn cmesh(width: u16, height: u16, concentration: u16) -> Self {
        TopologyConfig {
            kind: TopologyKind::CMesh,
            concentration,
            ..Self::mesh(width, height)
        }
    }

    /// A mesh with express channels skipping `express_skip` routers.
    #[must_use]
    pub fn express(width: u16, height: u16, express_skip: u16) -> Self {
        TopologyConfig {
            kind: TopologyKind::Express,
            express_skip,
            ..Self::mesh(width, height)
        }
    }

    /// Total number of tiles (`width × height`), i.e. cores.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Compact `fabric:WxH[,extras]` label for logs and fingerprints.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = format!("{}:{}x{}", self.kind.name(), self.width, self.height);
        if self.kind == TopologyKind::CMesh {
            s.push_str(&format!(",c={}", self.concentration));
        }
        if self.kind == TopologyKind::Express {
            s.push_str(&format!(",skip={}", self.express_skip));
        }
        if self.mc_placement != McPlacement::Corner {
            s.push_str(&format!(",mc={}", self.mc_placement.name()));
        }
        s
    }
}

/// A parsed `--topology NAME[:PARAM=V,...]` override from the sweep CLI,
/// e.g. `torus`, `cmesh:c=4`, `express:skip=2,mc=edge`. Like
/// [`PolicyOverride`] it composes with each binary's own config sweep:
/// the tile-grid dimensions are left untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopologyOverride {
    /// Fabric to select, if any.
    pub kind: Option<TopologyKind>,
    /// Concentration factor (`c=`), if given.
    pub concentration: Option<u16>,
    /// Express skip distance (`skip=`), if given.
    pub express_skip: Option<u16>,
    /// MC placement (`mc=`), if given.
    pub mc_placement: Option<McPlacement>,
}

impl TopologyOverride {
    /// Whether the override selects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind.is_none()
            && self.concentration.is_none()
            && self.express_skip.is_none()
            && self.mc_placement.is_none()
    }

    /// Parses `NAME[:PARAM=V,...]`, e.g. `torus`, `cmesh:c=4`,
    /// `express:skip=2,mc=center`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown fabrics, unknown keys,
    /// or malformed values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = TopologyOverride::default();
        if spec.is_empty() {
            return Ok(out);
        }
        let (name, params) = match spec.split_once(':') {
            Some((name, params)) => (name, params),
            None => (spec, ""),
        };
        out.kind = Some(TopologyKind::parse(name)?);
        for part in params.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("--topology: expected key=value, got {part:?}"))?;
            match key {
                "c" | "concentration" => {
                    let c: u16 = value
                        .parse()
                        .map_err(|_| format!("--topology: bad concentration {value:?}"))?;
                    out.concentration = Some(c);
                }
                "skip" | "ruche" => {
                    let s: u16 = value
                        .parse()
                        .map_err(|_| format!("--topology: bad skip distance {value:?}"))?;
                    out.express_skip = Some(s);
                }
                "mc" => {
                    out.mc_placement = Some(McPlacement::parse(value)?);
                }
                _ => {
                    return Err(format!(
                        "--topology: unknown key {key:?} (known: c, skip, mc)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Applies the override to a configuration, keeping the tile-grid
    /// dimensions and filling unspecified parameters with per-fabric
    /// defaults (`c=4` for cmesh, `skip=2` for express).
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(kind) = self.kind {
            cfg.topology.kind = kind;
            cfg.topology.concentration = match kind {
                TopologyKind::CMesh => self.concentration.unwrap_or(4),
                _ => 1,
            };
            cfg.topology.express_skip = match kind {
                TopologyKind::Express => self.express_skip.unwrap_or(2),
                _ => 0,
            };
        } else {
            if let Some(c) = self.concentration {
                cfg.topology.concentration = c;
            }
            if let Some(s) = self.express_skip {
                cfg.topology.express_skip = s;
            }
        }
        if let Some(mc) = self.mc_placement {
            cfg.topology.mc_placement = mc;
        }
    }
}

/// Out-of-order core parameters (Table 1: "Processors").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instruction window (ROB) capacity. Table 1: 128.
    pub window_size: usize,
    /// Load/store queue capacity. Table 1: 64.
    pub lsq_size: usize,
    /// Maximum instructions dispatched into the window per cycle.
    pub issue_width: usize,
    /// Maximum instructions committed (in order) per cycle.
    pub commit_width: usize,
}

/// Private L1 cache parameters (Table 1: direct-mapped, 32 KB, 64 B lines,
/// 3-cycle access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: Cycle,
}

impl L1Config {
    /// Number of direct-mapped sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// Shared, banked S-NUCA L2 parameters (Table 1: 32 banks × 512 KB, 64 B
/// lines, 10-cycle access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity of one bank in bytes.
    pub bank_size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Set associativity of each bank.
    pub associativity: usize,
    /// Bank hit latency in cycles.
    pub latency: Cycle,
    /// Miss-status holding registers per bank (outstanding misses).
    pub mshrs_per_bank: usize,
}

impl L2Config {
    /// Number of sets in one bank.
    #[must_use]
    pub fn sets_per_bank(&self) -> usize {
        self.bank_size_bytes / (self.line_bytes * self.associativity)
    }
}

/// Dimension-order routing variant. Both are deadlock-free on a mesh; the
/// baseline is X-Y (Table 1). Y-X is provided for traffic-shaping studies
/// (it moves the request-convergence hotspots around the corner
/// controllers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingAlgorithm {
    /// Route along X (columns) first, then Y. The Table-1 baseline.
    XY,
    /// Route along Y (rows) first, then X.
    YX,
}

/// Router pipeline depth (Table 1 baseline: 5-stage; Figure 17 compares
/// against a 2-stage design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterPipeline {
    /// BW → RC → VA → SA → ST, the Table-1 baseline.
    FiveStage,
    /// Aggressive two-stage router (setup → ST) evaluated in Figure 17.
    TwoStage,
}

impl RouterPipeline {
    /// Cycles a flit spends inside the router before switch traversal,
    /// assuming no contention (pipeline depth minus the traversal stage).
    #[must_use]
    pub fn min_residency(&self) -> Cycle {
        match self {
            RouterPipeline::FiveStage => 4,
            RouterPipeline::TwoStage => 1,
        }
    }
}

/// NoC parameters (Table 1: 5-stage routers, 128-bit flits, 5-flit buffers,
/// 4 VCs per port, X-Y routing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Virtual channels per input port. Split evenly between the request and
    /// response virtual networks to avoid protocol deadlock.
    pub vcs_per_port: usize,
    /// Buffer depth per VC, in flits.
    pub buffer_depth: usize,
    /// Flit width in bits (used to compute flits per message).
    pub flit_bits: usize,
    /// Router pipeline depth.
    pub pipeline: RouterPipeline,
    /// Whether prioritized messages may bypass the router pipeline
    /// (Section 3.3 / Figure 10).
    pub bypass_enabled: bool,
    /// Starvation guard: a normal-priority flit wins over a high-priority one
    /// if its age exceeds the high-priority flit's age by more than this many
    /// cycles (Section 3.3).
    pub starvation_age_guard: u32,
    /// Link traversal latency in cycles.
    pub link_latency: Cycle,
    /// Multiplier used when accumulating so-far delays across clock domains
    /// (the paper's `FREQ_MULT`). With a single clock domain this is 1.
    pub freq_mult: u32,
    /// Width of the so-far-delay ("age") field carried in message headers,
    /// in bits. Table 1 / Section 3.1: 12 bits (values saturate at 4095).
    pub age_bits: u32,
    /// Dimension-order routing variant.
    pub routing: RoutingAlgorithm,
    /// Starvation-avoidance mechanism for prioritized arbitration.
    pub starvation: StarvationPolicy,
}

/// How prioritized arbitration treats competing flits (Section 3.3
/// discusses the first two mechanisms; the last two are research ablations
/// reachable via `--policy arb=<name>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StarvationPolicy {
    /// The paper's mechanism: a normal flit wins over a high-priority one
    /// when it is older by more than the configured guard
    /// (`starvation_age_guard`).
    AgeGuard,
    /// The batching alternative the paper cites: time is divided into
    /// intervals of the given length; flits from an older batch beat any
    /// priority difference.
    Batching {
        /// Batch interval in cycles.
        interval: u32,
    },
    /// Pure global-age arbitration: the oldest flit wins regardless of its
    /// priority class (the "oldest-first" ablation baseline).
    OldestFirst,
    /// Pure static-priority arbitration: the priority class alone decides;
    /// ages never override it (no starvation protection — the watchdog is
    /// the backstop).
    StaticPriority,
}

impl NocConfig {
    /// Maximum representable age value (saturating).
    #[must_use]
    pub fn max_age(&self) -> u32 {
        (1u32 << self.age_bits) - 1
    }
}

/// Memory request scheduling policy at the controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSchedPolicy {
    /// First-ready, first-come-first-served (row hits first). The baseline.
    FrFcfs,
    /// FR-FCFS with a cap on consecutive row hits per bank, bounding the
    /// starvation row-hit streaks can inflict on row-miss requests.
    FrFcfsCap(u32),
    /// Strict arrival order, for ablation.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Leave the row open after an access (the baseline; rewards locality).
    Open,
    /// Precharge after every access (uniform latency, no hits).
    Closed,
}

/// Memory system parameters (Table 1: DDR-800, bus multiplier 5, bank busy
/// 22 cycles, rank delay 2, read-write delay 3, 16 banks per controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of memory controllers attached at mesh corners (4 baseline,
    /// 2 in the Figure 16c study and the 16-core system).
    pub num_controllers: usize,
    /// DRAM banks behind each controller. Table 1: 16.
    pub banks_per_controller: usize,
    /// Core cycles per DRAM cycle ("Memory Bus Multiplier: 5").
    pub bus_multiplier: u32,
    /// Bank occupancy for a row activation + access, in DRAM cycles
    /// ("Bank Busy Time: 22 cycles").
    pub bank_busy: u32,
    /// Extra bus delay when consecutive commands target different ranks
    /// ("Rank Delay: 2 cycles"). Banks are split evenly across two ranks.
    pub rank_delay: u32,
    /// Bus turnaround penalty when switching between reads and writes
    /// ("Read-Write Delay: 3 cycles").
    pub read_write_delay: u32,
    /// Fixed controller pipeline latency in core cycles
    /// ("Memory CTL latency").
    pub ctl_latency: Cycle,
    /// Interval between periodic refreshes, in DRAM cycles.
    pub refresh_period: u32,
    /// Duration of one refresh (all banks busy), in DRAM cycles.
    pub refresh_duration: u32,
    /// DRAM row (page) size in bytes; consecutive lines within a row enjoy
    /// row-buffer hits.
    pub row_bytes: usize,
    /// Column access latency on a row-buffer hit, in DRAM cycles.
    pub row_hit_latency: u32,
    /// Data burst occupancy of the shared data bus per 64 B line, in DRAM
    /// cycles.
    pub burst_latency: u32,
    /// Scheduling policy.
    pub scheduler: MemSchedPolicy,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

/// Scheme-1 (late-response expediting) parameters, Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheme1Config {
    /// Whether Scheme-1 is active.
    pub enabled: bool,
    /// A response is "late" when its so-far delay exceeds
    /// `threshold_factor × Delay_avg` of its application. Default 1.2;
    /// Figure 16a sweeps {1.0, 1.2, 1.4}.
    pub threshold_factor: f64,
    /// Period (in cycles) at which cores send their current threshold to the
    /// memory controllers (the paper's "every 1 ms", scaled to our
    /// measurement window).
    pub update_period: Cycle,
}

/// Scheme-2 (idle-bank request expediting) parameters, Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme2Config {
    /// Whether Scheme-2 is active.
    pub enabled: bool,
    /// Sliding-window length `T` of the per-node Bank History Table, in
    /// cycles. Default 200; Figure 16b sweeps {100, 200, 400}.
    pub history_window: Cycle,
    /// A request is expedited when fewer than `idle_threshold` requests were
    /// sent to its bank within the window. Default 1.
    pub idle_threshold: u32,
}

/// Request-injection policy names accepted by the registry (decision
/// point 1: the priority an L2 miss gets when it enters the request
/// network). See `DESIGN.md` §10 for the registry contract.
pub const REQUEST_POLICIES: &[&str] = &["baseline", "scheme2", "oldest-first", "static"];

/// Response-injection policy names accepted by the registry (decision
/// point 2: the priority a memory controller gives a reply).
pub const RESPONSE_POLICIES: &[&str] = &["baseline", "scheme1", "oldest-first", "static"];

/// Named prioritization-policy selection (the string-keyed registry).
///
/// `None` in a slot means "derive from the scheme flags": the request slot
/// resolves to `scheme2` when [`Scheme2Config::enabled`] is set and
/// `baseline` otherwise, and likewise the response slot resolves to
/// `scheme1` or `baseline`. This keeps every pre-existing configuration —
/// including the golden-result suite — byte-identical: selecting nothing
/// selects exactly the hardwired behavior this layer replaced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyConfig {
    /// Request-injection policy name (see [`REQUEST_POLICIES`]), or `None`
    /// to derive from `scheme2.enabled`.
    pub request: Option<String>,
    /// Response-injection policy name (see [`RESPONSE_POLICIES`]), or
    /// `None` to derive from `scheme1.enabled`.
    pub response: Option<String>,
}

impl PolicyConfig {
    /// The request-policy name this configuration resolves to.
    #[must_use]
    pub fn request_name(&self, scheme2_enabled: bool) -> &str {
        match &self.request {
            Some(name) => name,
            None if scheme2_enabled => "scheme2",
            None => "baseline",
        }
    }

    /// The response-policy name this configuration resolves to.
    #[must_use]
    pub fn response_name(&self, scheme1_enabled: bool) -> &str {
        match &self.response {
            Some(name) => name,
            None if scheme1_enabled => "scheme1",
            None => "baseline",
        }
    }
}

/// A parsed `--policy req=<name>,resp=<name>,arb=<name>` override from the
/// sweep CLI. Unset slots leave the configuration untouched, so a single
/// override composes with each binary's own scheme/config sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PolicyOverride {
    /// Request-injection policy to select, if any.
    pub request: Option<String>,
    /// Response-injection policy to select, if any.
    pub response: Option<String>,
    /// Arbitration policy to select, if any.
    pub arbitration: Option<StarvationPolicy>,
}

impl PolicyOverride {
    /// Whether the override selects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.request.is_none() && self.response.is_none() && self.arbitration.is_none()
    }

    /// Parses a `key=value` list, e.g. `req=scheme2,resp=scheme1` or
    /// `arb=batching:2000`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, unknown policy
    /// names, or malformed values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = PolicyOverride::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("--policy: expected key=value, got {part:?}"))?;
            match key {
                "req" | "request" => {
                    if !REQUEST_POLICIES.contains(&value) {
                        return Err(format!(
                            "--policy: unknown request policy {value:?} (known: {})",
                            REQUEST_POLICIES.join(", ")
                        ));
                    }
                    out.request = Some(value.to_string());
                }
                "resp" | "response" => {
                    if !RESPONSE_POLICIES.contains(&value) {
                        return Err(format!(
                            "--policy: unknown response policy {value:?} (known: {})",
                            RESPONSE_POLICIES.join(", ")
                        ));
                    }
                    out.response = Some(value.to_string());
                }
                "arb" | "arbitration" => {
                    out.arbitration = Some(parse_arbitration(value)?);
                }
                _ => {
                    return Err(format!(
                        "--policy: unknown key {key:?} (known: req, resp, arb)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Applies the selected slots to a configuration, leaving unset slots
    /// untouched.
    pub fn apply(&self, cfg: &mut SystemConfig) {
        if let Some(req) = &self.request {
            cfg.policy.request = Some(req.clone());
        }
        if let Some(resp) = &self.response {
            cfg.policy.response = Some(resp.clone());
        }
        if let Some(arb) = self.arbitration {
            cfg.noc.starvation = arb;
        }
    }
}

fn parse_arbitration(value: &str) -> Result<StarvationPolicy, String> {
    if let Some(interval) = value.strip_prefix("batching:") {
        let interval: u32 = interval
            .parse()
            .map_err(|_| format!("--policy: bad batching interval {interval:?}"))?;
        if interval == 0 {
            return Err("--policy: batching interval must be positive".to_string());
        }
        return Ok(StarvationPolicy::Batching { interval });
    }
    match value {
        "age-guard" => Ok(StarvationPolicy::AgeGuard),
        "oldest-first" => Ok(StarvationPolicy::OldestFirst),
        "static" => Ok(StarvationPolicy::StaticPriority),
        _ => Err(format!(
            "--policy: unknown arbitration policy {value:?} \
             (known: age-guard, batching:<interval>, oldest-first, static)"
        )),
    }
}

/// Liveness watchdog parameters.
///
/// The watchdog observes the running system from the outside — it never
/// changes arbitration — and raises typed violations (deadlock, starvation,
/// lost/duplicated transactions, age-field saturation) with diagnostic
/// snapshots instead of letting the simulation hang or panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Whether the watchdog runs at all.
    pub enabled: bool,
    /// Declare deadlock when no flit traverses any router for this many
    /// cycles while transactions are in flight. Must comfortably exceed the
    /// longest legitimate quiet period (a refresh plus a full DRAM access).
    pub deadlock_cycles: Cycle,
    /// Declare starvation when a buffered flit has waited longer than
    /// `starvation_factor × starvation_age_guard` cycles without winning
    /// arbitration. Uses wall-clock waiting time, not the (saturating)
    /// in-header age field.
    pub starvation_factor: u32,
    /// Period of the expensive scans (per-router queue sweeps). Cheap
    /// checks run every cycle.
    pub poll_period: Cycle,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            deadlock_cycles: 10_000,
            starvation_factor: 8,
            poll_period: 1_000,
        }
    }
}

/// Recovery parameters for fault-dropped messages.
///
/// When the fault model drops a request or response packet, the originating
/// tile notices via a per-transaction timeout and re-injects, with
/// exponential backoff, up to `max_retries` times. With retries exhausted
/// the transaction is reported lost (a watchdog violation) rather than
/// hanging the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Whether timed-out transactions are re-injected.
    pub enabled: bool,
    /// Base per-transaction timeout in cycles; attempt `n` waits
    /// `timeout << n` (exponential backoff) before re-injecting.
    pub timeout: Cycle,
    /// Maximum number of re-injections per transaction.
    pub max_retries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            timeout: 20_000,
            max_retries: 4,
        }
    }
}

/// Simulation-kernel strategy: how the system advances time.
///
/// Both kernels execute the exact same per-cycle semantics; the event
/// kernel merely skips cycles it can prove are no-ops (every core blocked,
/// network drained, no controller or scheduler activity due). Results are
/// bit-identical by construction — the kernel is a speed knob, not a model
/// knob — which is why it lives in the configuration rather than the API
/// surface: callers pick it per run (`--kernel cycle|event`) without any
/// component caring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// Classic cycle-driven scanning: every component is polled every
    /// cycle. The reference kernel, and the default.
    #[default]
    Cycle,
    /// Event-wheel kernel: components report their next wake-up cycle and
    /// provably idle spans are skipped wholesale.
    Event,
}

impl KernelKind {
    /// Parses a `--kernel` CLI value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown kernel names.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "cycle" => Ok(KernelKind::Cycle),
            "event" => Ok(KernelKind::Event),
            _ => Err(format!(
                "--kernel: unknown kernel {value:?} (known: cycle, event)"
            )),
        }
    }

    /// The CLI name of this kernel.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Cycle => "cycle",
            KernelKind::Event => "event",
        }
    }
}

/// Complete system configuration (the union of Table 1 and the scheme
/// parameters of Section 3).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Mesh dimensions.
    pub topology: TopologyConfig,
    /// Core parameters.
    pub cpu: CpuConfig,
    /// Private L1 parameters.
    pub l1: L1Config,
    /// Shared L2 parameters.
    pub l2: L2Config,
    /// Network parameters.
    pub noc: NocConfig,
    /// Memory system parameters.
    pub mem: MemConfig,
    /// Scheme-1 parameters.
    pub scheme1: Scheme1Config,
    /// Scheme-2 parameters.
    pub scheme2: Scheme2Config,
    /// Named prioritization-policy selection; defaults derive from the
    /// scheme flags (see [`PolicyConfig`]).
    pub policy: PolicyConfig,
    /// Master RNG seed; every component derives its stream from this.
    pub seed: u64,
    /// Sampling interval for the bank idleness monitor (Figures 6, 13, 14).
    pub idleness_sample_period: Cycle,
    /// Fault-injection plan (empty by default: a healthy machine).
    pub faults: FaultPlan,
    /// Liveness watchdog parameters.
    pub watchdog: WatchdogConfig,
    /// Dropped-message recovery parameters.
    pub recovery: RecoveryConfig,
    /// Simulation-kernel strategy (cycle-driven scanning vs event wheel).
    /// Bit-identical results either way; `Event` skips provably idle spans.
    pub kernel: KernelKind,
}

impl SystemConfig {
    /// The paper's Table-1 baseline: 32 cores on a 4×8 mesh with 4 corner
    /// memory controllers.
    #[must_use]
    pub fn baseline_32() -> Self {
        SystemConfig {
            topology: TopologyConfig::mesh(8, 4),
            cpu: CpuConfig {
                window_size: 128,
                lsq_size: 64,
                issue_width: 4,
                commit_width: 4,
            },
            l1: L1Config {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                latency: 3,
            },
            l2: L2Config {
                bank_size_bytes: 512 * 1024,
                line_bytes: 64,
                associativity: 16,
                latency: 10,
                mshrs_per_bank: 32,
            },
            noc: NocConfig {
                vcs_per_port: 4,
                buffer_depth: 5,
                flit_bits: 128,
                pipeline: RouterPipeline::FiveStage,
                bypass_enabled: true,
                starvation_age_guard: 1000,
                link_latency: 1,
                freq_mult: 1,
                age_bits: 12,
                routing: RoutingAlgorithm::XY,
                starvation: StarvationPolicy::AgeGuard,
            },
            // DRAM timings are expressed in DRAM cycles and scaled by the
            // bus multiplier. Table 1 gives core-cycle figures ("Bank Busy
            // Time: 22 cycles"); the values below are calibrated so the
            // end-to-end latency distributions (Figures 4-5) match the
            // paper's shape under the synthetic workloads — see DESIGN.md
            // for the calibration discussion.
            mem: MemConfig {
                num_controllers: 4,
                banks_per_controller: 16,
                bus_multiplier: 5,
                bank_busy: 10,
                rank_delay: 1,
                read_write_delay: 1,
                ctl_latency: 20,
                refresh_period: 3120,
                refresh_duration: 14,
                row_bytes: 8192,
                row_hit_latency: 4,
                burst_latency: 3,
                scheduler: MemSchedPolicy::FrFcfs,
                page_policy: PagePolicy::Open,
            },
            scheme1: Scheme1Config {
                enabled: false,
                threshold_factor: 1.2,
                update_period: 10_000,
            },
            scheme2: Scheme2Config {
                enabled: false,
                history_window: 200,
                idle_threshold: 1,
            },
            policy: PolicyConfig::default(),
            seed: 0x0c5e_ed12,
            idleness_sample_period: 100,
            faults: FaultPlan::none(),
            watchdog: WatchdogConfig::default(),
            recovery: RecoveryConfig::default(),
            kernel: KernelKind::default(),
        }
    }

    /// The 16-core system of Figure 15: 4×4 mesh, 2 memory controllers at
    /// opposite corners, all other parameters unchanged.
    #[must_use]
    pub fn baseline_16() -> Self {
        let mut cfg = Self::baseline_32();
        cfg.topology = TopologyConfig::mesh(4, 4);
        cfg.mem.num_controllers = 2;
        cfg
    }

    /// Hundreds-cores scale point: 256 cores on a 16×16 tile grid, 4
    /// memory controllers. The fabric defaults to mesh; swap it with
    /// [`TopologyOverride`] or by setting `topology.kind`.
    #[must_use]
    pub fn baseline_256() -> Self {
        let mut cfg = Self::baseline_32();
        cfg.topology = TopologyConfig::mesh(16, 16);
        cfg
    }

    /// Thousand-cores scale point: 1024 cores on a 32×32 tile grid, 4
    /// memory controllers.
    #[must_use]
    pub fn baseline_1024() -> Self {
        let mut cfg = Self::baseline_32();
        cfg.topology = TopologyConfig::mesh(32, 32);
        cfg
    }

    /// Enables Scheme-1 with its default parameters.
    #[must_use]
    pub fn with_scheme1(mut self) -> Self {
        self.scheme1.enabled = true;
        self
    }

    /// Enables Scheme-2 with its default parameters.
    #[must_use]
    pub fn with_scheme2(mut self) -> Self {
        self.scheme2.enabled = true;
        self
    }

    /// Enables both schemes (the paper's headline configuration).
    #[must_use]
    pub fn with_both_schemes(self) -> Self {
        self.with_scheme1().with_scheme2()
    }

    /// Number of cores (one application per core).
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.topology.width < 2 || self.topology.height < 2 {
            return Err(ConfigError::MeshTooSmall {
                width: self.topology.width,
                height: self.topology.height,
            });
        }
        match self.topology.kind {
            TopologyKind::Mesh | TopologyKind::Torus | TopologyKind::Express => {
                if self.topology.concentration != 1 {
                    return Err(ConfigError::BadConcentration {
                        concentration: self.topology.concentration,
                        kind: self.topology.kind,
                    });
                }
            }
            TopologyKind::CMesh => {
                let (cx, cy) = match self.topology.concentration {
                    // c=1 degenerates to a mesh and is allowed; c=2 packs
                    // 2×1 tile blocks, c=4 packs 2×2.
                    1 => (1u16, 1u16),
                    2 => (2, 1),
                    4 => (2, 2),
                    other => {
                        return Err(ConfigError::BadConcentration {
                            concentration: other,
                            kind: self.topology.kind,
                        })
                    }
                };
                if !self.topology.width.is_multiple_of(cx)
                    || !self.topology.height.is_multiple_of(cy)
                    || self.topology.width / cx < 2
                    || self.topology.height / cy < 2
                {
                    return Err(ConfigError::ConcentrationDoesNotDivide {
                        concentration: self.topology.concentration,
                        width: self.topology.width,
                        height: self.topology.height,
                    });
                }
            }
        }
        match self.topology.kind {
            TopologyKind::Express => {
                let skip = self.topology.express_skip;
                if skip < 2 || skip >= self.topology.width.min(self.topology.height) {
                    return Err(ConfigError::BadExpressSkip {
                        skip,
                        width: self.topology.width,
                        height: self.topology.height,
                    });
                }
            }
            _ => {
                if self.topology.express_skip != 0 {
                    return Err(ConfigError::BadExpressSkip {
                        skip: self.topology.express_skip,
                        width: self.topology.width,
                        height: self.topology.height,
                    });
                }
            }
        }
        if self.topology.kind == TopologyKind::Torus && !self.noc.vcs_per_port.is_multiple_of(4) {
            return Err(ConfigError::TorusNeedsDatelineVcs(self.noc.vcs_per_port));
        }
        if self.mem.num_controllers > self.topology.num_nodes() {
            return Err(ConfigError::ControllersExceedNodes {
                controllers: self.mem.num_controllers,
                nodes: self.topology.num_nodes(),
            });
        }
        if !matches!(self.mem.num_controllers, 1 | 2 | 4) {
            return Err(ConfigError::UnsupportedControllerCount(
                self.mem.num_controllers,
            ));
        }
        if self.noc.vcs_per_port < 2 || !self.noc.vcs_per_port.is_multiple_of(2) {
            return Err(ConfigError::BadVcCount(self.noc.vcs_per_port));
        }
        if self.noc.buffer_depth == 0 {
            return Err(ConfigError::ZeroBufferDepth);
        }
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err(ConfigError::LineSizeMismatch {
                l1: self.l1.line_bytes,
                l2: self.l2.line_bytes,
            });
        }
        if !self.l1.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineSizeNotPowerOfTwo(self.l1.line_bytes));
        }
        if self.l1.size_bytes == 0 || !self.l1.size_bytes.is_multiple_of(self.l1.line_bytes) {
            return Err(ConfigError::CacheSizeNotLineMultiple {
                cache: "L1",
                size: self.l1.size_bytes,
                line: self.l1.line_bytes,
            });
        }
        let l2_quantum = self.l2.line_bytes * self.l2.associativity.max(1);
        if self.l2.bank_size_bytes == 0
            || self.l2.associativity == 0
            || !self.l2.bank_size_bytes.is_multiple_of(l2_quantum)
        {
            return Err(ConfigError::CacheSizeNotLineMultiple {
                cache: "L2",
                size: self.l2.bank_size_bytes,
                line: l2_quantum,
            });
        }
        if self.scheme1.threshold_factor <= 0.0 {
            return Err(ConfigError::BadThresholdFactor(
                self.scheme1.threshold_factor,
            ));
        }
        if self.watchdog.enabled
            && (self.watchdog.deadlock_cycles == 0 || self.watchdog.poll_period == 0)
        {
            return Err(ConfigError::ZeroWatchdogInterval);
        }
        if self.recovery.enabled && self.recovery.timeout == 0 {
            return Err(ConfigError::ZeroRecoveryTimeout);
        }
        if let Some(name) = &self.policy.request {
            if !REQUEST_POLICIES.contains(&name.as_str()) {
                return Err(ConfigError::UnknownPolicy {
                    slot: "request",
                    name: name.clone(),
                });
            }
        }
        if let Some(name) = &self.policy.response {
            if !RESPONSE_POLICIES.contains(&name.as_str()) {
                return Err(ConfigError::UnknownPolicy {
                    slot: "response",
                    name: name.clone(),
                });
            }
        }
        self.faults
            .validate()
            .map_err(ConfigError::InvalidFaultPlan)?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline_32()
    }
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Mesh must be at least 2×2.
    MeshTooSmall {
        /// Configured width.
        width: u16,
        /// Configured height.
        height: u16,
    },
    /// Memory controllers are placed at corners; only 1, 2 or 4 supported.
    UnsupportedControllerCount(usize),
    /// Need an even number (≥2) of VCs to split into two virtual networks.
    BadVcCount(usize),
    /// VC buffers must hold at least one flit.
    ZeroBufferDepth,
    /// L1 and L2 must agree on the line size.
    LineSizeMismatch {
        /// L1 line size.
        l1: usize,
        /// L2 line size.
        l2: usize,
    },
    /// Line size must be a power of two for address decomposition.
    LineSizeNotPowerOfTwo(usize),
    /// Scheme-1 threshold factor must be positive.
    BadThresholdFactor(f64),
    /// More memory controllers than mesh nodes to attach them to.
    ControllersExceedNodes {
        /// Configured controller count.
        controllers: usize,
        /// Nodes in the mesh.
        nodes: usize,
    },
    /// A cache capacity is zero or not a multiple of its allocation quantum.
    CacheSizeNotLineMultiple {
        /// Which cache ("L1" or "L2").
        cache: &'static str,
        /// Configured capacity in bytes.
        size: usize,
        /// Allocation quantum (line size, or line × associativity).
        line: usize,
    },
    /// Watchdog intervals must be positive when the watchdog is enabled.
    ZeroWatchdogInterval,
    /// Recovery timeout must be positive when recovery is enabled.
    ZeroRecoveryTimeout,
    /// A prioritization-policy name is not in the registry.
    UnknownPolicy {
        /// Which slot ("request" or "response").
        slot: &'static str,
        /// The unrecognized name.
        name: String,
    },
    /// The fault plan failed validation.
    InvalidFaultPlan(FaultError),
    /// Concentration factor invalid for the selected fabric (must be 1 on
    /// non-concentrated fabrics; 1, 2 or 4 on a concentrated mesh).
    BadConcentration {
        /// Configured tiles-per-router factor.
        concentration: u16,
        /// The fabric it was configured on.
        kind: TopologyKind,
    },
    /// The concentration blocks don't tile the grid, or the resulting
    /// router grid is smaller than 2×2.
    ConcentrationDoesNotDivide {
        /// Configured tiles-per-router factor.
        concentration: u16,
        /// Tile-grid width.
        width: u16,
        /// Tile-grid height.
        height: u16,
    },
    /// Express skip distance out of range (needs `2 ≤ skip < min(w, h)` on
    /// an express fabric, and exactly 0 elsewhere).
    BadExpressSkip {
        /// Configured skip distance.
        skip: u16,
        /// Tile-grid width.
        width: u16,
        /// Tile-grid height.
        height: u16,
    },
    /// Torus dateline deadlock avoidance splits each virtual network into
    /// two VC subclasses, so the VC count must be divisible by 4.
    TorusNeedsDatelineVcs(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MeshTooSmall { width, height } => {
                write!(f, "mesh {width}x{height} is smaller than 2x2")
            }
            ConfigError::UnsupportedControllerCount(n) => {
                write!(
                    f,
                    "unsupported memory controller count {n} (need 1, 2 or 4)"
                )
            }
            ConfigError::BadVcCount(n) => {
                write!(f, "virtual channel count {n} is not an even number >= 2")
            }
            ConfigError::ZeroBufferDepth => write!(f, "VC buffer depth is zero"),
            ConfigError::LineSizeMismatch { l1, l2 } => {
                write!(f, "L1 line size {l1} differs from L2 line size {l2}")
            }
            ConfigError::LineSizeNotPowerOfTwo(n) => {
                write!(f, "line size {n} is not a power of two")
            }
            ConfigError::BadThresholdFactor(x) => {
                write!(f, "scheme-1 threshold factor {x} is not positive")
            }
            ConfigError::ControllersExceedNodes { controllers, nodes } => {
                write!(
                    f,
                    "{controllers} memory controllers for a {nodes}-node mesh"
                )
            }
            ConfigError::CacheSizeNotLineMultiple { cache, size, line } => {
                write!(
                    f,
                    "{cache} capacity {size} B is not a positive multiple of {line} B"
                )
            }
            ConfigError::ZeroWatchdogInterval => {
                write!(f, "watchdog intervals must be positive")
            }
            ConfigError::ZeroRecoveryTimeout => {
                write!(f, "recovery timeout must be positive")
            }
            ConfigError::UnknownPolicy { slot, name } => {
                write!(f, "unknown {slot} policy {name:?}")
            }
            ConfigError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            ConfigError::BadConcentration {
                concentration,
                kind,
            } => {
                write!(
                    f,
                    "concentration factor {concentration} invalid on {} \
                     (cmesh supports 1, 2 or 4; other fabrics need 1)",
                    kind.name()
                )
            }
            ConfigError::ConcentrationDoesNotDivide {
                concentration,
                width,
                height,
            } => {
                write!(
                    f,
                    "concentration {concentration} does not tile a \
                     {width}x{height} grid into a router mesh of at least 2x2"
                )
            }
            ConfigError::BadExpressSkip {
                skip,
                width,
                height,
            } => {
                write!(
                    f,
                    "express skip {skip} out of range for a {width}x{height} grid \
                     (need 2 <= skip < min(width, height) on express, 0 elsewhere)"
                )
            }
            ConfigError::TorusNeedsDatelineVcs(n) => {
                write!(
                    f,
                    "torus dateline VCs need a VC count divisible by 4, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::InvalidFaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = SystemConfig::baseline_32();
        assert_eq!(cfg.topology.num_nodes(), 32);
        assert_eq!(cfg.cpu.window_size, 128);
        assert_eq!(cfg.cpu.lsq_size, 64);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.num_sets(), 512);
        assert_eq!(cfg.l2.sets_per_bank(), 512);
        assert_eq!(cfg.noc.vcs_per_port, 4);
        assert_eq!(cfg.noc.buffer_depth, 5);
        assert_eq!(cfg.noc.flit_bits, 128);
        assert_eq!(cfg.mem.num_controllers, 4);
        assert_eq!(cfg.mem.banks_per_controller, 16);
        // DRAM timing values are calibrated (see the MemConfig defaults);
        // sanity-check the structural knobs instead of exact figures.
        assert!(cfg.mem.bank_busy >= cfg.mem.row_hit_latency);
        assert!(cfg.mem.rank_delay >= 1);
        assert!(cfg.mem.read_write_delay >= 1);
        cfg.validate().expect("baseline must be valid");
    }

    #[test]
    fn baseline_16_shrinks_mesh_and_mcs() {
        let cfg = SystemConfig::baseline_16();
        assert_eq!(cfg.topology.num_nodes(), 16);
        assert_eq!(cfg.mem.num_controllers, 2);
        cfg.validate().expect("16-core baseline must be valid");
    }

    #[test]
    fn scheme_toggles() {
        let cfg = SystemConfig::baseline_32().with_both_schemes();
        assert!(cfg.scheme1.enabled);
        assert!(cfg.scheme2.enabled);
        let cfg = SystemConfig::baseline_32().with_scheme1();
        assert!(cfg.scheme1.enabled);
        assert!(!cfg.scheme2.enabled);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SystemConfig::baseline_32();
        cfg.topology.width = 1;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::MeshTooSmall { .. })
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.mem.num_controllers = 3;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnsupportedControllerCount(3))
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.noc.vcs_per_port = 3;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadVcCount(3))));

        let mut cfg = SystemConfig::baseline_32();
        cfg.l1.line_bytes = 32;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LineSizeMismatch { .. })
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.scheme1.threshold_factor = 0.0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadThresholdFactor(_))
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.mem.num_controllers = 64;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ControllersExceedNodes { .. })
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.l1.size_bytes = 32 * 1024 + 1;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheSizeNotLineMultiple { cache: "L1", .. })
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.l2.bank_size_bytes = 512 * 1024 + 64;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheSizeNotLineMultiple { cache: "L2", .. })
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.watchdog.deadlock_cycles = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroWatchdogInterval)
        ));
        cfg.watchdog.enabled = false;
        assert!(cfg.validate().is_ok(), "disabled watchdog is unchecked");

        let mut cfg = SystemConfig::baseline_32();
        cfg.recovery.timeout = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroRecoveryTimeout)
        ));

        let mut cfg = SystemConfig::baseline_32();
        cfg.faults = crate::faults::FaultPlan::uniform_drop(1, 2.0);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidFaultPlan(_))
        ));
    }

    #[test]
    fn topology_baselines_are_valid_on_every_fabric() {
        for base in [
            SystemConfig::baseline_16(),
            SystemConfig::baseline_32(),
            SystemConfig::baseline_256(),
            SystemConfig::baseline_1024(),
        ] {
            let (w, h) = (base.topology.width, base.topology.height);
            for topo in [
                TopologyConfig::mesh(w, h),
                TopologyConfig::torus(w, h),
                TopologyConfig::cmesh(w, h, 2),
                TopologyConfig::cmesh(w, h, 4),
                TopologyConfig::express(w, h, 2),
            ] {
                // 4×4 with c=4 gives a 2×2 router grid — still valid.
                let mut cfg = base.clone();
                cfg.topology = topo;
                cfg.validate()
                    .unwrap_or_else(|e| panic!("{} must validate: {e}", topo.label()));
            }
        }
        assert_eq!(SystemConfig::baseline_256().num_cores(), 256);
        assert_eq!(SystemConfig::baseline_1024().num_cores(), 1024);
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        // Concentration 0 (and any value outside {1,2,4}) is typed, not a
        // deep panic in network construction.
        let mut cfg = SystemConfig::baseline_256();
        cfg.topology = TopologyConfig::cmesh(16, 16, 0);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadConcentration {
                concentration: 0,
                ..
            })
        ));
        cfg.topology = TopologyConfig::cmesh(16, 16, 3);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadConcentration { .. })
        ));

        // Blocks must tile the grid and leave a router mesh of >= 2x2.
        cfg.topology = TopologyConfig::cmesh(5, 4, 2);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ConcentrationDoesNotDivide { .. })
        ));
        cfg.topology = TopologyConfig::cmesh(2, 2, 4);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ConcentrationDoesNotDivide { .. })
        ));

        // Concentration on a non-concentrated fabric is rejected.
        cfg.topology = TopologyConfig::mesh(16, 16);
        cfg.topology.concentration = 2;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadConcentration { .. })
        ));

        // Express skip must fit strictly inside both dimensions.
        let mut cfg = SystemConfig::baseline_32();
        cfg.topology = TopologyConfig::express(8, 4, 4);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadExpressSkip { skip: 4, .. })
        ));
        cfg.topology = TopologyConfig::express(8, 4, 1);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadExpressSkip { skip: 1, .. })
        ));
        // ... and a stray skip on a plain mesh is rejected too.
        cfg.topology = TopologyConfig::mesh(8, 4);
        cfg.topology.express_skip = 2;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadExpressSkip { skip: 2, .. })
        ));

        // Torus needs the VC count divisible by 4 for dateline subclasses.
        let mut cfg = SystemConfig::baseline_32();
        cfg.topology = TopologyConfig::torus(8, 4);
        cfg.noc.vcs_per_port = 6;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TorusNeedsDatelineVcs(6))
        ));
        cfg.noc.vcs_per_port = 4;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn topology_override_parses_and_applies() {
        let ov = TopologyOverride::parse("torus").expect("valid spec");
        assert_eq!(ov.kind, Some(TopologyKind::Torus));
        let mut cfg = SystemConfig::baseline_32();
        ov.apply(&mut cfg);
        assert_eq!(cfg.topology, TopologyConfig::torus(8, 4));

        let ov = TopologyOverride::parse("cmesh:c=2,mc=edge").expect("valid spec");
        let mut cfg = SystemConfig::baseline_256();
        ov.apply(&mut cfg);
        assert_eq!(cfg.topology.kind, TopologyKind::CMesh);
        assert_eq!(cfg.topology.concentration, 2);
        assert_eq!(cfg.topology.mc_placement, McPlacement::Edge);
        assert_eq!(cfg.topology.width, 16, "grid dimensions are preserved");

        // Per-fabric defaults fill unspecified parameters.
        let ov = TopologyOverride::parse("cmesh").expect("valid spec");
        let mut cfg = SystemConfig::baseline_256();
        ov.apply(&mut cfg);
        assert_eq!(cfg.topology.concentration, 4);
        let ov = TopologyOverride::parse("express").expect("valid spec");
        let mut cfg = SystemConfig::baseline_256();
        ov.apply(&mut cfg);
        assert_eq!(cfg.topology.express_skip, 2);

        // Switching back to mesh clears fabric parameters.
        let ov = TopologyOverride::parse("mesh").expect("valid spec");
        let mut cfg = SystemConfig::baseline_256();
        cfg.topology = TopologyConfig::cmesh(16, 16, 4);
        ov.apply(&mut cfg);
        assert_eq!(cfg.topology, TopologyConfig::mesh(16, 16));

        // mc-only override keeps the fabric.
        let ov = TopologyOverride::parse("").expect("empty is fine");
        assert!(ov.is_empty());
    }

    #[test]
    fn topology_override_rejects_bad_specs() {
        assert!(TopologyOverride::parse("ring").is_err());
        assert!(TopologyOverride::parse("cmesh:c=x").is_err());
        assert!(TopologyOverride::parse("express:skip=").is_err());
        assert!(TopologyOverride::parse("torus:mc=middle").is_err());
        assert!(TopologyOverride::parse("mesh:speed=9").is_err());
        assert!(TopologyOverride::parse("mesh:c").is_err());
    }

    #[test]
    fn topology_labels_are_compact() {
        assert_eq!(TopologyConfig::mesh(8, 4).label(), "mesh:8x4");
        assert_eq!(TopologyConfig::torus(16, 16).label(), "torus:16x16");
        assert_eq!(TopologyConfig::cmesh(16, 16, 4).label(), "cmesh:16x16,c=4");
        let mut t = TopologyConfig::express(32, 32, 2);
        t.mc_placement = McPlacement::Center;
        assert_eq!(t.label(), "express:32x32,skip=2,mc=center");
    }

    #[test]
    fn age_field_saturates_at_4095() {
        let cfg = SystemConfig::baseline_32();
        assert_eq!(cfg.noc.max_age(), 4095);
    }

    #[test]
    fn pipeline_residency() {
        assert_eq!(RouterPipeline::FiveStage.min_residency(), 4);
        assert_eq!(RouterPipeline::TwoStage.min_residency(), 1);
    }

    #[test]
    fn new_policy_enums_default_to_paper_baseline() {
        let cfg = SystemConfig::baseline_32();
        assert_eq!(cfg.noc.routing, RoutingAlgorithm::XY);
        assert_eq!(cfg.noc.starvation, StarvationPolicy::AgeGuard);
        assert_eq!(cfg.mem.scheduler, MemSchedPolicy::FrFcfs);
        assert_eq!(cfg.mem.page_policy, PagePolicy::Open);
    }

    #[test]
    fn policy_names_derive_from_scheme_flags() {
        let cfg = SystemConfig::baseline_32();
        assert_eq!(cfg.policy, PolicyConfig::default());
        assert_eq!(cfg.policy.request_name(false), "baseline");
        assert_eq!(cfg.policy.request_name(true), "scheme2");
        assert_eq!(cfg.policy.response_name(false), "baseline");
        assert_eq!(cfg.policy.response_name(true), "scheme1");
        let explicit = PolicyConfig {
            request: Some("oldest-first".to_string()),
            response: Some("static".to_string()),
        };
        // Explicit names win regardless of the scheme flags.
        assert_eq!(explicit.request_name(true), "oldest-first");
        assert_eq!(explicit.response_name(true), "static");
    }

    #[test]
    fn validation_rejects_unknown_policy_names() {
        let mut cfg = SystemConfig::baseline_32();
        cfg.policy.request = Some("fifo".to_string());
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnknownPolicy {
                slot: "request",
                ..
            })
        ));
        let mut cfg = SystemConfig::baseline_32();
        cfg.policy.response = Some("scheme2".to_string());
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnknownPolicy {
                slot: "response",
                ..
            })
        ));
        let mut cfg = SystemConfig::baseline_32();
        cfg.policy.request = Some("scheme2".to_string());
        cfg.policy.response = Some("scheme1".to_string());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn policy_override_parses_and_applies() {
        let ov = PolicyOverride::parse("req=scheme2,resp=scheme1,arb=batching:2000")
            .expect("valid spec");
        assert_eq!(ov.request.as_deref(), Some("scheme2"));
        assert_eq!(ov.response.as_deref(), Some("scheme1"));
        assert_eq!(
            ov.arbitration,
            Some(StarvationPolicy::Batching { interval: 2000 })
        );
        let mut cfg = SystemConfig::baseline_32();
        ov.apply(&mut cfg);
        assert_eq!(cfg.policy.request.as_deref(), Some("scheme2"));
        assert_eq!(cfg.policy.response.as_deref(), Some("scheme1"));
        assert_eq!(
            cfg.noc.starvation,
            StarvationPolicy::Batching { interval: 2000 }
        );

        // Partial overrides leave the other slots untouched.
        let ov = PolicyOverride::parse("resp=oldest-first").expect("valid spec");
        assert!(ov.request.is_none());
        let mut cfg = SystemConfig::baseline_32();
        ov.apply(&mut cfg);
        assert!(cfg.policy.request.is_none());
        assert_eq!(cfg.policy.response.as_deref(), Some("oldest-first"));
        assert_eq!(cfg.noc.starvation, StarvationPolicy::AgeGuard);

        assert!(PolicyOverride::parse("").expect("empty is fine").is_empty());
        assert_eq!(
            PolicyOverride::parse("arb=age-guard").unwrap().arbitration,
            Some(StarvationPolicy::AgeGuard)
        );
        assert_eq!(
            PolicyOverride::parse("arb=oldest-first")
                .unwrap()
                .arbitration,
            Some(StarvationPolicy::OldestFirst)
        );
        assert_eq!(
            PolicyOverride::parse("arb=static").unwrap().arbitration,
            Some(StarvationPolicy::StaticPriority)
        );
    }

    #[test]
    fn policy_override_rejects_bad_specs() {
        assert!(PolicyOverride::parse("req=fifo").is_err());
        assert!(PolicyOverride::parse("resp=scheme2").is_err());
        assert!(PolicyOverride::parse("req").is_err());
        assert!(PolicyOverride::parse("mode=fast").is_err());
        assert!(PolicyOverride::parse("arb=batching:0").is_err());
        assert!(PolicyOverride::parse("arb=batching:x").is_err());
        assert!(PolicyOverride::parse("arb=lottery").is_err());
    }

    #[test]
    fn config_error_display_nonempty() {
        let errors: Vec<ConfigError> = vec![
            ConfigError::MeshTooSmall {
                width: 1,
                height: 1,
            },
            ConfigError::UnsupportedControllerCount(3),
            ConfigError::BadVcCount(3),
            ConfigError::ZeroBufferDepth,
            ConfigError::LineSizeMismatch { l1: 32, l2: 64 },
            ConfigError::LineSizeNotPowerOfTwo(48),
            ConfigError::BadThresholdFactor(-1.0),
            ConfigError::ControllersExceedNodes {
                controllers: 64,
                nodes: 32,
            },
            ConfigError::CacheSizeNotLineMultiple {
                cache: "L1",
                size: 1000,
                line: 64,
            },
            ConfigError::ZeroWatchdogInterval,
            ConfigError::ZeroRecoveryTimeout,
            ConfigError::UnknownPolicy {
                slot: "request",
                name: "fifo".to_string(),
            },
            ConfigError::InvalidFaultPlan(FaultError::BadProbability(2.0)),
            ConfigError::BadConcentration {
                concentration: 0,
                kind: TopologyKind::CMesh,
            },
            ConfigError::ConcentrationDoesNotDivide {
                concentration: 4,
                width: 5,
                height: 5,
            },
            ConfigError::BadExpressSkip {
                skip: 9,
                width: 8,
                height: 4,
            },
            ConfigError::TorusNeedsDatelineVcs(6),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
