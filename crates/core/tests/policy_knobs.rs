//! System-level coverage of the configurable policy knobs: routing,
//! starvation avoidance, memory scheduling and page policy all compose with
//! the full system and the schemes.

use noclat::{run_mix, MemSchedPolicy, RunLengths, SystemConfig};
use noclat_sim::config::{PagePolicy, RoutingAlgorithm, StarvationPolicy};
use noclat_workloads::workload;

fn quick() -> RunLengths {
    RunLengths {
        warmup: 2_000,
        measure: 15_000,
    }
}

fn assert_runs(cfg: &SystemConfig) -> noclat::MixResult {
    let apps = workload(2).apps();
    let r = run_mix(cfg, &apps, quick());
    for a in &r.per_app {
        assert!(a.ipc > 0.0, "core {} starved under {:?}", a.core, cfg.noc);
    }
    r
}

#[test]
fn yx_routing_runs_the_full_system() {
    let mut cfg = SystemConfig::baseline_32().with_both_schemes();
    cfg.noc.routing = RoutingAlgorithm::YX;
    let r = assert_runs(&cfg);
    // The heat-map must show forwarding activity somewhere.
    assert!(r.system.forwarding_heat().iter().sum::<u64>() > 0);
}

#[test]
fn routing_choice_changes_link_loads() {
    let apps = workload(8).apps();
    let mut xy = SystemConfig::baseline_32();
    xy.noc.routing = RoutingAlgorithm::XY;
    let mut yx = xy.clone();
    yx.noc.routing = RoutingAlgorithm::YX;
    let hx = run_mix(&xy, &apps, quick()).system.forwarding_heat();
    let hy = run_mix(&yx, &apps, quick()).system.forwarding_heat();
    assert_ne!(hx, hy, "X-Y and Y-X must distribute load differently");
}

#[test]
fn batching_starvation_policy_runs_with_schemes() {
    let mut cfg = SystemConfig::baseline_32().with_both_schemes();
    cfg.noc.starvation = StarvationPolicy::Batching { interval: 1_000 };
    let r = assert_runs(&cfg);
    assert!(
        r.system.network_stats().high_priority_injected.get() > 0,
        "schemes must still mark messages under batching"
    );
}

#[test]
fn capped_fr_fcfs_runs_and_serves_everything() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.mem.scheduler = MemSchedPolicy::FrFcfsCap(4);
    let r = assert_runs(&cfg);
    let reads: u64 = (0..4)
        .map(|m| r.system.controller_stats(m).reads.get())
        .sum();
    assert!(reads > 100, "capped scheduler served only {reads} reads");
}

#[test]
fn closed_page_policy_kills_row_hits_system_wide() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.mem.page_policy = PagePolicy::Closed;
    let r = assert_runs(&cfg);
    for m in 0..4 {
        assert_eq!(
            r.system.controller_stats(m).row_hit_rate(),
            0.0,
            "controller {m} hit a closed row"
        );
    }
}

#[test]
fn open_page_beats_closed_page_on_latency() {
    let apps = workload(8).apps();
    let lengths = quick();
    let open = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let mut closed_cfg = SystemConfig::baseline_32();
    closed_cfg.mem.page_policy = PagePolicy::Closed;
    let closed = run_mix(&closed_cfg, &apps, lengths);
    let mean = |r: &noclat::MixResult| {
        let mut h = noclat_sim::stats::Histogram::new(25, 4000);
        for c in 0..32 {
            h.merge(&r.system.tracker().app(c).total);
        }
        h.mean()
    };
    assert!(
        mean(&open) < mean(&closed),
        "open page ({:.0}) must beat closed page ({:.0})",
        mean(&open),
        mean(&closed)
    );
}
