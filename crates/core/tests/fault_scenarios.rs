//! Injected-fault scenarios: wedged hardware must surface as *structured
//! liveness violations* from the watchdog — never as a hung simulation —
//! and windowed faults must heal once their window closes.

use noclat::{LivenessViolation, Simulation, System, SystemConfig};
use noclat_sim::faults::{BankFault, BankFaultKind, CycleWindow, FaultPlan, RouterStall};
use noclat_workloads::{workload, SpecApp};

/// Builds the scenario system through the Simulation API, with the fault
/// plan attached where a harness would attach it.
fn build(cfg: SystemConfig, plan: FaultPlan, apps: &[SpecApp]) -> System {
    Simulation::builder(cfg)
        .fault_plan(plan)
        .workload(apps)
        .build()
        .expect("valid config")
        .into_system()
}

/// Stalling every router's arbitration forever wedges the whole mesh; the
/// watchdog must report a deadlock (with a usable snapshot) instead of the
/// run spinning silently.
#[test]
fn global_router_stall_is_reported_as_deadlock() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.deadlock_cycles = 2_000;
    // Recovery re-injection cannot help when no router arbitrates; keep it
    // out of the way so the scenario stays a pure detection test.
    cfg.recovery.enabled = false;
    let mut plan = FaultPlan::none();
    for node in 0..32 {
        plan.router_stalls.push(RouterStall {
            node,
            window: CycleWindow {
                start: 1_000,
                end: u64::MAX,
            },
        });
    }
    let apps = workload(2).apps();
    let mut sys = build(cfg, plan, &apps);
    // This returns (bounded by the cycle count) even though the mesh is
    // dead — the whole point of the watchdog is that nothing inside spins.
    sys.run(12_000);
    let deadlocks: Vec<_> = sys
        .violations()
        .iter()
        .filter(|v| matches!(v, LivenessViolation::Deadlock { .. }))
        .collect();
    assert!(
        !deadlocks.is_empty(),
        "a fully stalled mesh must be flagged as deadlock, got {:?}",
        sys.violations()
    );
    if let LivenessViolation::Deadlock {
        quiet_for,
        snapshot,
    } = deadlocks[0]
    {
        assert!(*quiet_for >= 2_000);
        assert!(snapshot.cycle > 1_000, "detected before the stall?");
        assert!(snapshot.txns_in_flight > 0, "idle mesh is not deadlock");
        assert_eq!(snapshot.queue_depths.len(), 32);
        assert!(
            snapshot.queue_depths.iter().any(|&d| d > 0),
            "deadlock snapshot must show where flits are stuck"
        );
    }
}

/// Stalling only the corner (memory-controller) routers keeps the rest of
/// the mesh moving, so no deadlock — but flits wedged behind the stalled
/// arbiters blow past the starvation bound and must be reported as such.
#[test]
fn corner_router_stalls_are_reported_as_starvation() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.starvation_factor = 2; // limit = 2 × 1000-cycle age guard
    cfg.watchdog.deadlock_cycles = 50_000; // keep deadlock out of the way
    cfg.recovery.enabled = false;
    let mut plan = FaultPlan::none();
    for node in [0usize, 7, 24, 31] {
        plan.router_stalls.push(RouterStall {
            node,
            window: CycleWindow {
                start: 2_000,
                end: 14_000,
            },
        });
    }
    let apps = workload(2).apps();
    let mut sys = build(cfg, plan, &apps);
    sys.run(14_000);
    let starved: Vec<_> = sys
        .violations()
        .iter()
        .filter(|v| matches!(v, LivenessViolation::Starvation { .. }))
        .collect();
    assert!(
        !starved.is_empty(),
        "flits wedged behind stalled corner routers must be flagged, got {:?}",
        sys.violations()
    );
    if let LivenessViolation::Starvation { waited, limit, .. } = starved[0] {
        assert!(waited >= limit, "reported wait below the configured limit");
        assert_eq!(*limit, 2_000);
    }
}

/// Disabling the anti-starvation age guard (`u32::MAX` can never be
/// exceeded by the saturating 12-bit age field) while priority traffic
/// flows must not neuter the watchdog: its wall-clock starvation bound
/// falls back to the age-field ceiling, and flits repeatedly losing
/// arbitration behind stalled corner routers are still flagged.
#[test]
fn disabled_age_guard_still_detects_starvation() {
    let mut cfg = SystemConfig::baseline_32().with_both_schemes();
    cfg.noc.starvation_age_guard = u32::MAX; // arbitration guard off
    cfg.watchdog.starvation_factor = 1; // limit falls back to max_age (4095)
    cfg.watchdog.deadlock_cycles = 50_000;
    cfg.recovery.enabled = false;
    let mut plan = FaultPlan::none();
    for node in [0usize, 7, 24, 31] {
        plan.router_stalls.push(RouterStall {
            node,
            window: CycleWindow {
                start: 2_000,
                end: 16_000,
            },
        });
    }
    let apps = workload(8).apps();
    let mut sys = build(cfg, plan, &apps);
    sys.run(16_000);
    let starved = sys
        .violations()
        .iter()
        .filter(|v| matches!(v, LivenessViolation::Starvation { .. }))
        .count();
    assert!(
        starved > 0,
        "guard-off starvation went undetected: {:?}",
        sys.violations()
    );
}

/// A windowed stall must heal: once the window closes the system drains and
/// the watchdog re-arms without further violations.
#[test]
fn windowed_stall_recovers_after_the_window() {
    let mut cfg = SystemConfig::baseline_32();
    cfg.watchdog.deadlock_cycles = 2_000;
    let mut plan = FaultPlan::none();
    for node in 0..32 {
        plan.router_stalls.push(RouterStall {
            node,
            window: CycleWindow {
                start: 2_000,
                end: 8_000,
            },
        });
    }
    let apps = workload(2).apps();
    let mut sys = build(cfg, plan, &apps);
    sys.run(8_000);
    let during = sys.violations().len();
    assert!(
        during > 0,
        "the 6k-cycle global stall must trip the watchdog"
    );
    sys.run(20_000);
    // Traffic flows again: cores commit and the network delivers.
    assert!(
        sys.network_stats().packets_delivered.get() > 0,
        "network never recovered after the stall window"
    );
    let after: Vec<_> = sys.violations().iter().skip(during).collect();
    assert!(
        after
            .iter()
            .all(|v| !matches!(v, LivenessViolation::Deadlock { .. })),
        "deadlock reported after the mesh healed: {after:?}"
    );
}

/// An offline DRAM bank window slows its controller but must not break
/// correctness: the run completes with zero lost transactions and no
/// conservation violations.
#[test]
fn offline_bank_window_degrades_gracefully() {
    let cfg = SystemConfig::baseline_32();
    let mut plan = FaultPlan::none();
    plan.banks.push(BankFault {
        controller: 0,
        bank: None,
        kind: BankFaultKind::Offline,
        window: CycleWindow {
            start: 3_000,
            end: 9_000,
        },
    });
    let apps = workload(2).apps();
    let mut sys = build(cfg, plan, &apps);
    sys.run(30_000);
    let rb = sys.robustness();
    assert_eq!(rb.lost_txns, 0, "an offline window must not lose work");
    assert!(
        sys.violations().iter().all(|v| !matches!(
            v,
            LivenessViolation::Lost { .. } | LivenessViolation::Duplicated { .. }
        )),
        "conservation violated: {:?}",
        sys.violations()
    );
    // The stalled controller's requests were deferred, not vaporized.
    assert!(sys.controller_stats(0).reads.get() > 0);
}
