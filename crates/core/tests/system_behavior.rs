//! Behavioral tests of the assembled system: protocol conservation,
//! determinism, scheme mechanics and metric plumbing.

use noclat::{run_mix, IdleStream, RunLengths, SimError, Simulation, SystemConfig};
use noclat_cpu::InstrStream;
use noclat_workloads::{workload, SpecApp};

fn quick() -> RunLengths {
    RunLengths {
        warmup: 3_000,
        measure: 25_000,
    }
}

#[test]
fn all_cores_make_progress() {
    let apps = workload(2).apps();
    let r = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    for a in &r.per_app {
        assert!(
            a.ipc > 0.01,
            "core {} ({}) stalled: ipc {}",
            a.core,
            a.app,
            a.ipc
        );
    }
}

#[test]
fn intensive_apps_generate_more_offchip_traffic() {
    let apps = workload(1).apps(); // mixed
    let r = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    let intensive: u64 = r
        .per_app
        .iter()
        .filter(|a| a.app.profile().class == noclat_workloads::MemClass::Intensive)
        .map(|a| a.offchip)
        .sum();
    let non: u64 = r
        .per_app
        .iter()
        .filter(|a| a.app.profile().class == noclat_workloads::MemClass::NonIntensive)
        .map(|a| a.offchip)
        .sum();
    assert!(
        intensive > 5 * non,
        "intensive half must dominate off-chip traffic ({intensive} vs {non})"
    );
}

#[test]
fn transactions_drain_when_cores_stop() {
    // Build a system, run it, then starve it of new memory traffic by
    // swapping in idle streams; all in-flight transactions must complete.
    let apps = workload(8).apps();
    let mut sys = Simulation::builder(SystemConfig::baseline_32())
        .workload(&apps)
        .build()
        .expect("valid config")
        .into_system();
    sys.run(10_000);
    assert!(sys.txns_in_flight() > 0, "expected in-flight transactions");
    // No API to swap streams (by design); instead just keep running: txns
    // must turn over rather than leak. Track the set of completions.
    let before = sys.tracker().completions().iter().sum::<u64>();
    sys.run(20_000);
    let after = sys.tracker().completions().iter().sum::<u64>();
    assert!(after > before, "completions must keep flowing");
    // In-flight population must stay bounded (LSQ-limited).
    let bound = 32 * sys.config().cpu.lsq_size;
    assert!(
        sys.txns_in_flight() <= bound,
        "{} transactions in flight exceeds the LSQ bound {}",
        sys.txns_in_flight(),
        bound
    );
}

#[test]
fn identical_seeds_reproduce_exactly() {
    let apps = workload(3).apps();
    let cfg = SystemConfig::baseline_32();
    let a = run_mix(&cfg, &apps, quick());
    let b = run_mix(&cfg, &apps, quick());
    for (x, y) in a.per_app.iter().zip(&b.per_app) {
        assert_eq!(x.ipc, y.ipc, "nondeterminism at core {}", x.core);
        assert_eq!(x.offchip, y.offchip);
    }
}

#[test]
fn different_seeds_differ() {
    let apps = workload(3).apps();
    let cfg = SystemConfig::baseline_32();
    let mut cfg2 = cfg.clone();
    cfg2.seed ^= 0xdead_beef;
    let a = run_mix(&cfg, &apps, quick());
    let b = run_mix(&cfg2, &apps, quick());
    let same = a
        .per_app
        .iter()
        .zip(&b.per_app)
        .filter(|(x, y)| x.ipc == y.ipc)
        .count();
    assert!(same < 32, "different seeds should perturb results");
}

#[test]
fn scheme1_marks_late_responses_and_speeds_them_up() {
    let apps = workload(8).apps(); // intensive: plenty of late messages
    let r = run_mix(
        &SystemConfig::baseline_32().with_scheme1(),
        &apps,
        RunLengths {
            warmup: 15_000,
            measure: 60_000,
        },
    );
    let (expedited, normal) = r.system.tracker().return_leg_means();
    let expedited = expedited.expect("some responses must be marked late");
    let normal = normal.expect("most responses are normal");
    assert!(
        expedited < normal,
        "expedited return legs ({expedited:.0}) must beat normal ({normal:.0})"
    );
    assert!(
        r.system.router_counters().high_priority_traversed > 0,
        "high-priority flits must traverse routers"
    );
}

#[test]
fn scheme2_reduces_bank_idleness() {
    let lengths = RunLengths {
        warmup: 10_000,
        measure: 50_000,
    };
    let apps = workload(8).apps();
    let base = run_mix(&SystemConfig::baseline_32(), &apps, lengths);
    let s2 = run_mix(&SystemConfig::baseline_32().with_scheme2(), &apps, lengths);
    assert!(
        s2.avg_bank_idleness() <= base.avg_bank_idleness() + 1e-6,
        "Scheme-2 must not increase idleness ({:.4} vs {:.4})",
        s2.avg_bank_idleness(),
        base.avg_bank_idleness()
    );
}

#[test]
fn latency_tracker_segments_are_consistent() {
    let apps = workload(2).apps();
    let r = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    // milc sits at core 8 in workload-2's expansion.
    let milc_core = r
        .per_app
        .iter()
        .find(|a| a.app == SpecApp::Milc)
        .expect("workload-2 contains milc")
        .core;
    let app = r.system.tracker().app(milc_core);
    assert!(app.total.count() > 0, "milc must go off-chip");
    for (range, row) in app.breakdown() {
        let avg = row.averages();
        let sum: f64 = avg.iter().sum();
        // The five segments must add up to a value inside the delay range.
        assert!(
            sum >= range as f64 * 0.9 && sum <= (range + 50) as f64 * 1.1,
            "segment sum {sum:.0} outside range [{range}, {})",
            range + 50
        );
    }
}

#[test]
fn so_far_delays_are_smaller_than_round_trips() {
    let apps = workload(2).apps();
    let r = run_mix(&SystemConfig::baseline_32(), &apps, quick());
    let mut checked = 0;
    for c in 0..32 {
        let app = r.system.tracker().app(c);
        if app.total.count() > 20 && app.so_far.count() > 20 {
            assert!(
                app.so_far.mean() < app.total.mean(),
                "core {c}: so-far mean {} must be below round-trip mean {}",
                app.so_far.mean(),
                app.total.mean()
            );
            checked += 1;
        }
    }
    assert!(checked > 4, "too few cores with off-chip traffic");
}

#[test]
fn custom_streams_drive_the_system() {
    let cfg = SystemConfig::baseline_16();
    let streams: Vec<Box<dyn InstrStream>> = (0..cfg.num_cores())
        .map(|_| Box::new(IdleStream) as Box<dyn InstrStream>)
        .collect();
    let mut sim = Simulation::builder(cfg)
        .streams(streams)
        .build()
        .expect("valid config");
    sim.run_until(5_000);
    for c in 0..16 {
        let s = sim.system().core_stats(c);
        assert!(s.ipc() > 3.0, "idle (compute-only) cores must be fast");
        assert_eq!(s.offchip_ops, 0);
    }
}

#[test]
fn sixteen_core_system_runs() {
    let apps = workload(8).first_half();
    let cfg = SystemConfig::baseline_16();
    let mut sim = Simulation::builder(cfg)
        .workload(&apps)
        .build()
        .expect("valid config");
    sim.warm_up(2_000);
    sim.run(15_000);
    let committed: u64 = (0..16).map(|c| sim.system().core_stats(c).committed).sum();
    assert!(committed > 10_000, "16-core system barely progressed");
    assert_eq!(sim.system().num_controllers(), 2);
}

#[test]
fn dirty_writebacks_flow_all_the_way_to_memory() {
    // The write path L1 -> (L1Writeback) -> L2 -> (MemWriteback) -> DRAM
    // only fires when dirty lines age out of L2. With the full 16 MB L2
    // that takes millions of cycles; shrink the L2 so evictions (and thus
    // memory writes) happen within a test window.
    let mut cfg = SystemConfig::baseline_32();
    cfg.l2.bank_size_bytes = 16 * 1024; // 32 x 16 KB = 512 KB total L2
    let apps = workload(8).apps(); // write-heavy intensive apps
    let mut sim = Simulation::builder(cfg)
        .workload(&apps)
        .build()
        .expect("valid config");
    sim.run_until(60_000);
    let sys = sim.system();
    let writes: u64 = (0..4).map(|m| sys.controller_stats(m).writes.get()).sum();
    assert!(
        writes > 0,
        "dirty L2 victims must reach memory as writebacks"
    );
    let reads: u64 = (0..4).map(|m| sys.controller_stats(m).reads.get()).sum();
    assert!(reads > writes, "reads should still dominate");
}

#[test]
fn wrong_app_count_is_rejected() {
    let apps = vec![SpecApp::Milc; 7];
    let err = Simulation::builder(SystemConfig::baseline_32())
        .workload(&apps)
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::StreamCountMismatch { .. }));
}

#[test]
fn threshold_updates_flow_with_scheme1() {
    let apps = workload(2).apps();
    let cfg = SystemConfig::baseline_32().with_scheme1();
    let update_period = cfg.scheme1.update_period;
    let mut sim = Simulation::builder(cfg)
        .workload(&apps)
        .build()
        .expect("valid config");
    // Before the first update period, no high-priority traffic exists
    // beyond (possibly) nothing at all.
    sim.run(update_period + 2_000);
    assert!(
        sim.system().network_stats().high_priority_injected.get() > 0,
        "threshold updates must be injected at high priority"
    );
}
