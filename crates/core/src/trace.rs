//! Transaction tracing: keeps the slowest off-chip transactions of a run
//! with their full five-path timestamp breakdown, so the latency tail can
//! be inspected access by access (the paper's Figure 3 narrative — *which*
//! access blocked the window, and where it lost its time).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::metrics::TxnTimes;
use noclat_sim::Cycle;

/// One completed off-chip transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnRecord {
    /// Core (application) that issued it.
    pub core: usize,
    /// Line-aligned address.
    pub line: u64,
    /// The five-path timestamps.
    pub times: TxnTimes,
}

impl TxnRecord {
    /// Total round-trip delay.
    #[must_use]
    pub fn total(&self) -> Cycle {
        self.times.total()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    total: Cycle,
    seq: u64,
    rec: TxnRecord,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.total, self.seq).cmp(&(other.total, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded log of the slowest transactions seen so far.
#[derive(Debug, Clone)]
pub struct TraceLog {
    capacity: usize,
    seq: u64,
    /// Min-heap on total delay: the root is the fastest of the kept slowest.
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TraceLog {
    /// Keeps at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "need capacity for at least one record");
        TraceLog {
            capacity,
            seq: 0,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// Offers a completed transaction; kept only if it ranks among the
    /// slowest seen.
    pub fn offer(&mut self, rec: TxnRecord) {
        self.seq += 1;
        let entry = Entry {
            total: rec.total(),
            seq: self.seq,
            rec,
        };
        if self.heap.len() < self.capacity {
            self.heap.push(Reverse(entry));
            return;
        }
        if self
            .heap
            .peek()
            .is_some_and(|Reverse(min)| entry.total > min.total)
        {
            self.heap.pop();
            self.heap.push(Reverse(entry));
        }
    }

    /// Records kept so far, slowest first.
    #[must_use]
    pub fn slowest(&self) -> Vec<TxnRecord> {
        let mut entries: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_by(|a, b| b.cmp(a));
        entries.into_iter().map(|e| e.rec).collect()
    }

    /// Number of records kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards everything (end of warmup).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(core: usize, total: Cycle) -> TxnRecord {
        TxnRecord {
            core,
            line: 0x40,
            times: TxnTimes {
                issued: 0,
                at_l2: total / 5,
                at_mc: total * 2 / 5,
                mc_done: total * 3 / 5,
                back_at_l2: total * 4 / 5,
                done: total,
            },
        }
    }

    #[test]
    fn keeps_the_slowest_k() {
        let mut log = TraceLog::new(3);
        for t in [100u64, 500, 200, 900, 50, 300] {
            log.offer(rec(0, t));
        }
        let slow: Vec<Cycle> = log.slowest().iter().map(TxnRecord::total).collect();
        assert_eq!(slow, vec![900, 500, 300]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut log = TraceLog::new(8);
        log.offer(rec(1, 100));
        log.offer(rec(2, 50));
        assert_eq!(log.len(), 2);
        assert_eq!(log.slowest()[0].total(), 100);
        assert_eq!(log.slowest()[1].core, 2);
    }

    #[test]
    fn clear_empties() {
        let mut log = TraceLog::new(2);
        assert!(log.is_empty());
        log.offer(rec(0, 10));
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn ties_are_kept_deterministically() {
        let mut log = TraceLog::new(2);
        log.offer(rec(0, 100));
        log.offer(rec(1, 100));
        log.offer(rec(2, 100));
        // Ties keep the earliest arrivals (a newcomer must be strictly
        // slower to displace a kept record).
        let cores: Vec<usize> = log.slowest().iter().map(|r| r.core).collect();
        assert_eq!(cores.len(), 2);
        assert!(cores.contains(&0) && cores.contains(&1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceLog::new(0);
    }
}
