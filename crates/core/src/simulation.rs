//! The front door of the simulator: a validating builder plus a run-control
//! handle.
//!
//! [`SimulationBuilder`] collects everything a run needs — configuration,
//! kernel strategy, policies (by registry name or as a parsed
//! [`PolicyOverride`]), fault plan, workload and probes — in one fluent
//! chain, validates the combination once, and yields a [`Simulation`]. The
//! handle owns the assembled [`System`] and exposes run control
//! ([`Simulation::run_until`], [`Simulation::run_to_completion`]) without
//! callers writing manual step loops.
//!
//! ```
//! use noclat::{KernelKind, Simulation, SystemConfig};
//! use noclat_workloads::workload;
//!
//! let mut sim = Simulation::builder(SystemConfig::baseline_32())
//!     .kernel(KernelKind::Event)
//!     .workload(&workload(2).apps())
//!     .build()
//!     .expect("valid configuration");
//! sim.run_until(2_000);
//! assert_eq!(sim.now(), 2_000);
//! ```

use noclat_cpu::InstrStream;
use noclat_sim::cancel::CancelToken;
use noclat_sim::config::{KernelKind, PolicyOverride, StarvationPolicy, SystemConfig};
use noclat_sim::error::SimError;
use noclat_sim::faults::FaultPlan;
use noclat_sim::Cycle;
use noclat_workloads::SpecApp;

use crate::probe::Probe;
use crate::system::System;

/// Granularity of [`Simulation::run_to_completion`]'s drain loop.
const DRAIN_CHUNK: Cycle = 512;
/// How long the drain loop tolerates zero change in the in-flight counts
/// before concluding the system is wedged. Generous enough for the deepest
/// legitimate quiet spans (retry backoff, refresh, timeout scans).
const DRAIN_STALL_LIMIT: Cycle = 200_000;

/// What the builder will run: applications (synthetic streams derived per
/// core) or caller-supplied instruction streams.
enum Workload {
    None,
    Apps(Vec<SpecApp>),
    Streams(Vec<Box<dyn InstrStream>>),
}

impl Workload {
    fn kind(&self) -> &'static str {
        match self {
            Workload::None => "none",
            Workload::Apps(_) => "apps",
            Workload::Streams(_) => "streams",
        }
    }
}

/// Fluent, validating constructor for a [`Simulation`].
///
/// Every setter is sugar over a [`SystemConfig`] field or a [`System`]
/// attachment; [`SimulationBuilder::build`] validates the combined
/// configuration (unknown policy names, topology/bank inconsistencies,
/// malformed fault plans) before anything is assembled.
pub struct SimulationBuilder {
    cfg: SystemConfig,
    workload: Workload,
    probes: Vec<Box<dyn Probe>>,
    cancel: Option<CancelToken>,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("kernel", &self.cfg.kernel)
            .field("workload", &self.workload.kind())
            .field("probes", &self.probes.len())
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Starts a builder from a base configuration.
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        SimulationBuilder {
            cfg,
            workload: Workload::None,
            probes: Vec::new(),
            cancel: None,
        }
    }

    /// Selects the simulation kernel ([`KernelKind::Cycle`] scans every
    /// cycle; [`KernelKind::Event`] skips provably idle spans with
    /// bit-identical results).
    #[must_use]
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.cfg.kernel = kernel;
        self
    }

    /// Selects the request-injection policy by registry name (see
    /// `REQUEST_POLICIES`); unknown names are rejected at
    /// [`SimulationBuilder::build`].
    #[must_use]
    pub fn request_policy(mut self, name: &str) -> Self {
        self.cfg.policy.request = Some(name.to_string());
        self
    }

    /// Selects the response-injection policy by registry name (see
    /// `RESPONSE_POLICIES`); unknown names are rejected at
    /// [`SimulationBuilder::build`].
    #[must_use]
    pub fn response_policy(mut self, name: &str) -> Self {
        self.cfg.policy.response = Some(name.to_string());
        self
    }

    /// Selects the router-arbitration starvation policy.
    #[must_use]
    pub fn arbitration(mut self, policy: StarvationPolicy) -> Self {
        self.cfg.noc.starvation = policy;
        self
    }

    /// Applies a parsed `req=…,resp=…,arb=…` override in one call (the
    /// sweep binaries' `--policy` flag).
    #[must_use]
    pub fn policy_override(mut self, ov: &PolicyOverride) -> Self {
        ov.apply(&mut self.cfg);
        self
    }

    /// Injects a fault plan (link drops/delays, router stalls, bank and
    /// ingress faults).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Runs `apps[i]` on core `i` (one application per core, as in the
    /// paper). Replaces any previously attached workload.
    #[must_use]
    pub fn workload(mut self, apps: &[SpecApp]) -> Self {
        self.workload = Workload::Apps(apps.to_vec());
        self
    }

    /// Runs caller-supplied instruction streams, one per core. Replaces any
    /// previously attached workload.
    #[must_use]
    pub fn streams(mut self, streams: Vec<Box<dyn InstrStream>>) -> Self {
        self.workload = Workload::Streams(streams);
        self
    }

    /// Attaches an observer to the hop/dequeue/retire probe points.
    #[must_use]
    pub fn probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probes.push(probe);
        self
    }

    /// Attaches a cooperative cancellation token: once it fires, the run
    /// loop stops at the next iteration boundary and the simulation reports
    /// [`Simulation::interrupted`]. When no explicit token is attached,
    /// [`SimulationBuilder::build`] inherits the thread's current token
    /// (installed by the sweep pool's deadline supervisor) — this is how
    /// `--job-timeout` reaches every harness without per-binary plumbing.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates the collected configuration and assembles the system.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingWorkload`] when neither
    /// [`SimulationBuilder::workload`] nor [`SimulationBuilder::streams`]
    /// was called, and any [`SimError`] the configuration validation or
    /// assembly raises (unknown policy names, stream-count mismatches,
    /// malformed fault plans…).
    pub fn build(self) -> Result<Simulation, SimError> {
        let mut sys = match self.workload {
            Workload::Apps(apps) => System::assemble_apps(self.cfg, &apps)?,
            Workload::Streams(streams) => System::assemble(self.cfg, streams)?,
            Workload::None => return Err(SimError::MissingWorkload),
        };
        for p in self.probes {
            sys.attach_probe(p);
        }
        if let Some(token) = self.cancel.or_else(CancelToken::current) {
            sys.set_cancel_token(token);
        }
        Ok(Simulation { sys })
    }
}

/// A built simulation: run control over an assembled [`System`].
pub struct Simulation {
    sys: System,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("system", &self.sys)
            .finish()
    }
}

impl Simulation {
    /// Starts a [`SimulationBuilder`] from a base configuration.
    #[must_use]
    pub fn builder(cfg: SystemConfig) -> SimulationBuilder {
        SimulationBuilder::new(cfg)
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.sys.now()
    }

    /// Advances by `cycles` cycles.
    pub fn run(&mut self, cycles: Cycle) {
        self.sys.run(cycles);
    }

    /// Advances to the absolute cycle `cycle`; a target at or before
    /// [`Simulation::now`] is a no-op (run control is monotone).
    pub fn run_until(&mut self, cycle: Cycle) {
        let now = self.sys.now();
        if cycle > now {
            self.sys.run(cycle - now);
        }
    }

    /// Runs `cycles` of warmup, then clears measurement state while keeping
    /// caches, queues and schemes warm.
    pub fn warm_up(&mut self, cycles: Cycle) {
        self.sys.warm_up(cycles);
    }

    /// Runs until every in-flight transaction and network packet has
    /// drained, returning `true` on success. Returns `false` — instead of
    /// looping forever — if the in-flight counts stop changing for
    /// [`DRAIN_STALL_LIMIT`] cycles (a wedged system; consult
    /// [`System::violations`] for the diagnosis).
    pub fn run_to_completion(&mut self) -> bool {
        let mut last = (self.sys.txns_in_flight(), self.sys.packets_in_flight());
        let mut last_change = self.sys.now();
        while last != (0, 0) || self.sys.interrupted() {
            if self.sys.interrupted() {
                return false;
            }
            self.sys.run(DRAIN_CHUNK);
            let current = (self.sys.txns_in_flight(), self.sys.packets_in_flight());
            if current != last {
                last = current;
                last_change = self.sys.now();
            } else if self.sys.now().saturating_sub(last_change) >= DRAIN_STALL_LIMIT {
                return false;
            }
        }
        true
    }

    /// Whether a run loop stopped early because an attached cancellation
    /// token fired. An interrupted simulation's state is consistent, but its
    /// metrics describe a truncated run; the sweep layer discards them.
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.sys.interrupted()
    }

    /// The underlying system, for metric extraction.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable access to the underlying system (attaching probes mid-run,
    /// injecting node clock changes…).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Unwraps the handle into the underlying system.
    #[must_use]
    pub fn into_system(self) -> System {
        self.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_workloads::workload;

    fn apps() -> Vec<SpecApp> {
        workload(2).apps()
    }

    #[test]
    fn build_requires_a_workload() {
        let err = Simulation::builder(SystemConfig::baseline_32())
            .build()
            .unwrap_err();
        assert_eq!(err, SimError::MissingWorkload);
    }

    #[test]
    fn build_rejects_unknown_policy_names() {
        let err = Simulation::builder(SystemConfig::baseline_32())
            .request_policy("no-such-policy")
            .workload(&apps())
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "got {err:?}");
    }

    #[test]
    fn run_until_is_absolute_and_monotone() {
        let mut sim = Simulation::builder(SystemConfig::baseline_32())
            .workload(&apps())
            .build()
            .expect("valid");
        sim.run_until(500);
        assert_eq!(sim.now(), 500);
        sim.run_until(300); // already past: no-op
        assert_eq!(sim.now(), 500);
        sim.run(100);
        assert_eq!(sim.now(), 600);
    }

    #[test]
    fn builder_attaches_policies_by_name() {
        let sim = Simulation::builder(SystemConfig::baseline_32())
            .request_policy("oldest-first")
            .response_policy("static")
            .workload(&apps())
            .build()
            .expect("valid");
        assert_eq!(sim.system().request_policy_name(), "oldest-first");
        assert_eq!(sim.system().response_policy_name(), "static");
    }

    #[test]
    fn pre_fired_token_stops_the_run_immediately() {
        for kernel in [KernelKind::Cycle, KernelKind::Event] {
            let token = CancelToken::new();
            token.cancel();
            let mut sim = Simulation::builder(SystemConfig::baseline_32())
                .kernel(kernel)
                .cancel_token(token)
                .workload(&apps())
                .build()
                .expect("valid");
            sim.run_until(10_000);
            assert_eq!(sim.now(), 0, "no cycles advance under a fired token");
            assert!(sim.interrupted());
            assert!(!sim.run_to_completion(), "interrupted runs never drain");
        }
    }

    #[test]
    fn firing_mid_run_stops_early_with_state_intact() {
        let token = CancelToken::new();
        let mut sim = Simulation::builder(SystemConfig::baseline_32())
            .cancel_token(token.clone())
            .workload(&apps())
            .build()
            .expect("valid");
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        // Far enough out that the canceller fires first on any machine.
        sim.run_until(2_000_000_000);
        canceller.join().unwrap();
        assert!(sim.interrupted());
        assert!(sim.now() < 2_000_000_000, "run stopped before the target");
    }

    #[test]
    fn build_inherits_the_thread_current_token() {
        let token = CancelToken::new();
        token.cancel();
        let guard = token.install_current();
        let mut sim = Simulation::builder(SystemConfig::baseline_32())
            .workload(&apps())
            .build()
            .expect("valid");
        drop(guard);
        sim.run_until(1_000);
        assert_eq!(sim.now(), 0);
        assert!(sim.interrupted());
    }

    #[test]
    fn unfired_token_leaves_the_run_untouched() {
        let fingerprint = |token: Option<CancelToken>| {
            let mut b = Simulation::builder(SystemConfig::baseline_32()).workload(&apps());
            if let Some(t) = token {
                b = b.cancel_token(t);
            }
            let mut sim = b.build().expect("valid");
            sim.run(2_000);
            let sys = sim.system();
            (
                sys.now(),
                sys.network_stats().packets_delivered.get(),
                sim.interrupted(),
            )
        };
        assert_eq!(fingerprint(None), fingerprint(Some(CancelToken::new())));
    }

    #[test]
    fn event_kernel_matches_cycle_kernel_on_a_short_run() {
        let fingerprint = |kernel: KernelKind| {
            let mut sim = Simulation::builder(SystemConfig::baseline_32())
                .kernel(kernel)
                .workload(&apps())
                .build()
                .expect("valid");
            sim.run(3_000);
            let sys = sim.system();
            let stats = sys.network_stats();
            (
                sys.now(),
                (0..sys.config().topology.num_nodes())
                    .map(|c| {
                        let s = sys.core_stats(c);
                        (s.committed, s.cycles, s.mem_stall_cycles)
                    })
                    .collect::<Vec<_>>(),
                stats.packets_injected.get(),
                stats.packets_delivered.get(),
                sys.txns_in_flight(),
            )
        };
        assert_eq!(
            fingerprint(KernelKind::Cycle),
            fingerprint(KernelKind::Event)
        );
    }
}
