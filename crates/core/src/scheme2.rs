//! Scheme-2: expediting requests destined for idle banks (Section 3.2).
//!
//! No global bank-queue state is visible to a tile, so each node keeps a
//! *Bank History Table* recording how many off-chip requests it injected
//! toward each DRAM bank during the last `T` cycles. When an L2 miss is
//! about to leave the tile and the table shows fewer than `th` recent
//! requests to the target bank, the request is injected at high priority —
//! a local estimate that the bank is idle and should be fed quickly.

use std::collections::VecDeque;

use noclat_sim::config::Scheme2Config;
use noclat_sim::Cycle;

/// Per-node Bank History Table with a sliding window of length `T`.
#[derive(Debug, Clone)]
pub struct BankHistoryTable {
    cfg: Scheme2Config,
    /// Recent injections: `(cycle, global bank)`.
    events: VecDeque<(Cycle, u32)>,
    /// Live counts per global bank (events within the window).
    counts: Vec<u32>,
}

impl BankHistoryTable {
    /// Creates a table covering `total_banks` banks.
    #[must_use]
    pub fn new(cfg: Scheme2Config, total_banks: usize) -> Self {
        BankHistoryTable {
            cfg,
            events: VecDeque::new(),
            counts: vec![0; total_banks],
        }
    }

    fn prune(&mut self, now: Cycle) {
        let horizon = now.saturating_sub(self.cfg.history_window);
        while self.events.front().is_some_and(|&(t, _)| t < horizon) {
            let (_, bank) = self.events.pop_front().expect("checked front");
            self.counts[bank as usize] -= 1;
        }
    }

    /// Requests sent from this node to `bank` within the last `T` cycles.
    pub fn recent_count(&mut self, bank: usize, now: Cycle) -> u32 {
        self.prune(now);
        self.counts[bank]
    }

    /// The Scheme-2 decision: expedite a request to `bank`?
    pub fn should_expedite(&mut self, bank: usize, now: Cycle) -> bool {
        self.recent_count(bank, now) < self.cfg.idle_threshold
    }

    /// Records an injected off-chip request toward `bank`.
    pub fn record(&mut self, bank: usize, now: Cycle) {
        self.prune(now);
        self.events.push_back((now, bank as u32));
        self.counts[bank] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn cfg() -> Scheme2Config {
        let mut c = SystemConfig::baseline_32().scheme2;
        c.enabled = true;
        c
    }

    #[test]
    fn first_request_to_a_bank_is_expedited() {
        let mut t = BankHistoryTable::new(cfg(), 64);
        assert!(t.should_expedite(5, 1000));
    }

    #[test]
    fn recent_request_suppresses_expediting() {
        let mut t = BankHistoryTable::new(cfg(), 64);
        t.record(5, 1000);
        assert!(!t.should_expedite(5, 1100), "within T=200");
        assert!(t.should_expedite(6, 1100), "other banks unaffected");
    }

    #[test]
    fn window_expires() {
        let mut t = BankHistoryTable::new(cfg(), 64);
        t.record(5, 1000);
        assert!(t.should_expedite(5, 1000 + cfg().history_window + 1));
    }

    #[test]
    fn counts_accumulate_and_prune() {
        let mut t = BankHistoryTable::new(cfg(), 64);
        t.record(3, 100);
        t.record(3, 150);
        t.record(3, 250);
        assert_eq!(t.recent_count(3, 260), 3);
        // At 340, the horizon is 140: the event at 100 expires.
        assert_eq!(t.recent_count(3, 340), 2);
        assert_eq!(t.recent_count(3, 10_000), 0);
    }

    #[test]
    fn higher_threshold_expedites_more() {
        let mut c = cfg();
        c.idle_threshold = 2;
        let mut t = BankHistoryTable::new(c, 64);
        t.record(5, 1000);
        assert!(t.should_expedite(5, 1010), "one recent request < th=2");
        t.record(5, 1010);
        assert!(!t.should_expedite(5, 1020));
    }
}
