//! Liveness watchdog and end-to-end conservation auditing.
//!
//! The watchdog observes cheap global progress signals every cycle (total
//! switch traversals, transactions in flight) and runs more expensive scans
//! — buffered-flit waits, packet conservation, age-field saturation — on a
//! configurable polling period. Instead of hanging or panicking, a wedged or
//! lossy system raises typed [`LivenessViolation`]s carrying a structured
//! [`Snapshot`] of the moment the condition tripped, so harnesses can assert
//! on them and humans can debug them.
//!
//! The watchdog never changes simulation behaviour: it only observes.
//! Detection latches so a persistent condition is reported once, not once
//! per cycle, and re-arms when the condition clears.

use noclat_sim::config::WatchdogConfig;
use noclat_sim::Cycle;

/// Diagnostic state captured when a violation trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Cycle the violation was detected.
    pub cycle: Cycle,
    /// Memory transactions in flight at detection time.
    pub txns_in_flight: usize,
    /// Buffered flits per router (index = node id, row-major), showing
    /// where traffic piled up.
    pub queue_depths: Vec<usize>,
}

/// A detected liveness or conservation violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessViolation {
    /// No flit traversed any router for `quiet_for` cycles while memory
    /// transactions were in flight.
    Deadlock {
        /// Cycles without a single switch traversal.
        quiet_for: Cycle,
        /// State at detection.
        snapshot: Snapshot,
    },
    /// A buffered flit waited longer than the starvation limit without
    /// winning arbitration.
    Starvation {
        /// Router holding the starved flit.
        node: u16,
        /// Cycles the flit has been buffered.
        waited: Cycle,
        /// The configured wait limit it exceeded.
        limit: Cycle,
        /// State at detection.
        snapshot: Snapshot,
    },
    /// Traffic disappeared: a transaction was abandoned (retries exhausted
    /// or timed out), or the packet-conservation audit found injected
    /// packets that are neither in flight, delivered, nor reported dropped.
    Lost {
        /// The abandoned transaction, when the loss is transaction-level;
        /// `None` when the packet audit found the discrepancy.
        txn: Option<u64>,
        /// Unaccounted packets (1 for a transaction-level loss).
        count: u64,
        /// State at detection.
        snapshot: Snapshot,
    },
    /// The conservation audit found more deliveries than injections.
    Duplicated {
        /// Surplus packets.
        count: u64,
        /// State at detection.
        snapshot: Snapshot,
    },
    /// Traversals saturated the 12-bit age field; so-far-delay comparisons
    /// above the cap are no longer meaningful (Section 3.1).
    AgeOverflow {
        /// New saturating traversals since the previous poll.
        saturations: u64,
        /// State at detection.
        snapshot: Snapshot,
    },
}

impl LivenessViolation {
    /// The captured diagnostic state.
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        match self {
            LivenessViolation::Deadlock { snapshot, .. }
            | LivenessViolation::Starvation { snapshot, .. }
            | LivenessViolation::Lost { snapshot, .. }
            | LivenessViolation::Duplicated { snapshot, .. }
            | LivenessViolation::AgeOverflow { snapshot, .. } => snapshot,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LivenessViolation::Deadlock { .. } => "deadlock",
            LivenessViolation::Starvation { .. } => "starvation",
            LivenessViolation::Lost { .. } => "lost",
            LivenessViolation::Duplicated { .. } => "duplicated",
            LivenessViolation::AgeOverflow { .. } => "age-overflow",
        }
    }
}

/// The liveness watchdog: latched detectors plus the violation log.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    starvation_limit: Cycle,
    last_traversed: u64,
    last_progress: Cycle,
    next_poll: Cycle,
    seen_saturations: u64,
    deadlock_latched: bool,
    starvation_latched: bool,
    last_conservation_delta: i64,
    violations: Vec<LivenessViolation>,
}

impl Watchdog {
    /// Creates a watchdog; `starvation_limit` is the buffered-wait bound in
    /// cycles (typically `starvation_factor × starvation_age_guard`).
    #[must_use]
    pub fn new(cfg: WatchdogConfig, starvation_limit: Cycle) -> Self {
        Watchdog {
            next_poll: cfg.poll_period,
            cfg,
            starvation_limit,
            last_traversed: 0,
            last_progress: 0,
            seen_saturations: 0,
            deadlock_latched: false,
            starvation_latched: false,
            last_conservation_delta: 0,
            violations: Vec::new(),
        }
    }

    /// Whether the watchdog is observing at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The buffered-wait bound used by the starvation detector.
    #[must_use]
    pub fn starvation_limit(&self) -> Cycle {
        self.starvation_limit
    }

    /// Violations detected so far, in detection order.
    #[must_use]
    pub fn violations(&self) -> &[LivenessViolation] {
        &self.violations
    }

    /// Appends a violation detected outside the watchdog's own detectors
    /// (e.g. the recovery layer abandoning a transaction).
    pub fn record(&mut self, violation: LivenessViolation) {
        self.violations.push(violation);
    }

    /// Per-cycle progress check. `traversed` is the monotone total of switch
    /// traversals across all routers. Returns `Some(quiet_for)` exactly once
    /// per stall: when no flit has moved for `deadlock_cycles` while
    /// transactions are in flight. Re-arms as soon as progress resumes.
    pub fn observe_progress(
        &mut self,
        now: Cycle,
        traversed: u64,
        txns_in_flight: usize,
    ) -> Option<Cycle> {
        if traversed != self.last_traversed || txns_in_flight == 0 {
            self.last_traversed = traversed;
            self.last_progress = now;
            self.deadlock_latched = false;
            return None;
        }
        let quiet = now.saturating_sub(self.last_progress);
        if quiet >= self.cfg.deadlock_cycles && !self.deadlock_latched {
            self.deadlock_latched = true;
            return Some(quiet);
        }
        None
    }

    /// The cycle of the next polled scan (the watchdog's wake-up for the
    /// event kernel). Polls must run at their exact scheduled cycles even
    /// across skipped idle spans, so that violation snapshots carry the same
    /// cycle numbers either kernel produces.
    #[must_use]
    pub fn next_poll_at(&self) -> Cycle {
        self.next_poll
    }

    /// The cycle at which the deadlock detector could trip, assuming no flit
    /// moves and `txns_in_flight` stays nonzero until then; `None` when it
    /// cannot trip at all (disabled, already latched, or nothing in flight).
    /// An event kernel must not skip past this cycle: the violation has to
    /// be detected — and time-stamped — exactly when a cycle-driven run
    /// would have detected it.
    #[must_use]
    pub fn next_deadlock_check(&self, txns_in_flight: usize) -> Option<Cycle> {
        if !self.cfg.enabled || self.deadlock_latched || txns_in_flight == 0 {
            return None;
        }
        Some(self.last_progress.saturating_add(self.cfg.deadlock_cycles))
    }

    /// Accounts for an idle span the event kernel is about to skip: cycles
    /// `[.., to_exclusive)` will never run [`Watchdog::observe_progress`].
    /// With no transactions in flight every skipped cycle would have re-armed
    /// the progress clock, so fast-forward it to the last skipped cycle. With
    /// transactions in flight the skipped cycles change nothing (no flit
    /// moved, the quiet window just grows), and the potential trip cycle is a
    /// wake-up via [`Watchdog::next_deadlock_check`].
    pub fn observe_idle_span(&mut self, to_exclusive: Cycle, txns_in_flight: usize) {
        if txns_in_flight == 0 && to_exclusive > 0 {
            self.last_progress = to_exclusive - 1;
            self.deadlock_latched = false;
        }
    }

    /// Whether the expensive polled scans are due this cycle; advances the
    /// poll schedule when they are.
    pub fn poll_due(&mut self, now: Cycle) -> bool {
        if now < self.next_poll {
            return false;
        }
        self.next_poll = now + self.cfg.poll_period;
        true
    }

    /// Starvation check against the oldest buffered wait observed at a
    /// poll. Returns `Some(limit)` exactly once per episode; re-arms when
    /// the wait falls back under the limit.
    pub fn observe_wait(&mut self, waited: Option<Cycle>) -> Option<Cycle> {
        match waited {
            Some(w) if w > self.starvation_limit => {
                if self.starvation_latched {
                    None
                } else {
                    self.starvation_latched = true;
                    Some(self.starvation_limit)
                }
            }
            _ => {
                self.starvation_latched = false;
                None
            }
        }
    }

    /// Age-saturation check against the monotone saturation total. Returns
    /// the number of new saturating traversals since the previous poll.
    pub fn observe_saturations(&mut self, total: u64) -> Option<u64> {
        let delta = total.saturating_sub(self.seen_saturations);
        self.seen_saturations = total;
        (delta > 0).then_some(delta)
    }

    /// Packet-conservation check: `injected` vs packets `accounted` for
    /// (delivered + dropped + in flight). Returns the *change* in the
    /// discrepancy since the last poll — a steady, already-reported
    /// discrepancy is not re-reported.
    pub fn observe_conservation(&mut self, injected: u64, accounted: u64) -> Option<i64> {
        let delta = i64::try_from(accounted).unwrap_or(i64::MAX)
            - i64::try_from(injected).unwrap_or(i64::MAX);
        if delta == self.last_conservation_delta {
            return None;
        }
        self.last_conservation_delta = delta;
        (delta != 0).then_some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wd(deadlock_cycles: Cycle, poll: Cycle) -> Watchdog {
        Watchdog::new(
            WatchdogConfig {
                enabled: true,
                deadlock_cycles,
                starvation_factor: 8,
                poll_period: poll,
            },
            8_000,
        )
    }

    #[test]
    fn deadlock_trips_once_and_rearms_on_progress() {
        let mut w = wd(10, 100);
        // Progress at t=0, then the counter freezes with work in flight.
        assert_eq!(w.observe_progress(0, 5, 3), None);
        for t in 1..10 {
            assert_eq!(w.observe_progress(t, 5, 3), None);
        }
        assert_eq!(w.observe_progress(10, 5, 3), Some(10));
        // Latched: no repeat reports while still stuck.
        assert_eq!(w.observe_progress(11, 5, 3), None);
        // Progress resumes, then a second stall trips again.
        assert_eq!(w.observe_progress(12, 6, 3), None);
        for t in 13..22 {
            assert_eq!(w.observe_progress(t, 6, 3), None);
        }
        assert_eq!(w.observe_progress(22, 6, 3), Some(10));
    }

    #[test]
    fn idle_system_is_not_a_deadlock() {
        let mut w = wd(10, 100);
        for t in 0..1000 {
            assert_eq!(w.observe_progress(t, 0, 0), None, "idle != deadlocked");
        }
    }

    #[test]
    fn poll_schedule_advances() {
        let mut w = wd(10, 100);
        assert!(!w.poll_due(0));
        assert!(!w.poll_due(99));
        assert!(w.poll_due(100));
        assert!(!w.poll_due(101));
        assert!(w.poll_due(200));
        // A skipped poll window still fires once, then re-arms from `now`.
        assert!(w.poll_due(1_000));
        assert!(!w.poll_due(1_050));
        assert!(w.poll_due(1_100));
    }

    #[test]
    fn next_poll_matches_poll_due_schedule() {
        let mut w = wd(10, 100);
        assert_eq!(w.next_poll_at(), 100);
        assert!(w.poll_due(100));
        assert_eq!(w.next_poll_at(), 200);
    }

    #[test]
    fn idle_span_matches_per_cycle_progress_accounting() {
        let mut per_cycle = wd(10, 100);
        let mut skipped = wd(10, 100);
        // Both see one real step with traffic, then the system drains.
        assert_eq!(per_cycle.observe_progress(0, 7, 1), None);
        assert_eq!(skipped.observe_progress(0, 7, 1), None);
        // Reference: 499 idle cycles observed one by one.
        for t in 1..500 {
            assert_eq!(per_cycle.observe_progress(t, 7, 0), None);
        }
        // Event twin: one bulk skip over the same span.
        skipped.observe_idle_span(500, 0);
        // A transaction appears and wedges: both trip at the same cycle.
        assert_eq!(per_cycle.next_deadlock_check(3), Some(509));
        assert_eq!(skipped.next_deadlock_check(3), Some(509));
        for t in 500..509 {
            assert_eq!(per_cycle.observe_progress(t, 7, 3), None);
            assert_eq!(skipped.observe_progress(t, 7, 3), None);
        }
        assert_eq!(per_cycle.observe_progress(509, 7, 3), Some(10));
        assert_eq!(skipped.observe_progress(509, 7, 3), Some(10));
    }

    #[test]
    fn idle_span_with_work_in_flight_keeps_the_quiet_clock() {
        let mut w = wd(10, 100);
        assert_eq!(w.observe_progress(0, 7, 1), None);
        // Skipping while transactions are stuck must not re-arm the
        // detector…
        w.observe_idle_span(9, 1);
        assert_eq!(w.next_deadlock_check(1), Some(10));
        // …so the trip still happens at the original deadline.
        assert_eq!(w.observe_progress(10, 7, 1), Some(10));
    }

    #[test]
    fn starvation_latches_per_episode() {
        let mut w = wd(10, 100);
        assert_eq!(w.observe_wait(Some(100)), None);
        assert_eq!(w.observe_wait(Some(9_000)), Some(8_000));
        assert_eq!(w.observe_wait(Some(9_500)), None, "latched");
        assert_eq!(w.observe_wait(None), None);
        assert_eq!(w.observe_wait(Some(10_000)), Some(8_000), "re-armed");
    }

    #[test]
    fn saturation_reports_deltas() {
        let mut w = wd(10, 100);
        assert_eq!(w.observe_saturations(0), None);
        assert_eq!(w.observe_saturations(7), Some(7));
        assert_eq!(w.observe_saturations(7), None);
        assert_eq!(w.observe_saturations(9), Some(2));
    }

    #[test]
    fn conservation_reports_changes_only() {
        let mut w = wd(10, 100);
        assert_eq!(w.observe_conservation(10, 10), None);
        assert_eq!(w.observe_conservation(12, 10), Some(-2), "2 packets lost");
        assert_eq!(w.observe_conservation(13, 11), None, "steady discrepancy");
        assert_eq!(w.observe_conservation(13, 14), Some(1), "1 duplicated");
    }

    #[test]
    fn violation_accessors() {
        let snap = Snapshot {
            cycle: 42,
            txns_in_flight: 3,
            queue_depths: vec![0, 1],
        };
        let v = LivenessViolation::Deadlock {
            quiet_for: 10,
            snapshot: snap.clone(),
        };
        assert_eq!(v.kind(), "deadlock");
        assert_eq!(v.snapshot(), &snap);
        let mut w = wd(10, 100);
        w.record(v);
        assert_eq!(w.violations().len(), 1);
    }
}
