//! Human-readable run reports: a [`SystemReport`] collects everything a
//! harness or CLI wants to print about a finished [`MixResult`]
//! — per-application results, the merged latency distribution, controller
//! and network behaviour — behind one `Display` implementation.

use noclat_sim::stats::{Histogram, Summary};

use crate::experiment::MixResult;
use crate::system::RobustnessStats;

/// Per-controller digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerReport {
    /// Reads served.
    pub reads: u64,
    /// Writebacks served.
    pub writes: u64,
    /// Row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Mean controller delay (queueing + service).
    pub avg_delay: f64,
    /// Overall bank idleness.
    pub idleness: f64,
}

/// Network digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkReport {
    /// Packets injected.
    pub packets: u64,
    /// Packets injected at high priority.
    pub high_priority: u64,
    /// Mean request-class network latency per leg.
    pub request_leg: f64,
    /// Mean response-class network latency per leg.
    pub response_leg: f64,
    /// Total flit-hops.
    pub flit_hops: u64,
    /// Flits that used pipeline bypassing.
    pub bypassed: u64,
}

/// A complete run digest, printable with `{}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// `(core, app name, ipc, off-chip count, mean off-chip latency)` rows.
    pub apps: Vec<(usize, &'static str, f64, u64, f64)>,
    /// Merged off-chip latency distribution.
    pub latency: Summary,
    /// One digest per memory controller.
    pub controllers: Vec<ControllerReport>,
    /// Network digest.
    pub network: NetworkReport,
    /// Fault-recovery and liveness counters.
    pub robustness: RobustnessStats,
}

impl SystemReport {
    /// Builds the report from a finished run.
    #[must_use]
    pub fn from_result(r: &MixResult) -> Self {
        let mut merged = Histogram::new(25, 4000);
        for c in 0..r.per_app.len() {
            merged.merge(&r.system.tracker().app(c).total);
        }
        let controllers = (0..r.system.num_controllers())
            .map(|m| {
                let cs = r.system.controller_stats(m);
                ControllerReport {
                    reads: cs.reads.get(),
                    writes: cs.writes.get(),
                    row_hit_rate: cs.row_hit_rate(),
                    avg_delay: cs.controller_delay.mean_or(0.0),
                    idleness: r.system.idleness(m).overall(),
                }
            })
            .collect();
        let ns = r.system.network_stats();
        let rc = r.system.router_counters();
        SystemReport {
            apps: r
                .per_app
                .iter()
                .map(|a| (a.core, a.app.name(), a.ipc, a.offchip, a.avg_latency))
                .collect(),
            latency: merged.summary(),
            controllers,
            network: NetworkReport {
                packets: ns.packets_injected.get(),
                high_priority: ns.high_priority_injected.get(),
                request_leg: ns.request_latency.mean_or(0.0),
                response_leg: ns.response_latency.mean_or(0.0),
                flit_hops: rc.flits_traversed,
                bypassed: rc.flits_bypassed,
            },
            robustness: r.system.robustness(),
        }
    }

    /// Sum of per-application IPCs (aggregate throughput).
    #[must_use]
    pub fn total_ipc(&self) -> f64 {
        self.apps.iter().map(|&(_, _, ipc, _, _)| ipc).sum()
    }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>4} {:>12} {:>7} {:>9} {:>9}",
            "core", "app", "ipc", "offchip", "avg lat"
        )?;
        for &(core, name, ipc, offchip, lat) in &self.apps {
            writeln!(f, "{core:>4} {name:>12} {ipc:>7.3} {offchip:>9} {lat:>9.0}")?;
        }
        writeln!(f, "\noff-chip latency: {}", self.latency)?;
        for (m, c) in self.controllers.iter().enumerate() {
            writeln!(
                f,
                "controller {m}: reads {} writes {} row-hit {:.2} avg delay {:.0} idleness {:.3}",
                c.reads, c.writes, c.row_hit_rate, c.avg_delay, c.idleness
            )?;
        }
        let n = &self.network;
        writeln!(
            f,
            "network: {} packets ({} high-priority), request leg {:.0} cyc, response leg {:.0} cyc",
            n.packets, n.high_priority, n.request_leg, n.response_leg
        )?;
        writeln!(
            f,
            "routers: {} flit-hops, {} bypassed",
            n.flit_hops, n.bypassed
        )?;
        let r = &self.robustness;
        write!(
            f,
            "robustness: {} packets dropped, {} retries, {} timeouts, {} lost, {} violations",
            r.packets_dropped, r.retries, r.timeouts, r.lost_txns, r.violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_mix, RunLengths};
    use noclat_sim::config::SystemConfig;
    use noclat_workloads::workload;

    #[test]
    fn report_is_complete_and_printable() {
        let r = run_mix(
            &SystemConfig::baseline_32(),
            &workload(1).apps(),
            RunLengths {
                warmup: 500,
                measure: 5_000,
            },
        );
        let rep = SystemReport::from_result(&r);
        assert_eq!(rep.apps.len(), 32);
        assert_eq!(rep.controllers.len(), 4);
        assert!(rep.total_ipc() > 0.0);
        let text = rep.to_string();
        assert!(text.contains("off-chip latency"));
        assert!(text.contains("controller 0"));
        assert!(text.lines().count() > 35);
    }
}
