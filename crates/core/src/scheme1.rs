//! Scheme-1: expediting late memory responses (Section 3.1).
//!
//! Each core tracks the dynamic average round-trip delay (`Delay_avg`) of
//! its completed off-chip accesses and periodically sends
//! `threshold = factor × Delay_avg` to every memory controller. When a
//! controller is about to inject a response whose accumulated so-far delay
//! exceeds the owning application's threshold, the response is marked
//! high-priority for its entire return path, so the latency tail is
//! squeezed toward the mean.

use noclat_sim::config::Scheme1Config;
use noclat_sim::stats::Ewma;
use noclat_sim::Cycle;

/// Smoothing weight for the dynamic `Delay_avg`. The paper recomputes the
/// average as responses return; an EWMA keeps it phase-adaptive without
/// unbounded state.
const DELAY_AVG_ALPHA: f64 = 0.05;

/// Core-side state: per-application dynamic delay averages and the periodic
/// threshold-update schedule.
#[derive(Debug, Clone)]
pub struct Scheme1 {
    cfg: Scheme1Config,
    delay_avg: Vec<Ewma>,
    next_update: Cycle,
}

impl Scheme1 {
    /// Creates state for `num_cores` applications.
    #[must_use]
    pub fn new(cfg: Scheme1Config, num_cores: usize) -> Self {
        Scheme1 {
            delay_avg: vec![Ewma::new(DELAY_AVG_ALPHA); num_cores],
            next_update: cfg.update_period,
            cfg,
        }
    }

    /// Number of applications (cores) being tracked.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.delay_avg.len()
    }

    /// Records a completed off-chip access's round-trip delay for `core`.
    pub fn record_round_trip(&mut self, core: usize, delay: Cycle) {
        self.delay_avg[core].record(delay as f64);
    }

    /// Current `Delay_avg` of `core`, if any access has completed.
    #[must_use]
    pub fn delay_avg(&self, core: usize) -> Option<f64> {
        self.delay_avg[core].value()
    }

    /// The threshold `core` would currently advertise
    /// (`factor × Delay_avg`), if it has one.
    #[must_use]
    pub fn threshold(&self, core: usize) -> Option<u32> {
        self.delay_avg[core]
            .value()
            .map(|avg| (self.cfg.threshold_factor * avg).round().max(1.0) as u32)
    }

    /// The cycle of the next scheduled threshold broadcast (the schedule's
    /// wake-up for the event kernel: skipping past it would shift every
    /// later update).
    #[must_use]
    pub fn next_update_at(&self) -> Cycle {
        self.next_update
    }

    /// Whether threshold-update messages are due at `now`; if so, advances
    /// the schedule and returns true. The caller then sends each core's
    /// [`Scheme1::threshold`] to every controller.
    pub fn update_due(&mut self, now: Cycle) -> bool {
        if now < self.next_update {
            return false;
        }
        self.next_update = now + self.cfg.update_period;
        true
    }
}

/// Controller-side state: the latest threshold received from each core.
/// Until a core's first update arrives, its responses are never considered
/// late (threshold = `u32::MAX`).
#[derive(Debug, Clone)]
pub struct ThresholdTable {
    thresholds: Vec<u32>,
}

impl ThresholdTable {
    /// Creates a table for `num_cores` applications.
    #[must_use]
    pub fn new(num_cores: usize) -> Self {
        ThresholdTable {
            thresholds: vec![u32::MAX; num_cores],
        }
    }

    /// Installs a received threshold update.
    pub fn set(&mut self, core: usize, threshold: u32) {
        self.thresholds[core] = threshold;
    }

    /// The decision of Section 3.1: is a response with this so-far delay
    /// late for `core`?
    #[must_use]
    pub fn is_late(&self, core: usize, so_far_delay: u32) -> bool {
        so_far_delay > self.thresholds[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;

    fn cfg() -> Scheme1Config {
        let mut c = SystemConfig::baseline_32().scheme1;
        c.enabled = true;
        c
    }

    #[test]
    fn threshold_tracks_average() {
        let mut s = Scheme1::new(cfg(), 2);
        assert_eq!(s.threshold(0), None);
        for _ in 0..200 {
            s.record_round_trip(0, 300);
        }
        let th = s.threshold(0).unwrap();
        assert!(
            (355..=365).contains(&th),
            "1.2 × 300 should be ~360, got {th}"
        );
        assert_eq!(s.threshold(1), None, "cores are independent");
    }

    #[test]
    fn threshold_never_rounds_to_zero() {
        let mut s = Scheme1::new(cfg(), 1);
        s.record_round_trip(0, 0); // degenerate zero-delay sample
        assert_eq!(s.threshold(0), Some(1), "threshold floors at 1 cycle");
    }

    #[test]
    fn update_schedule_fires_periodically() {
        let mut s = Scheme1::new(cfg(), 1);
        let period = cfg().update_period;
        assert!(!s.update_due(period - 1));
        assert!(s.update_due(period));
        assert!(!s.update_due(period + 1));
        assert!(s.update_due(2 * period));
    }

    #[test]
    fn table_defaults_to_never_late() {
        let t = ThresholdTable::new(4);
        assert!(!t.is_late(2, u32::MAX - 1));
    }

    #[test]
    fn table_lateness_decision() {
        let mut t = ThresholdTable::new(4);
        t.set(1, 400);
        assert!(!t.is_late(1, 400), "equal to threshold is not late");
        assert!(t.is_late(1, 401));
        assert!(!t.is_late(0, 401), "other cores unaffected");
    }

    #[test]
    fn saturated_age_is_still_late_not_wrapped() {
        use noclat_noc::accumulate_age;
        // The so-far-delay field is 12 bits (Section 3.1): a message that
        // has waited past 4095 cycles must saturate at the maximum, not
        // wrap around to a small value that would read as "young" and lose
        // its expedited treatment at the controller.
        let max_age = SystemConfig::baseline_32().noc.max_age();
        assert_eq!(max_age, 4095, "paper's 12-bit age field");
        let near_full = max_age - 10;
        let saturated = accumulate_age(near_full, 100, 1, max_age);
        assert_eq!(saturated, max_age, "accumulation caps at the field max");
        assert_eq!(
            accumulate_age(saturated, 1, 1, max_age),
            max_age,
            "further hops stay pinned at the max"
        );
        let mut t = ThresholdTable::new(1);
        t.set(0, 400);
        assert!(
            t.is_late(0, saturated),
            "a saturated age must still exceed any realistic threshold"
        );
        // Wraparound would have produced (near_full + 100) mod 4096 = 89,
        // which reads as a fresh message and silently drops the priority.
        let wrapped = (u64::from(near_full) + 100) % (u64::from(max_age) + 1);
        assert!(!t.is_late(0, wrapped as u32), "the bug saturation prevents");
    }

    #[test]
    fn saturation_with_frequency_multiplier_cannot_overflow() {
        use noclat_noc::accumulate_age;
        let max_age = 4095;
        // Even an absurd delay × multiplier product saturates cleanly.
        assert_eq!(accumulate_age(4000, u64::MAX, u32::MAX, max_age), max_age);
        assert_eq!(accumulate_age(max_age, 0, 1, max_age), max_age);
    }

    #[test]
    fn delay_avg_adapts_to_phases() {
        let mut s = Scheme1::new(cfg(), 1);
        for _ in 0..200 {
            s.record_round_trip(0, 200);
        }
        for _ in 0..200 {
            s.record_round_trip(0, 800);
        }
        let avg = s.delay_avg(0).unwrap();
        assert!(avg > 700.0, "average must follow the new phase, got {avg}");
    }
}
