//! Protocol messages carried by the on-chip network.
//!
//! These are the five message legs of the paper's Figure 2 plus dirty
//! writebacks and the Scheme-1 threshold-update messages. Single-flit
//! messages carry no data (requests); data-bearing messages carry a 64 B
//! cache line (header + four 128-bit flits, Table 1).

/// A transaction identifier: one per L1-miss that enters the network.
pub type TxnId = u64;

/// Payload of a network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMsg {
    /// Path 1: L1 miss request, core tile → L2 bank tile.
    L2Req {
        /// Transaction.
        txn: TxnId,
        /// Line-aligned address.
        line: u64,
    },
    /// Dirty L1 victim, core tile → L2 bank tile (no response).
    L1Writeback {
        /// Line-aligned address of the victim.
        line: u64,
    },
    /// Path 2: L2 miss request, L2 bank tile → memory controller.
    MemReq {
        /// Transaction.
        txn: TxnId,
        /// Line-aligned address.
        line: u64,
    },
    /// Dirty L2 victim, L2 bank tile → memory controller (no response).
    MemWriteback {
        /// Line-aligned address of the victim.
        line: u64,
    },
    /// Path 4: data response, memory controller → L2 bank tile.
    MemResp {
        /// Transaction.
        txn: TxnId,
        /// Line-aligned address.
        line: u64,
    },
    /// Path 5: data response, L2 bank tile → core tile.
    L2Resp {
        /// Transaction (the L1-level primary miss).
        txn: TxnId,
        /// Line-aligned address.
        line: u64,
    },
    /// Scheme-1 control: a core's current lateness threshold, sent
    /// periodically to every memory controller (itself prioritized,
    /// Section 3.1).
    ThresholdUpdate {
        /// Originating core.
        core: usize,
        /// Threshold in cycles (compared against so-far delays).
        threshold: u32,
    },
}

impl MemMsg {
    /// Whether this message carries a cache line of data.
    #[must_use]
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            MemMsg::L1Writeback { .. }
                | MemMsg::MemWriteback { .. }
                | MemMsg::MemResp { .. }
                | MemMsg::L2Resp { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(!MemMsg::L2Req { txn: 1, line: 0 }.carries_data());
        assert!(!MemMsg::MemReq { txn: 1, line: 0 }.carries_data());
        assert!(!MemMsg::ThresholdUpdate {
            core: 0,
            threshold: 100
        }
        .carries_data());
        assert!(MemMsg::L1Writeback { line: 0 }.carries_data());
        assert!(MemMsg::MemWriteback { line: 0 }.carries_data());
        assert!(MemMsg::MemResp { txn: 1, line: 0 }.carries_data());
        assert!(MemMsg::L2Resp { txn: 1, line: 0 }.carries_data());
    }
}
