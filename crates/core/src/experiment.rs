//! Experiment driver: runs workload mixes, computes per-application IPCs,
//! alone-run baselines and the (normalized) weighted speedup metric of
//! Section 4.1.

use std::collections::HashMap;

use noclat_cpu::{Instr, InstrStream};
use noclat_sim::config::SystemConfig;
use noclat_sim::Cycle;
use noclat_workloads::SpecApp;

use crate::simulation::Simulation;
use crate::system::System;

/// Warmup/measurement lengths for one simulation.
///
/// The paper fast-forwards 1 B cycles and measures over a multi-million
/// cycle window; our synthetic streams reach steady state far faster, so the
/// defaults are scaled down (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLengths {
    /// Cycles simulated before measurement starts.
    pub warmup: Cycle,
    /// Cycles measured.
    pub measure: Cycle,
}

impl RunLengths {
    /// Harness defaults: 20 k warmup + 150 k measured cycles (the paper
    /// fast-forwards 1 B cycles and measures for millions; our synthetic
    /// streams are stationary after warmup, so shorter windows suffice —
    /// see EXPERIMENTS.md for the stability check).
    #[must_use]
    pub fn standard() -> Self {
        RunLengths {
            warmup: 20_000,
            measure: 150_000,
        }
    }

    /// Short runs for tests and smoke checks.
    #[must_use]
    pub fn quick() -> Self {
        RunLengths {
            warmup: 5_000,
            measure: 40_000,
        }
    }
}

impl Default for RunLengths {
    fn default() -> Self {
        Self::standard()
    }
}

/// Measured behaviour of one application within a mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppResult {
    /// The application.
    pub app: SpecApp,
    /// Core it ran on.
    pub core: usize,
    /// Instructions per cycle over the measurement window.
    pub ipc: f64,
    /// Completed off-chip accesses.
    pub offchip: u64,
    /// Mean end-to-end latency of its off-chip accesses (cycles).
    pub avg_latency: f64,
}

/// Result of simulating one workload mix: per-app results plus the final
/// [`System`] for deeper inspection (latency histograms, idleness monitors).
#[derive(Debug)]
pub struct MixResult {
    /// Per-application results, in core order.
    pub per_app: Vec<AppResult>,
    /// The simulated system after the measurement window.
    pub system: System,
}

impl MixResult {
    /// Per-core IPCs.
    #[must_use]
    pub fn ipcs(&self) -> Vec<f64> {
        self.per_app.iter().map(|a| a.ipc).collect()
    }

    /// Average bank idleness across all controllers.
    #[must_use]
    pub fn avg_bank_idleness(&self) -> f64 {
        let n = self.system.num_controllers();
        (0..n)
            .map(|m| self.system.idleness(m).overall())
            .sum::<f64>()
            / n as f64
    }
}

/// Simulates `apps` on a system built from `cfg`.
///
/// # Panics
///
/// Panics if the configuration is invalid or `apps.len()` differs from the
/// configured core count.
#[must_use]
pub fn run_mix(cfg: &SystemConfig, apps: &[SpecApp], lengths: RunLengths) -> MixResult {
    let mut sim = Simulation::builder(cfg.clone())
        .workload(apps)
        .build()
        .expect("valid experiment configuration");
    sim.warm_up(lengths.warmup);
    sim.run(lengths.measure);
    let system = sim.into_system();
    let per_app = apps
        .iter()
        .enumerate()
        .map(|(core, &app)| {
            let stats = system.core_stats(core);
            let lat = system.tracker().app(core);
            AppResult {
                app,
                core,
                ipc: stats.ipc(),
                offchip: lat.total.count(),
                avg_latency: lat.total.mean(),
            }
        })
        .collect();
    MixResult { per_app, system }
}

/// An instruction stream that never touches memory; used to idle the other
/// cores during alone runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleStream;

impl InstrStream for IdleStream {
    fn next_instr(&mut self) -> Instr {
        Instr::Compute { latency: 1 }
    }
}

/// The canonical core used for alone runs: a central tile, so alone-run
/// network distances are representative.
#[must_use]
pub fn canonical_core(cfg: &SystemConfig) -> usize {
    let w = usize::from(cfg.topology.width);
    let h = usize::from(cfg.topology.height);
    (h / 2) * w + w / 2
}

/// IPC of `app` running alone (every other core idles), the denominator of
/// the weighted-speedup metric.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn alone_ipc(cfg: &SystemConfig, app: SpecApp, lengths: RunLengths) -> f64 {
    let core = canonical_core(cfg);
    // Alone runs never benefit from prioritization (there is nothing to
    // contend with), so run them on the baseline to share cache entries
    // across scheme variants.
    let mut base = cfg.clone();
    base.scheme1.enabled = false;
    base.scheme2.enabled = false;
    base.policy = noclat_sim::config::PolicyConfig::default();
    // Alone IPCs are denominators shared across kernel comparisons; pin the
    // default kernel so both sides normalize against the same runs.
    base.kernel = noclat_sim::config::KernelKind::default();
    let rng = noclat_sim::rng::SimRng::new(base.seed);
    let streams: Vec<Box<dyn InstrStream>> = (0..base.num_cores())
        .map(|slot| {
            if slot == core {
                Box::new(noclat_workloads::SyntheticStream::new(app, slot, &rng))
                    as Box<dyn InstrStream>
            } else {
                Box::new(IdleStream) as Box<dyn InstrStream>
            }
        })
        .collect();
    let mut sim = Simulation::builder(base)
        .streams(streams)
        .build()
        .expect("valid configuration");
    sim.warm_up(lengths.warmup);
    sim.run(lengths.measure);
    sim.system().core_stats(core).ipc()
}

/// Computes alone IPCs for every distinct application in `apps`.
#[must_use]
pub fn alone_ipc_table(
    cfg: &SystemConfig,
    apps: &[SpecApp],
    lengths: RunLengths,
) -> HashMap<SpecApp, f64> {
    let mut table = HashMap::new();
    for &app in apps {
        table
            .entry(app)
            .or_insert_with(|| alone_ipc(cfg, app, lengths));
    }
    table
}

/// Weighted speedup (Section 4.1): `Σ IPC_shared(i) / IPC_alone(i)`.
///
/// # Panics
///
/// Panics if the slices differ in length or an alone IPC is non-positive.
#[must_use]
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "per-app IPC lists must align");
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            s / a
        })
        .sum()
}

/// Weighted speedup of a mix result given an alone-IPC table.
///
/// # Panics
///
/// Panics if an application is missing from the table.
#[must_use]
pub fn weighted_speedup_of(result: &MixResult, alone: &HashMap<SpecApp, f64>) -> f64 {
    let shared: Vec<f64> = result.per_app.iter().map(|a| a.ipc).collect();
    let alone: Vec<f64> = result
        .per_app
        .iter()
        .map(|a| *alone.get(&a.app).expect("alone IPC available"))
        .collect();
    weighted_speedup(&shared, &alone)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_math() {
        let ws = weighted_speedup(&[1.0, 2.0], &[2.0, 2.0]);
        assert!((ws - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn weighted_speedup_rejects_mismatch() {
        let _ = weighted_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn alone_table_computes_each_app_once() {
        let cfg = SystemConfig::baseline_32();
        let lengths = RunLengths {
            warmup: 200,
            measure: 1_500,
        };
        let apps = [
            noclat_workloads::SpecApp::Gamess,
            noclat_workloads::SpecApp::Gamess,
            noclat_workloads::SpecApp::Povray,
        ];
        let table = alone_ipc_table(&cfg, &apps, lengths);
        assert_eq!(table.len(), 2, "duplicates must collapse");
        assert!(table.values().all(|&v| v > 0.0));
    }

    #[test]
    fn canonical_core_is_central() {
        let cfg = SystemConfig::baseline_32();
        let c = canonical_core(&cfg);
        assert_eq!(c, 2 * 8 + 4);
        assert!(c < cfg.num_cores());
    }

    #[test]
    fn idle_stream_never_touches_memory() {
        let mut s = IdleStream;
        for _ in 0..100 {
            assert!(!s.next_instr().is_mem());
        }
    }
}
