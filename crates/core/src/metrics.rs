//! End-to-end latency accounting: per-application round-trip histograms,
//! so-far-delay histograms at the memory controller, and the five-segment
//! path breakdown of Figure 4.

use noclat_sim::stats::{Histogram, RunningMean};
use noclat_sim::Cycle;

/// Histogram geometry for latency distributions: 25-cycle bins over
/// `[0, 4000)` (the 12-bit age field saturates at 4095).
const BIN_WIDTH: u64 = 25;
const RANGE: u64 = 4000;
/// Bucket width for the Figure-4 style breakdown (delay ranges on the
/// x-axis).
const BREAKDOWN_BUCKET: u64 = 50;

/// Timestamps of one off-chip transaction along the five paths of Figure 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnTimes {
    /// L1 miss detected; request injected toward L2 (start of path 1).
    pub issued: Cycle,
    /// Request delivered at the L2 bank (end of path 1).
    pub at_l2: Cycle,
    /// Request delivered at the memory controller (end of path 2).
    pub at_mc: Cycle,
    /// Data read from DRAM; response about to be injected (end of path 3).
    pub mc_done: Cycle,
    /// Response delivered back at the L2 bank (end of path 4).
    pub back_at_l2: Cycle,
    /// Data filled into L1/core (end of path 5).
    pub done: Cycle,
}

impl TxnTimes {
    /// Total round-trip delay.
    #[must_use]
    pub fn total(&self) -> Cycle {
        self.done.saturating_sub(self.issued)
    }

    /// The five path segments, in Figure-2 order:
    /// `[L1→L2, L2→Mem, Mem, Mem→L2, L2→L1]`.
    #[must_use]
    pub fn segments(&self) -> [Cycle; 5] {
        [
            self.at_l2.saturating_sub(self.issued),
            self.at_mc.saturating_sub(self.at_l2),
            self.mc_done.saturating_sub(self.at_mc),
            self.back_at_l2.saturating_sub(self.mc_done),
            self.done.saturating_sub(self.back_at_l2),
        ]
    }
}

/// Per-delay-range accumulator for the Figure-4 breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SegmentRow {
    /// Transactions in this delay range.
    pub count: u64,
    /// Summed segment delays `[L1→L2, L2→Mem, Mem, Mem→L2, L2→L1]`.
    pub sums: [f64; 5],
}

impl SegmentRow {
    /// Average segment delays for this range.
    #[must_use]
    pub fn averages(&self) -> [f64; 5] {
        if self.count == 0 {
            [0.0; 5]
        } else {
            self.sums.map(|s| s / self.count as f64)
        }
    }

    /// Merges another row into this one (shard reduction).
    pub fn merge(&mut self, other: &SegmentRow) {
        self.count += other.count;
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
    }
}

/// Latency statistics for one application (core).
#[derive(Debug, Clone)]
pub struct AppLatency {
    /// Round-trip delays of completed off-chip accesses.
    pub total: Histogram,
    /// So-far delays captured right after the memory controller (the value
    /// Scheme-1 compares against its threshold; Figure 9's solid curve).
    pub so_far: Histogram,
    /// Figure-4 breakdown rows, indexed by `total / BREAKDOWN_BUCKET`.
    rows: Vec<SegmentRow>,
}

impl AppLatency {
    fn new() -> Self {
        AppLatency {
            total: Histogram::new(BIN_WIDTH, RANGE),
            so_far: Histogram::new(BIN_WIDTH, RANGE),
            rows: vec![SegmentRow::default(); (RANGE / BREAKDOWN_BUCKET) as usize + 1],
        }
    }

    /// Breakdown rows: `(range_start, row)` for every non-empty delay range.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(u64, SegmentRow)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.count > 0)
            .map(|(i, r)| (i as u64 * BREAKDOWN_BUCKET, *r))
            .collect()
    }

    /// An empty per-application accumulator with the standard geometry, for
    /// use as the identity of a shard reduction.
    #[must_use]
    pub fn empty() -> Self {
        AppLatency::new()
    }

    /// All breakdown rows in bucket order, including empty ones. Together
    /// with [`AppLatency::from_parts`] this is the lossless serialization
    /// surface the sweep journal uses.
    #[must_use]
    pub fn rows(&self) -> &[SegmentRow] {
        &self.rows
    }

    /// Reconstructs an accumulator from its parts (inverse of reading
    /// `total`/`so_far`/[`AppLatency::rows`] back).
    ///
    /// # Panics
    ///
    /// Panics if `rows` does not have the standard breakdown geometry.
    #[must_use]
    pub fn from_parts(total: Histogram, so_far: Histogram, rows: Vec<SegmentRow>) -> Self {
        assert_eq!(
            rows.len(),
            (RANGE / BREAKDOWN_BUCKET) as usize + 1,
            "breakdown row count must match the standard geometry"
        );
        AppLatency {
            total,
            so_far,
            rows,
        }
    }

    /// Merges another application's statistics into this one (shard
    /// reduction): histograms and breakdown rows add sample-for-sample, so
    /// merging the shards of a sharded sweep yields exactly the aggregate a
    /// serial pass over the same runs would produce.
    pub fn merge(&mut self, other: &AppLatency) {
        self.total.merge(&other.total);
        self.so_far.merge(&other.so_far);
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            a.merge(b);
        }
    }
}

/// Tracks latency statistics for every application in a run.
#[derive(Debug, Clone)]
pub struct LatencyTracker {
    apps: Vec<AppLatency>,
    /// Return-path delay (MC-done → core fill) of responses expedited by
    /// Scheme-1.
    expedited_return: RunningMean,
    /// Return-path delay of normal-priority responses.
    normal_return: RunningMean,
    enabled: bool,
}

impl LatencyTracker {
    /// Creates a tracker for `num_cores` applications (enabled).
    #[must_use]
    pub fn new(num_cores: usize) -> Self {
        LatencyTracker {
            apps: (0..num_cores).map(|_| AppLatency::new()).collect(),
            expedited_return: RunningMean::new(),
            normal_return: RunningMean::new(),
            enabled: true,
        }
    }

    /// Suspends recording (warmup).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Resumes recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Discards all recorded samples (end of warmup).
    pub fn reset(&mut self) {
        let n = self.apps.len();
        self.apps = (0..n).map(|_| AppLatency::new()).collect();
        self.expedited_return = RunningMean::new();
        self.normal_return = RunningMean::new();
    }

    /// Records the return-path delay of one response, by priority class.
    pub fn record_return_leg(&mut self, expedited: bool, delay: u64) {
        if !self.enabled {
            return;
        }
        if expedited {
            self.expedited_return.record(delay as f64);
        } else {
            self.normal_return.record(delay as f64);
        }
    }

    /// Mean return-path delay of (expedited, normal) responses.
    #[must_use]
    pub fn return_leg_means(&self) -> (Option<f64>, Option<f64>) {
        (self.expedited_return.mean(), self.normal_return.mean())
    }

    /// The raw (expedited, normal) return-leg accumulators, for lossless
    /// serialization by the sweep journal.
    #[must_use]
    pub fn return_legs(&self) -> (&RunningMean, &RunningMean) {
        (&self.expedited_return, &self.normal_return)
    }

    /// Reconstructs a tracker from its parts (inverse of reading
    /// [`LatencyTracker::app`] per core and [`LatencyTracker::return_legs`]
    /// back). The restored tracker is enabled.
    #[must_use]
    pub fn from_parts(
        apps: Vec<AppLatency>,
        expedited_return: RunningMean,
        normal_return: RunningMean,
    ) -> Self {
        LatencyTracker {
            apps,
            expedited_return,
            normal_return,
            enabled: true,
        }
    }

    /// Records the so-far delay of a response at MC injection time.
    pub fn record_so_far(&mut self, core: usize, so_far: u32) {
        if self.enabled {
            self.apps[core].so_far.record(u64::from(so_far));
        }
    }

    /// Records a completed off-chip transaction.
    pub fn record_completion(&mut self, core: usize, times: &TxnTimes) {
        if !self.enabled {
            return;
        }
        let app = &mut self.apps[core];
        let total = times.total();
        app.total.record(total);
        let bucket = ((total / BREAKDOWN_BUCKET) as usize).min(app.rows.len() - 1);
        let row = &mut app.rows[bucket];
        row.count += 1;
        for (sum, seg) in row.sums.iter_mut().zip(times.segments()) {
            *sum += seg as f64;
        }
    }

    /// Latency statistics of one application.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn app(&self, core: usize) -> &AppLatency {
        &self.apps[core]
    }

    /// Number of tracked applications.
    #[must_use]
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Completed off-chip accesses per application.
    #[must_use]
    pub fn completions(&self) -> Vec<u64> {
        self.apps.iter().map(|a| a.total.count()).collect()
    }

    /// Merges another tracker into this one (shard reduction).
    ///
    /// # Panics
    ///
    /// Panics if the trackers cover different application counts.
    pub fn merge(&mut self, other: &LatencyTracker) {
        assert_eq!(
            self.apps.len(),
            other.apps.len(),
            "tracker app counts must match"
        );
        for (a, b) in self.apps.iter_mut().zip(&other.apps) {
            a.merge(b);
        }
        self.expedited_return.merge(&other.expedited_return);
        self.normal_return.merge(&other.normal_return);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(issued: u64, segs: [u64; 5]) -> TxnTimes {
        let mut t = TxnTimes {
            issued,
            ..TxnTimes::default()
        };
        t.at_l2 = issued + segs[0];
        t.at_mc = t.at_l2 + segs[1];
        t.mc_done = t.at_mc + segs[2];
        t.back_at_l2 = t.mc_done + segs[3];
        t.done = t.back_at_l2 + segs[4];
        t
    }

    #[test]
    fn segments_roundtrip() {
        let t = times(100, [20, 30, 150, 25, 15]);
        assert_eq!(t.segments(), [20, 30, 150, 25, 15]);
        assert_eq!(t.total(), 240);
    }

    #[test]
    fn tracker_records_and_buckets() {
        let mut tr = LatencyTracker::new(2);
        tr.record_completion(0, &times(0, [20, 30, 150, 25, 15])); // total 240
        tr.record_completion(0, &times(0, [20, 30, 160, 25, 15])); // total 250
        tr.record_so_far(0, 200);
        let app = tr.app(0);
        assert_eq!(app.total.count(), 2);
        assert_eq!(app.so_far.count(), 1);
        let rows = app.breakdown();
        assert_eq!(rows.len(), 2, "240 and 250 land in ranges 200 and 250");
        assert_eq!(rows[0].0, 200);
        assert_eq!(rows[1].0, 250);
        let avg = rows[0].1.averages();
        assert_eq!(avg[2], 150.0);
        assert_eq!(tr.completions(), vec![2, 0]);
    }

    #[test]
    fn disabled_tracker_drops_samples() {
        let mut tr = LatencyTracker::new(1);
        tr.disable();
        tr.record_completion(0, &times(0, [1, 1, 1, 1, 1]));
        tr.record_so_far(0, 10);
        assert_eq!(tr.app(0).total.count(), 0);
        assert_eq!(tr.app(0).so_far.count(), 0);
        tr.enable();
        tr.record_completion(0, &times(0, [1, 1, 1, 1, 1]));
        assert_eq!(tr.app(0).total.count(), 1);
    }

    #[test]
    fn reset_clears_samples() {
        let mut tr = LatencyTracker::new(1);
        tr.record_completion(0, &times(0, [1, 1, 1, 1, 1]));
        tr.reset();
        assert_eq!(tr.app(0).total.count(), 0);
    }

    #[test]
    fn tracker_merge_equals_unsharded() {
        let recs = [
            (0usize, times(0, [20, 30, 150, 25, 15])),
            (1, times(0, [10, 10, 400, 10, 10])),
            (0, times(0, [5, 5, 50, 5, 5])),
            (1, times(0, [8, 9, 10, 11, 12])),
        ];
        let mut whole = LatencyTracker::new(2);
        let mut a = LatencyTracker::new(2);
        let mut b = LatencyTracker::new(2);
        for (i, (core, t)) in recs.iter().enumerate() {
            whole.record_completion(*core, t);
            whole.record_so_far(*core, t.total() as u32);
            whole.record_return_leg(i % 2 == 0, t.total());
            let shard = if i < 2 { &mut a } else { &mut b };
            shard.record_completion(*core, t);
            shard.record_so_far(*core, t.total() as u32);
            shard.record_return_leg(i % 2 == 0, t.total());
        }
        a.merge(&b);
        for core in 0..2 {
            assert_eq!(a.app(core).total, whole.app(core).total);
            assert_eq!(a.app(core).so_far, whole.app(core).so_far);
            assert_eq!(a.app(core).breakdown(), whole.app(core).breakdown());
        }
        assert_eq!(a.return_leg_means(), whole.return_leg_means());
    }

    #[test]
    #[should_panic(expected = "tracker app counts must match")]
    fn tracker_merge_rejects_shape_mismatch() {
        let mut a = LatencyTracker::new(1);
        let b = LatencyTracker::new(2);
        a.merge(&b);
    }
}
