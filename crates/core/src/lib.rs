//! Reproduction of *Addressing End-to-End Memory Access Latency in NoC-Based
//! Multicores* (Sharifi, Kultursay, Kandemir, Das — MICRO 2012).
//!
//! This crate assembles the complete simulated multicore — out-of-order
//! cores, private L1s, a banked S-NUCA L2, a 2D-mesh wormhole NoC and corner
//! memory controllers — and implements the paper's two contributions on top:
//!
//! * **Scheme-1** ([`scheme1`]): memory responses whose accumulated
//!   so-far delay exceeds a per-application dynamic threshold
//!   (`1.2 × Delay_avg`) are expedited through the return network, squeezing
//!   the latency tail.
//! * **Scheme-2** ([`scheme2`]): L2-miss requests destined for banks a tile
//!   believes idle (per its local Bank History Table) are expedited toward
//!   the memory controllers, balancing bank load.
//!
//! # Quick start
//!
//! ```
//! use noclat::{run_mix, RunLengths, SystemConfig};
//! use noclat_workloads::workload;
//!
//! // Paper baseline (Table 1), with both schemes enabled.
//! let cfg = SystemConfig::baseline_32().with_both_schemes();
//! let apps = workload(2).apps();
//! let lengths = RunLengths { warmup: 200, measure: 2_000 }; // tiny demo run
//! let result = run_mix(&cfg, &apps, lengths);
//! assert_eq!(result.per_app.len(), 32);
//! ```

pub mod experiment;
pub mod messages;
pub mod metrics;
pub mod policy;
pub mod probe;
pub mod report;
pub mod scheme1;
pub mod scheme2;
pub mod simulation;
pub mod system;
pub mod trace;
pub mod watchdog;

pub use experiment::{
    alone_ipc, alone_ipc_table, canonical_core, run_mix, weighted_speedup, weighted_speedup_of,
    AppResult, IdleStream, MixResult, RunLengths,
};
pub use messages::{MemMsg, TxnId};
pub use metrics::{AppLatency, LatencyTracker, SegmentRow, TxnTimes};
pub use policy::{
    build_request_policy, build_response_policy, BaselinePolicy, OldestFirstPolicy, RequestPolicy,
    ResponsePolicy, Scheme1Policy, Scheme2Policy, StaticPolicy,
};
pub use probe::{CountingProbe, McDequeue, Probe, ProbeCounters, Retire};
pub use report::{ControllerReport, NetworkReport, SystemReport};
pub use scheme1::{Scheme1, ThresholdTable};
pub use scheme2::BankHistoryTable;
pub use simulation::{Simulation, SimulationBuilder};
pub use system::{RobustnessStats, System};
pub use trace::{TraceLog, TxnRecord};
pub use watchdog::{LivenessViolation, Watchdog};

// Re-export the configuration types callers need to drive experiments.
pub use noclat_sim::cancel::CancelToken;
pub use noclat_sim::config::{
    ConfigError, KernelKind, McPlacement, MemSchedPolicy, PolicyConfig, PolicyOverride,
    RouterPipeline, Scheme1Config, Scheme2Config, StarvationPolicy, SystemConfig, TopologyConfig,
    TopologyKind, TopologyOverride, WatchdogConfig,
};
pub use noclat_sim::error::{FaultError, JournalError, SimError};
pub use noclat_sim::faults::FaultPlan;
pub use noclat_sim::journal::{Journal, JournalRecord};
pub use noclat_sim::pool::{
    job_rng, job_seed, run_jobs, run_jobs_supervised, Job, JobCtx, RetryPolicy,
};
pub use noclat_sim::Cycle;
