//! The pluggable prioritization-policy layer.
//!
//! Every point where a message's network priority is decided goes through
//! one of three seams:
//!
//! 1. **Request injection** ([`RequestPolicy`]): the priority an L2 miss
//!    gets when it enters the request network (the paper's Scheme-2 site).
//! 2. **Response injection** ([`ResponsePolicy`]): the priority a memory
//!    controller gives a reply it is about to inject (the Scheme-1 site),
//!    plus the side-channel Scheme-1 needs — periodic threshold updates,
//!    threshold installation at the controllers, and round-trip feedback.
//! 3. **Arbitration** (`noclat_noc::ArbitrationPolicy`): how routers rank
//!    competing flits in VC/switch allocation, including the starvation
//!    age guard.
//!
//! Policies are resolved by string name from
//! [`noclat_sim::config::PolicyConfig`]; the name lists live in
//! `crates/sim/src/config.rs` (`REQUEST_POLICIES` / `RESPONSE_POLICIES`) so
//! configuration validation can reject unknown names without this crate.
//! An unset name derives from the scheme flags, which keeps pre-existing
//! configurations — including the golden-result suite — byte-identical.

use noclat_noc::Priority;
use noclat_sim::config::{ConfigError, SystemConfig};
use noclat_sim::error::SimError;
use noclat_sim::stats::Ewma;
use noclat_sim::Cycle;

use crate::scheme1::{Scheme1, ThresholdTable};
use crate::scheme2::BankHistoryTable;

/// Smoothing weight for the oldest-first policies' running age averages
/// (mirrors Scheme-1's `Delay_avg` smoothing so the two are comparable).
const OLDEST_FIRST_ALPHA: f64 = 0.05;

/// Decision point 1: the priority an L2 miss gets when it is injected into
/// the request network toward a memory controller.
pub trait RequestPolicy: std::fmt::Debug + Send {
    /// Registry name of this policy.
    fn name(&self) -> &'static str;

    /// Decides the injection priority of an off-chip request leaving the L2
    /// bank at `node`, issued by `core`, targeting global DRAM `bank`, with
    /// so-far delay `age`. Called exactly once per injected request (a
    /// stateful policy may record the event).
    fn request_priority(
        &mut self,
        node: usize,
        bank: usize,
        core: usize,
        age: u32,
        now: Cycle,
    ) -> Priority;
}

/// Decision point 2: the priority a memory controller gives a response it
/// is about to inject, plus the feedback/update side-channel Scheme-1 uses.
///
/// The update hooks default to no-ops so stateless policies implement only
/// [`ResponsePolicy::response_priority`].
pub trait ResponsePolicy: std::fmt::Debug + Send {
    /// Registry name of this policy.
    fn name(&self) -> &'static str;

    /// Threshold updates to broadcast this cycle, as `(core, threshold)`
    /// pairs; an empty vector means no messages (and no network activity).
    /// Called once per cycle before the network ticks.
    fn poll_updates(&mut self, now: Cycle) -> Vec<(usize, u32)> {
        let _ = now;
        Vec::new()
    }

    /// The next cycle at which [`ResponsePolicy::poll_updates`] could return
    /// anything (the policy's wake-up for the event kernel). `None` — the
    /// default, right for stateless policies — means the policy never
    /// initiates traffic on its own.
    fn next_update(&self) -> Option<Cycle> {
        None
    }

    /// Installs a threshold update delivered to controller `mc`.
    fn install_threshold(&mut self, mc: usize, core: usize, threshold: u32) {
        let _ = (mc, core, threshold);
    }

    /// Feedback when an off-chip access completes at the core: the
    /// round-trip delay read from the returning message's age field.
    fn record_round_trip(&mut self, core: usize, final_age: u32) {
        let _ = (core, final_age);
    }

    /// Decides the injection priority of the response controller `mc` is
    /// about to send back for `core`'s access, whose accumulated so-far
    /// delay is `so_far_delay`.
    fn response_priority(
        &mut self,
        mc: usize,
        core: usize,
        so_far_delay: u32,
        now: Cycle,
    ) -> Priority;
}

/// The no-op policy: every message is injected at normal priority. Equals
/// running with the schemes disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselinePolicy;

impl RequestPolicy for BaselinePolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }
    fn request_priority(&mut self, _: usize, _: usize, _: usize, _: u32, _: Cycle) -> Priority {
        Priority::Normal
    }
}

impl ResponsePolicy for BaselinePolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }
    fn response_priority(&mut self, _: usize, _: usize, _: u32, _: Cycle) -> Priority {
        Priority::Normal
    }
}

/// Scheme-2 behind the [`RequestPolicy`] seam: per-node Bank History
/// Tables expedite requests aimed at banks this tile has not used recently
/// (Section 3.2).
#[derive(Debug, Clone)]
pub struct Scheme2Policy {
    tables: Vec<BankHistoryTable>,
}

impl Scheme2Policy {
    /// One Bank History Table per node, covering `total_banks` DRAM banks.
    #[must_use]
    pub fn new(cfg: &SystemConfig, total_banks: usize) -> Self {
        Scheme2Policy {
            tables: (0..cfg.num_cores())
                .map(|_| BankHistoryTable::new(cfg.scheme2, total_banks))
                .collect(),
        }
    }
}

impl RequestPolicy for Scheme2Policy {
    fn name(&self) -> &'static str {
        "scheme2"
    }
    fn request_priority(
        &mut self,
        node: usize,
        bank: usize,
        _core: usize,
        _age: u32,
        now: Cycle,
    ) -> Priority {
        let expedite = self.tables[node].should_expedite(bank, now);
        self.tables[node].record(bank, now);
        if expedite {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

/// Scheme-1 behind the [`ResponsePolicy`] seam: cores advertise
/// `factor × Delay_avg` thresholds to the controllers, which expedite
/// responses whose so-far delay exceeds the owner's threshold
/// (Section 3.1).
#[derive(Debug, Clone)]
pub struct Scheme1Policy {
    s1: Scheme1,
    tables: Vec<ThresholdTable>,
}

impl Scheme1Policy {
    /// Core-side averages plus one threshold table per controller.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        let n = cfg.num_cores();
        Scheme1Policy {
            s1: Scheme1::new(cfg.scheme1, n),
            tables: (0..cfg.mem.num_controllers)
                .map(|_| ThresholdTable::new(n))
                .collect(),
        }
    }
}

impl ResponsePolicy for Scheme1Policy {
    fn name(&self) -> &'static str {
        "scheme1"
    }
    fn poll_updates(&mut self, now: Cycle) -> Vec<(usize, u32)> {
        if !self.s1.update_due(now) {
            return Vec::new();
        }
        let n = self.s1.num_cores();
        (0..n)
            .filter_map(|c| self.s1.threshold(c).map(|t| (c, t)))
            .collect()
    }
    fn next_update(&self) -> Option<Cycle> {
        Some(self.s1.next_update_at())
    }
    fn install_threshold(&mut self, mc: usize, core: usize, threshold: u32) {
        self.tables[mc].set(core, threshold);
    }
    fn record_round_trip(&mut self, core: usize, final_age: u32) {
        self.s1.record_round_trip(core, Cycle::from(final_age));
    }
    fn response_priority(
        &mut self,
        mc: usize,
        core: usize,
        so_far_delay: u32,
        _now: Cycle,
    ) -> Priority {
        if self.tables[mc].is_late(core, so_far_delay) {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

/// Global-age ("oldest-first") injection policy: expedite a message whose
/// so-far delay exceeds `factor ×` the running average of all delays seen
/// at the same decision point. A message-free, locally-computed ablation of
/// Scheme-1's core-driven thresholds (the comparison uses the pre-update
/// average, then records, so the decision sequence is deterministic).
#[derive(Debug, Clone)]
pub struct OldestFirstPolicy {
    avg: Ewma,
    factor: f64,
}

impl OldestFirstPolicy {
    /// Uses the Scheme-1 threshold factor so the two are comparable.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        OldestFirstPolicy {
            avg: Ewma::new(OLDEST_FIRST_ALPHA),
            factor: cfg.scheme1.threshold_factor,
        }
    }

    fn decide(&mut self, age: u32) -> Priority {
        let late = self
            .avg
            .value()
            .is_some_and(|avg| f64::from(age) > self.factor * avg);
        self.avg.record(f64::from(age));
        if late {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

impl RequestPolicy for OldestFirstPolicy {
    fn name(&self) -> &'static str {
        "oldest-first"
    }
    fn request_priority(&mut self, _: usize, _: usize, _: usize, age: u32, _: Cycle) -> Priority {
        self.decide(age)
    }
}

impl ResponsePolicy for OldestFirstPolicy {
    fn name(&self) -> &'static str {
        "oldest-first"
    }
    fn response_priority(&mut self, _: usize, _: usize, so_far_delay: u32, _: Cycle) -> Priority {
        self.decide(so_far_delay)
    }
}

/// Static criticality-class policy: the first `high_cores` cores' traffic
/// is always high priority, everyone else's never is. Models the
/// fixed-priority end of the criticality spectrum discussed in the *Data
/// Criticality in Network-on-Chip Design* line of related work (PAPERS.md).
#[derive(Debug, Clone, Copy)]
pub struct StaticPolicy {
    high_cores: usize,
}

impl StaticPolicy {
    /// The lower half of the core IDs form the high-priority class.
    #[must_use]
    pub fn new(cfg: &SystemConfig) -> Self {
        StaticPolicy {
            high_cores: cfg.num_cores() / 2,
        }
    }

    fn decide(&self, core: usize) -> Priority {
        if core < self.high_cores {
            Priority::High
        } else {
            Priority::Normal
        }
    }
}

impl RequestPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }
    fn request_priority(&mut self, _: usize, _: usize, core: usize, _: u32, _: Cycle) -> Priority {
        self.decide(core)
    }
}

impl ResponsePolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }
    fn response_priority(&mut self, _: usize, core: usize, _: u32, _: Cycle) -> Priority {
        self.decide(core)
    }
}

/// Resolves the configuration's request-policy name to a policy object.
///
/// # Errors
///
/// Returns [`SimError::Config`] with [`ConfigError::UnknownPolicy`] for a
/// name outside the registry ([`SystemConfig::validate`] normally rejects
/// these earlier).
pub fn build_request_policy(
    cfg: &SystemConfig,
    total_banks: usize,
) -> Result<Box<dyn RequestPolicy>, SimError> {
    let name = cfg.policy.request_name(cfg.scheme2.enabled);
    Ok(match name {
        "baseline" => Box::new(BaselinePolicy),
        "scheme2" => Box::new(Scheme2Policy::new(cfg, total_banks)),
        "oldest-first" => Box::new(OldestFirstPolicy::new(cfg)),
        "static" => Box::new(StaticPolicy::new(cfg)),
        other => {
            return Err(SimError::Config(ConfigError::UnknownPolicy {
                slot: "request",
                name: other.to_string(),
            }))
        }
    })
}

/// Resolves the configuration's response-policy name to a policy object.
///
/// # Errors
///
/// Returns [`SimError::Config`] with [`ConfigError::UnknownPolicy`] for a
/// name outside the registry.
pub fn build_response_policy(cfg: &SystemConfig) -> Result<Box<dyn ResponsePolicy>, SimError> {
    let name = cfg.policy.response_name(cfg.scheme1.enabled);
    Ok(match name {
        "baseline" => Box::new(BaselinePolicy),
        "scheme1" => Box::new(Scheme1Policy::new(cfg)),
        "oldest-first" => Box::new(OldestFirstPolicy::new(cfg)),
        "static" => Box::new(StaticPolicy::new(cfg)),
        other => {
            return Err(SimError::Config(ConfigError::UnknownPolicy {
                slot: "response",
                name: other.to_string(),
            }))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::{PolicyConfig, REQUEST_POLICIES, RESPONSE_POLICIES};

    fn cfg() -> SystemConfig {
        SystemConfig::baseline_32()
    }

    #[test]
    fn registry_resolves_every_listed_name() {
        for &name in REQUEST_POLICIES {
            let mut c = cfg();
            c.policy.request = Some(name.to_string());
            let p = build_request_policy(&c, 64).expect("listed name resolves");
            assert_eq!(p.name(), name);
        }
        for &name in RESPONSE_POLICIES {
            let mut c = cfg();
            c.policy.response = Some(name.to_string());
            let p = build_response_policy(&c).expect("listed name resolves");
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn default_names_follow_scheme_flags() {
        let c = cfg();
        assert_eq!(build_request_policy(&c, 64).unwrap().name(), "baseline");
        assert_eq!(build_response_policy(&c).unwrap().name(), "baseline");
        let c = cfg().with_both_schemes();
        assert_eq!(build_request_policy(&c, 64).unwrap().name(), "scheme2");
        assert_eq!(build_response_policy(&c).unwrap().name(), "scheme1");
        // Explicit names beat the flags.
        let mut c = cfg().with_both_schemes();
        c.policy = PolicyConfig {
            request: Some("baseline".to_string()),
            response: Some("baseline".to_string()),
        };
        assert_eq!(build_request_policy(&c, 64).unwrap().name(), "baseline");
        assert_eq!(build_response_policy(&c).unwrap().name(), "baseline");
    }

    #[test]
    fn baseline_never_expedites() {
        let mut p = BaselinePolicy;
        for i in 0..8 {
            assert_eq!(
                RequestPolicy::request_priority(&mut p, i, i, i, 4000, 100),
                Priority::Normal
            );
            assert_eq!(
                ResponsePolicy::response_priority(&mut p, 0, i, 4000, 100),
                Priority::Normal
            );
        }
        assert!(ResponsePolicy::poll_updates(&mut p, 10_000).is_empty());
    }

    #[test]
    fn scheme2_policy_matches_bank_history_semantics() {
        let c = cfg();
        let mut p = Scheme2Policy::new(&c, 64);
        // First request to an idle bank is expedited; an immediate repeat
        // from the same node is not; other nodes keep their own history.
        assert_eq!(p.request_priority(3, 7, 3, 0, 1000), Priority::High);
        assert_eq!(p.request_priority(3, 7, 3, 0, 1010), Priority::Normal);
        assert_eq!(p.request_priority(4, 7, 4, 0, 1010), Priority::High);
        // The window expires.
        let past = 1010 + c.scheme2.history_window + 1;
        assert_eq!(p.request_priority(3, 7, 3, 0, past), Priority::High);
    }

    #[test]
    fn scheme1_policy_threshold_lifecycle() {
        let c = cfg();
        let mut p = Scheme1Policy::new(&c);
        // No completed accesses yet: nothing to advertise, nothing late.
        assert!(p.poll_updates(c.scheme1.update_period).is_empty());
        assert_eq!(p.response_priority(0, 5, u32::MAX - 1, 0), Priority::Normal);
        // Feed round trips and let the schedule fire.
        for _ in 0..50 {
            p.record_round_trip(5, 300);
        }
        let updates = p.poll_updates(2 * c.scheme1.update_period);
        assert_eq!(updates.len(), 1);
        let (core, threshold) = updates[0];
        assert_eq!(core, 5);
        assert!(
            (300..=400).contains(&threshold),
            "≈1.2 × 300, got {threshold}"
        );
        // Install at controller 1 only: controller 0 still sees MAX.
        p.install_threshold(1, core, threshold);
        assert_eq!(
            p.response_priority(1, core, threshold + 1, 0),
            Priority::High
        );
        assert_eq!(p.response_priority(1, core, threshold, 0), Priority::Normal);
        assert_eq!(
            p.response_priority(0, core, threshold + 1, 0),
            Priority::Normal
        );
    }

    #[test]
    fn oldest_first_expedites_above_running_average() {
        let mut p = OldestFirstPolicy::new(&cfg());
        // First observation can never be late (no average yet).
        assert_eq!(
            ResponsePolicy::response_priority(&mut p, 0, 0, 1000, 0),
            Priority::Normal
        );
        for _ in 0..100 {
            ResponsePolicy::response_priority(&mut p, 0, 0, 100, 0);
        }
        // 1.2 × ~100 = ~120: 400 is late, 100 is not.
        assert_eq!(
            ResponsePolicy::response_priority(&mut p, 0, 0, 400, 0),
            Priority::High
        );
        assert_eq!(
            ResponsePolicy::response_priority(&mut p, 0, 0, 100, 0),
            Priority::Normal
        );
    }

    #[test]
    fn static_policy_splits_by_core_id() {
        let c = cfg();
        let mut p = StaticPolicy::new(&c);
        let half = c.num_cores() / 2;
        assert_eq!(
            RequestPolicy::request_priority(&mut p, 0, 0, half - 1, 0, 0),
            Priority::High
        );
        assert_eq!(
            RequestPolicy::request_priority(&mut p, 0, 0, half, 0, 0),
            Priority::Normal
        );
        assert_eq!(
            ResponsePolicy::response_priority(&mut p, 0, half - 1, 0, 0),
            Priority::High
        );
        assert_eq!(
            ResponsePolicy::response_priority(&mut p, 0, half, 0, 0),
            Priority::Normal
        );
    }
}
