//! Lightweight per-layer observation hooks.
//!
//! A [`Probe`] sees the three events the policy layer decides on: a flit
//! leaving a router output port, a memory controller dequeuing a completed
//! DRAM access, and a core retiring an off-chip miss. Probes are strictly
//! observers — they cannot change priorities or timing — which makes them
//! safe to attach to a golden-verified configuration.
//!
//! When no probe is attached the system ticks the network through the
//! plain monomorphized path (`Network::tick`), so the observer plumbing
//! compiles to exactly the pre-probe code: zero cost unless used.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use noclat_noc::{Hop, Priority};
use noclat_sim::Cycle;

/// A memory controller handing a completed DRAM access back to the network.
#[derive(Debug, Clone, Copy)]
pub struct McDequeue {
    /// Controller index.
    pub mc: usize,
    /// Core that owns the access.
    pub core: usize,
    /// Accumulated so-far delay (age) at injection of the response.
    pub so_far_delay: u32,
    /// Cycles the access spent inside the controller (queue + service).
    pub queued_for: Cycle,
    /// Priority the response policy assigned to the reply.
    pub priority: Priority,
    /// Current cycle.
    pub cycle: Cycle,
}

/// A core completing an off-chip memory access.
#[derive(Debug, Clone, Copy)]
pub struct Retire {
    /// Core that issued the access.
    pub core: usize,
    /// Cache-line address.
    pub line: u64,
    /// Whether the access went off-chip (false: satisfied by the L2).
    pub offchip: bool,
    /// Whether it merged into an already-outstanding transaction.
    pub merged: bool,
    /// End-to-end latency from issue to fill, in cycles.
    pub total_latency: Cycle,
    /// Current cycle.
    pub cycle: Cycle,
}

/// Observer interface over the prioritization decision points. All methods
/// default to no-ops, so a probe implements only what it needs.
pub trait Probe: Send {
    /// A flit crossed a router: it was granted an output port this cycle.
    fn on_hop(&mut self, hop: &Hop) {
        let _ = hop;
    }

    /// A memory controller dequeued a completed access and is injecting
    /// the response.
    fn on_mc_dequeue(&mut self, ev: &McDequeue) {
        let _ = ev;
    }

    /// A core retired a memory transaction.
    fn on_retire(&mut self, ev: &Retire) {
        let _ = ev;
    }
}

/// Shared counters exported by a [`CountingProbe`], readable from outside
/// the running system.
#[derive(Debug, Default)]
pub struct ProbeCounters {
    /// Router output-port grants observed.
    pub hops: AtomicU64,
    /// Of those, flits travelling at high priority.
    pub high_priority_hops: AtomicU64,
    /// Controller dequeues observed.
    pub mc_dequeues: AtomicU64,
    /// Of those, responses injected at high priority (the "late" ones).
    pub expedited_responses: AtomicU64,
    /// Retired transactions observed.
    pub retirements: AtomicU64,
    /// Of those, accesses that went off-chip.
    pub offchip_retirements: AtomicU64,
}

impl ProbeCounters {
    /// Snapshot of all counters as plain numbers, in declaration order.
    #[must_use]
    pub fn snapshot(&self) -> [u64; 6] {
        [
            self.hops.load(Ordering::Relaxed),
            self.high_priority_hops.load(Ordering::Relaxed),
            self.mc_dequeues.load(Ordering::Relaxed),
            self.expedited_responses.load(Ordering::Relaxed),
            self.retirements.load(Ordering::Relaxed),
            self.offchip_retirements.load(Ordering::Relaxed),
        ]
    }
}

/// The reference probe: counts each event class into [`ProbeCounters`]
/// shared via `Arc`, so callers keep a handle after moving the probe into
/// the system.
#[derive(Debug, Clone, Default)]
pub struct CountingProbe {
    counters: Arc<ProbeCounters>,
}

impl CountingProbe {
    /// Creates a probe and returns it with a handle to its counters.
    #[must_use]
    pub fn new() -> (Self, Arc<ProbeCounters>) {
        let probe = CountingProbe::default();
        let counters = Arc::clone(&probe.counters);
        (probe, counters)
    }
}

impl Probe for CountingProbe {
    fn on_hop(&mut self, hop: &Hop) {
        self.counters.hops.fetch_add(1, Ordering::Relaxed);
        if hop.priority == Priority::High {
            self.counters
                .high_priority_hops
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_mc_dequeue(&mut self, ev: &McDequeue) {
        self.counters.mc_dequeues.fetch_add(1, Ordering::Relaxed);
        if ev.priority == Priority::High {
            self.counters
                .expedited_responses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_retire(&mut self, ev: &Retire) {
        self.counters.retirements.fetch_add(1, Ordering::Relaxed);
        if ev.offchip {
            self.counters
                .offchip_retirements
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_noc::{Dir, NodeId, VNet};

    #[test]
    fn counting_probe_tallies_each_event_class() {
        let (mut probe, counters) = CountingProbe::new();
        let hop = Hop {
            node: NodeId(3),
            out_port: Dir::East,
            priority: Priority::High,
            vnet: VNet::Request,
            age: 12,
            cycle: 100,
        };
        probe.on_hop(&hop);
        probe.on_hop(&Hop {
            priority: Priority::Normal,
            ..hop
        });
        probe.on_mc_dequeue(&McDequeue {
            mc: 0,
            core: 5,
            so_far_delay: 200,
            queued_for: 40,
            priority: Priority::High,
            cycle: 150,
        });
        probe.on_retire(&Retire {
            core: 5,
            line: 0x40,
            offchip: true,
            merged: false,
            total_latency: 310,
            cycle: 200,
        });
        probe.on_retire(&Retire {
            core: 6,
            line: 0x80,
            offchip: false,
            merged: false,
            total_latency: 25,
            cycle: 201,
        });
        assert_eq!(counters.snapshot(), [2, 1, 1, 1, 2, 1]);
    }

    #[test]
    fn default_probe_methods_are_noops() {
        struct Silent;
        impl Probe for Silent {}
        let mut s = Silent;
        s.on_hop(&Hop {
            node: NodeId(0),
            out_port: Dir::Local,
            priority: Priority::Normal,
            vnet: VNet::Response,
            age: 0,
            cycle: 0,
        });
        s.on_mc_dequeue(&McDequeue {
            mc: 0,
            core: 0,
            so_far_delay: 0,
            queued_for: 0,
            priority: Priority::Normal,
            cycle: 0,
        });
        s.on_retire(&Retire {
            core: 0,
            line: 0,
            offchip: false,
            merged: false,
            total_latency: 0,
            cycle: 0,
        });
    }
}
