//! The full NoC-based multicore: cores + private L1s + banked S-NUCA L2 +
//! mesh network + corner memory controllers, wired together with the
//! five-path memory-access protocol of Figure 2 and the two prioritization
//! schemes of Section 3.
//!
//! One [`System::step`] advances everything by one core cycle, in a fixed
//! deterministic order: cores (dispatch/commit, new L1 misses), policy
//! threshold updates, the network, packet deliveries, delayed cache-bank
//! work, and finally the memory controllers.
//!
//! Every network-priority decision is delegated to the pluggable policy
//! layer ([`crate::policy`]): request injection at L2 miss goes through a
//! [`RequestPolicy`], response injection at the controllers through a
//! [`ResponsePolicy`], and router arbitration through the
//! `ArbitrationPolicy` resolved inside each router. Observers can attach
//! [`Probe`]s to watch hops, controller dequeues and retirements without
//! perturbing the simulation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use noclat_cache::{L1Access, L1Cache, L2Access, L2Bank, MshrFile, SnucaMap};
use noclat_cpu::{InstrStream, MemAccess, MemToken, MemoryPort, OooCore};
use noclat_mem::{AddressMap, IdlenessMonitor, MemoryController};
use noclat_noc::{
    accumulate_age, flits_for_payload, Mesh, Network, NodeId, Priority, RouterCounters, VNet,
};
use noclat_sim::cancel::CancelToken;
use noclat_sim::config::{KernelKind, SystemConfig};
use noclat_sim::error::SimError;
use noclat_sim::rng::SimRng;
use noclat_sim::Cycle;
use noclat_workloads::{SpecApp, SyntheticStream};

use crate::messages::{MemMsg, TxnId};
use crate::metrics::{LatencyTracker, TxnTimes};
use crate::policy::{build_request_policy, build_response_policy, RequestPolicy, ResponsePolicy};
use crate::probe::{McDequeue, Probe, Retire};
use crate::trace::{TraceLog, TxnRecord};
use crate::watchdog::{LivenessViolation, Snapshot, Watchdog};

/// Token bit marking controller writeback tokens (no response expected).
const WB_FLAG: u64 = 1 << 63;
/// Retry delay when an L2 bank's MSHRs are exhausted.
const MSHR_RETRY_DELAY: Cycle = 8;
/// Base delay before a dropped packet's first re-injection; doubles per
/// attempt (exponential backoff keeps retry storms off a faulty link).
const RETRY_BACKOFF_BASE: Cycle = 64;
/// How often the per-transaction timeout backstop scans in-flight
/// transactions.
const TIMEOUT_SCAN_PERIOD: Cycle = 512;

/// In-flight transaction state (one per L1 miss).
#[derive(Debug, Clone, Copy)]
struct Txn {
    core: usize,
    line: u64,
    issued: Cycle,
    at_l2: Cycle,
    at_mc: Cycle,
    mc_done: Cycle,
    back_at_l2: Cycle,
    /// Last cycle this transaction made observable progress (a leg arrived
    /// or a retry was scheduled); drives the timeout backstop.
    touched: Cycle,
    /// The access missed in L2 and went to memory.
    offchip: bool,
    /// The access merged into another transaction's L2 MSHR entry.
    merged: bool,
}

/// Fault-recovery counters, exposed through [`System::robustness`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Packets the network reported dropped by injected link faults.
    pub packets_dropped: u64,
    /// Flits belonging to dropped packets.
    pub flits_dropped: u64,
    /// Dropped packets re-injected by the recovery layer.
    pub retries: u64,
    /// Transactions flagged by the timeout backstop (no progress for longer
    /// than the recovery timeout).
    pub timeouts: u64,
    /// Transactions abandoned after exhausting retries or the timeout
    /// budget.
    pub lost_txns: u64,
    /// Liveness/conservation violations raised by the watchdog.
    pub violations: u64,
}

/// Identity of a droppable message for retry accounting: transactions
/// retry per transaction, writebacks per line, threshold updates per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RetryKey {
    Txn(TxnId),
    Line(u64),
    Threshold(usize),
}

fn retry_key(msg: &MemMsg) -> RetryKey {
    match *msg {
        MemMsg::L2Req { txn, .. }
        | MemMsg::MemReq { txn, .. }
        | MemMsg::MemResp { txn, .. }
        | MemMsg::L2Resp { txn, .. } => RetryKey::Txn(txn),
        MemMsg::L1Writeback { line } | MemMsg::MemWriteback { line } => RetryKey::Line(line),
        MemMsg::ThresholdUpdate { core, .. } => RetryKey::Threshold(core),
    }
}

/// Deferred work modeling cache-bank access latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// An L2 lookup for a request that arrived `l2.latency` cycles ago.
    L2Request { node: usize, txn: TxnId, age: u32 },
    /// Apply an L1 writeback at the L2 bank.
    L2Writeback { node: usize, line: u64 },
    /// A memory response finished its L2-side handling; wake L2 waiters.
    L2Fill {
        node: usize,
        txn: TxnId,
        line: u64,
        age: u32,
        high: bool,
    },
    /// Re-inject a dropped packet after its backoff delay.
    Reinject {
        src: usize,
        dest: usize,
        vnet: VNet,
        priority: Priority,
        flits: u8,
        msg: MemMsg,
    },
    /// A data response reached the core tile; fill L1 and wake the core.
    CoreFill {
        core: usize,
        txn: TxnId,
        line: u64,
        age: u32,
        high: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkItem {
    ready: Cycle,
    seq: u64,
    action: Action,
}

impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A memory controller attached to a mesh corner.
#[derive(Debug)]
struct McNode {
    node: usize,
    ctrl: MemoryController,
    pending: HashMap<TxnId, McPending>,
    monitor: IdlenessMonitor,
}

#[derive(Debug, Clone, Copy)]
struct McPending {
    age_at_arrival: u32,
    l2_bank: usize,
    core: usize,
    line: u64,
}

/// Messages a core tile emits during one core tick.
#[derive(Debug, Clone, Copy)]
enum PortMsg {
    L2Req { txn: TxnId, line: u64 },
    L1Writeback { line: u64 },
}

/// The memory hierarchy as seen by one core during its tick.
struct TilePort<'a> {
    core: usize,
    l1: &'a mut L1Cache,
    mshr: &'a mut MshrFile<MemToken>,
    next_txn: &'a mut u64,
    txns: &'a mut HashMap<TxnId, Txn>,
    out: &'a mut Vec<(usize, PortMsg)>,
    map: AddressMap,
    l1_latency: Cycle,
}

impl MemoryPort for TilePort<'_> {
    fn access(&mut self, addr: u64, is_write: bool, now: Cycle) -> MemAccess {
        let line = self.map.line_addr(addr);
        // A fill for this line is already in flight: wait on it regardless
        // of what the (already-allocated) tag array says.
        if self.mshr.contains(line) {
            let token = MemToken(*self.next_txn);
            *self.next_txn += 1;
            self.mshr.alloc(line, token);
            return MemAccess::Pending { token };
        }
        match self.l1.access(addr, is_write) {
            L1Access::Hit => MemAccess::Done {
                latency: self.l1_latency,
            },
            L1Access::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.out
                        .push((self.core, PortMsg::L1Writeback { line: victim }));
                }
                let txn = *self.next_txn;
                *self.next_txn += 1;
                self.mshr.alloc(line, MemToken(txn));
                self.txns.insert(
                    txn,
                    Txn {
                        core: self.core,
                        line,
                        issued: now,
                        at_l2: now,
                        at_mc: now,
                        mc_done: now,
                        back_at_l2: now,
                        touched: now,
                        offchip: false,
                        merged: false,
                    },
                );
                self.out.push((self.core, PortMsg::L2Req { txn, line }));
                MemAccess::Pending {
                    token: MemToken(txn),
                }
            }
        }
    }
}

/// The assembled multicore system.
pub struct System {
    cfg: SystemConfig,
    now: Cycle,
    net: Network<MemMsg>,
    cores: Vec<OooCore>,
    streams: Vec<Box<dyn InstrStream>>,
    apps: Vec<Option<SpecApp>>,
    l1s: Vec<L1Cache>,
    l1_mshrs: Vec<MshrFile<MemToken>>,
    l2_banks: Vec<L2Bank>,
    l2_mshrs: Vec<MshrFile<TxnId>>,
    work: BinaryHeap<Reverse<WorkItem>>,
    work_seq: u64,
    mcs: Vec<McNode>,
    mc_at_node: Vec<Option<usize>>,
    /// Decision point 1: priority of L2-miss requests entering the request
    /// network (Scheme-2's seam).
    req_policy: Box<dyn RequestPolicy>,
    /// Decision point 2: priority of responses injected by the memory
    /// controllers, plus the threshold side-channel (Scheme-1's seam).
    resp_policy: Box<dyn ResponsePolicy>,
    /// Attached observers; empty by default, in which case the system runs
    /// the plain monomorphized network path with zero probe overhead.
    probes: Vec<Box<dyn Probe>>,
    txns: HashMap<TxnId, Txn>,
    next_txn: u64,
    next_wb_token: u64,
    tracker: LatencyTracker,
    trace: TraceLog,
    addr_map: AddressMap,
    snuca: SnucaMap,
    data_flits: u8,
    watchdog: Watchdog,
    retry_attempts: HashMap<RetryKey, u32>,
    timed_out: HashSet<TxnId>,
    robust: RobustnessStats,
    /// Cooperative cancellation flag, polled at loop boundaries by
    /// [`System::run`]. `None` when the run is unbounded (no deadline).
    cancel: Option<CancelToken>,
    /// Set once a run loop observed the cancel flag and stopped early.
    interrupted: bool,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .field("controllers", &self.mcs.len())
            .field("txns_in_flight", &self.txns.len())
            .field("request_policy", &self.req_policy.name())
            .field("response_policy", &self.resp_policy.name())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system running `apps[i]` on core `i` (the
    /// `Simulation::builder(cfg).workload(&apps).build()` path): synthesizes
    /// one stream per application and records the app assignment for
    /// [`System::app`].
    pub(crate) fn assemble_apps(cfg: SystemConfig, apps: &[SpecApp]) -> Result<System, SimError> {
        let rng = SimRng::new(cfg.seed);
        let streams: Vec<Box<dyn InstrStream>> = apps
            .iter()
            .enumerate()
            .map(|(slot, &app)| {
                Box::new(SyntheticStream::new(app, slot, &rng)) as Box<dyn InstrStream>
            })
            .collect();
        let mut sys = Self::assemble(cfg, streams)?;
        sys.apps = apps.iter().copied().map(Some).collect();
        Ok(sys)
    }

    /// Builds a system from caller-supplied instruction streams, one per
    /// core (the [`crate::simulation::SimulationBuilder`] `streams` path).
    pub(crate) fn assemble(
        cfg: SystemConfig,
        streams: Vec<Box<dyn InstrStream>>,
    ) -> Result<System, SimError> {
        cfg.validate()?;
        let n = cfg.num_cores();
        if streams.len() != n {
            return Err(SimError::StreamCountMismatch {
                streams: streams.len(),
                cores: n,
            });
        }
        let mesh = Mesh::from_config(&cfg.topology);
        let addr_map = AddressMap::new(
            cfg.l2.line_bytes,
            cfg.mem.num_controllers,
            cfg.mem.banks_per_controller,
            cfg.mem.row_bytes,
        );
        let mc_nodes = mesh.mc_nodes(cfg.topology.mc_placement, cfg.mem.num_controllers);
        let mut mc_at_node = vec![None; n];
        let mcs: Vec<McNode> = mc_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| {
                mc_at_node[node.index()] = Some(i);
                McNode {
                    node: node.index(),
                    ctrl: MemoryController::with_faults(cfg.mem, &cfg.faults, i),
                    pending: HashMap::new(),
                    monitor: IdlenessMonitor::new(
                        cfg.mem.banks_per_controller,
                        cfg.idleness_sample_period,
                        10_000,
                    ),
                }
            })
            .collect();
        let mut sys = System {
            net: Network::with_faults(mesh, cfg.noc, &cfg.faults),
            cores: (0..n).map(|_| OooCore::new(cfg.cpu)).collect(),
            apps: vec![None; n],
            streams,
            l1s: (0..n)
                .map(|_| L1Cache::new(cfg.l1.size_bytes, cfg.l1.line_bytes))
                .collect(),
            l1_mshrs: (0..n).map(|_| MshrFile::new(cfg.cpu.lsq_size)).collect(),
            l2_banks: (0..n)
                .map(|bank| {
                    L2Bank::new_interleaved(
                        cfg.l2.bank_size_bytes,
                        cfg.l2.line_bytes,
                        cfg.l2.associativity,
                        n,
                        bank,
                    )
                })
                .collect(),
            l2_mshrs: (0..n)
                .map(|_| MshrFile::new(cfg.l2.mshrs_per_bank))
                .collect(),
            work: BinaryHeap::new(),
            work_seq: 0,
            mcs,
            mc_at_node,
            req_policy: build_request_policy(&cfg, addr_map.total_banks())?,
            resp_policy: build_response_policy(&cfg)?,
            probes: Vec::new(),
            txns: HashMap::new(),
            next_txn: 0,
            next_wb_token: 0,
            tracker: LatencyTracker::new(n),
            trace: TraceLog::new(64),
            addr_map,
            snuca: SnucaMap::new(n, cfg.l2.line_bytes),
            data_flits: flits_for_payload(cfg.l2.line_bytes, cfg.noc.flit_bits),
            watchdog: Watchdog::new(cfg.watchdog, {
                // The wall-clock starvation bound scales off the age guard,
                // but a disabled (0) or beyond-the-age-field guard can never
                // fire in arbitration — fall back to the representable age
                // ceiling so the watchdog still bounds waiting time when the
                // anti-starvation mechanism itself is switched off.
                let guard = cfg.noc.starvation_age_guard;
                let basis = if guard == 0 || guard > cfg.noc.max_age() {
                    cfg.noc.max_age()
                } else {
                    guard
                };
                Cycle::from(cfg.watchdog.starvation_factor) * Cycle::from(basis)
            }),
            retry_attempts: HashMap::new(),
            timed_out: HashSet::new(),
            robust: RobustnessStats::default(),
            cancel: None,
            interrupted: false,
            now: 0,
            cfg,
        };
        sys.prefill_caches();
        Ok(sys)
    }

    /// Installs each stream's fast-forward-resident lines into the tag
    /// arrays (the paper fast-forwards 1 B cycles before measuring; without
    /// this, the cold-start transient — every hot/warm line missing at once —
    /// saturates the memory system for a long ramp-up period).
    fn prefill_caches(&mut self) {
        for core in 0..self.cores.len() {
            let resident = self.streams[core].resident_lines();
            // Warm lines first, hot lines last, so hot lines are the most
            // recently used in both levels.
            for &addr in resident.l2.iter().chain(&resident.l1) {
                let line = self.addr_map.line_addr(addr);
                let bank = self.snuca.bank_of(line);
                let _ = self.l2_banks[bank].access(line, false);
            }
            for &addr in &resident.l1 {
                let _ = self.l1s[core].access(addr, false);
            }
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The application assigned to `core`, if built from a workload
    /// (`Simulation::builder(cfg).workload(&apps)`).
    #[must_use]
    pub fn app(&self, core: usize) -> Option<SpecApp> {
        self.apps[core]
    }

    /// Per-core commit statistics.
    #[must_use]
    pub fn core_stats(&self, core: usize) -> noclat_cpu::CoreStats {
        self.cores[core].stats()
    }

    /// Latency statistics.
    #[must_use]
    pub fn tracker(&self) -> &LatencyTracker {
        &self.tracker
    }

    /// The slowest off-chip transactions of the measurement window, slowest
    /// first, with their five-path timestamps.
    #[must_use]
    pub fn slowest_transactions(&self) -> Vec<TxnRecord> {
        self.trace.slowest()
    }

    /// Network statistics.
    #[must_use]
    pub fn network_stats(&self) -> &noclat_noc::NetworkStats {
        self.net.stats()
    }

    /// Aggregated router counters.
    #[must_use]
    pub fn router_counters(&self) -> RouterCounters {
        self.net.router_counters()
    }

    /// Per-node count of flits forwarded onto mesh links (congestion
    /// heat-map; index = node id, row-major).
    #[must_use]
    pub fn forwarding_heat(&self) -> Vec<u64> {
        self.net.node_forwarding_heat()
    }

    /// Number of memory controllers.
    #[must_use]
    pub fn num_controllers(&self) -> usize {
        self.mcs.len()
    }

    /// Controller statistics of controller `mc`.
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    #[must_use]
    pub fn controller_stats(&self, mc: usize) -> &noclat_mem::ControllerStats {
        self.mcs[mc].ctrl.stats()
    }

    /// Requests inside controller `mc` (front end + queues + in service).
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    #[must_use]
    pub fn controller_occupancy(&self, mc: usize) -> usize {
        self.mcs[mc].ctrl.occupancy()
    }

    /// Queue lengths of every bank of controller `mc`.
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    #[must_use]
    pub fn bank_queue_lens(&self, mc: usize) -> Vec<usize> {
        (0..self.cfg.mem.banks_per_controller)
            .map(|b| self.mcs[mc].ctrl.queue_len(b))
            .collect()
    }

    /// Bank idleness monitor of controller `mc`.
    ///
    /// # Panics
    ///
    /// Panics if `mc` is out of range.
    #[must_use]
    pub fn idleness(&self, mc: usize) -> &IdlenessMonitor {
        &self.mcs[mc].monitor
    }

    /// Transactions currently in flight.
    #[must_use]
    pub fn txns_in_flight(&self) -> usize {
        self.txns.len()
    }

    /// Packets currently inside the network (injected, not yet delivered or
    /// dropped).
    #[must_use]
    pub fn packets_in_flight(&self) -> usize {
        self.net.packets_in_flight()
    }

    /// Liveness and conservation violations detected so far.
    #[must_use]
    pub fn violations(&self) -> &[LivenessViolation] {
        self.watchdog.violations()
    }

    /// Fault-recovery counters (drops, retries, timeouts, losses).
    #[must_use]
    pub fn robustness(&self) -> RobustnessStats {
        let ns = self.net.stats();
        RobustnessStats {
            packets_dropped: ns.packets_dropped.get(),
            flits_dropped: ns.flits_dropped.get(),
            violations: self.watchdog.violations().len() as u64,
            ..self.robust
        }
    }

    /// Captures the diagnostic state attached to violations.
    fn snapshot(&self, now: Cycle) -> Snapshot {
        Snapshot {
            cycle: now,
            txns_in_flight: self.txns.len(),
            queue_depths: self.net.router_queue_depths(),
        }
    }

    /// Runs the system for `cycles` cycles using the configured kernel
    /// strategy: the cycle kernel steps every cycle; the event kernel
    /// produces bit-identical results but fast-forwards over spans it can
    /// prove no component will act in.
    /// Cancellation is cooperative: when a [`CancelToken`] is attached and
    /// fires mid-run, the loop stops at the next iteration boundary, marks
    /// the system [`System::interrupted`] and returns early with every data
    /// structure intact. A run that completes normally is never affected —
    /// both kernels advance identically whether or not a token is attached.
    pub fn run(&mut self, cycles: Cycle) {
        let end = self.now.saturating_add(cycles);
        match self.cfg.kernel {
            KernelKind::Cycle => {
                while self.now < end {
                    if self.cancel_requested() {
                        return;
                    }
                    self.step();
                }
            }
            KernelKind::Event => self.run_event(end),
        }
    }

    /// The event-wheel driver: steps only the cycles some component needs,
    /// bulk-accounting the provably idle spans in between.
    fn run_event(&mut self, end: Cycle) {
        while self.now < end {
            if self.cancel_requested() {
                return;
            }
            let wake = self.next_wake(self.now).unwrap_or(end).min(end);
            if wake > self.now {
                self.skip_to(wake);
            } else {
                self.step();
            }
        }
    }

    /// Polls the attached cancellation token (one relaxed atomic load per
    /// loop iteration when a token is attached, zero work otherwise) and
    /// latches [`System::interrupted`] on the first observation.
    fn cancel_requested(&mut self) -> bool {
        if self.interrupted {
            return true;
        }
        match &self.cancel {
            Some(token) if token.is_cancelled() => {
                self.interrupted = true;
                true
            }
            _ => false,
        }
    }

    /// Attaches a cooperative cancellation token; [`System::run`] polls it
    /// at loop boundaries and winds down cleanly once it fires.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether a run loop stopped early because the attached cancellation
    /// token fired. Once set, further `run` calls return immediately; the
    /// system's state is consistent but its metrics describe a truncated
    /// run and must not be reported as a complete result.
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// The earliest cycle at or after `now` at which stepping could have any
    /// effect: the minimum over every component's own wake-up. `None` means
    /// nothing is scheduled at all (then nothing can happen before the
    /// caller's horizon).
    /// The idleness monitors and the watchdog's polled scans are *not* wake
    /// sources: their inputs are frozen across any span the other sources
    /// allow skipping, so [`System::skip_to`] replays them in bulk at their
    /// exact scheduled cycles instead of waking the whole system for them.
    fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        let mut wake: Option<Cycle> = None;
        let mut fold = |t: Cycle| match wake {
            Some(w) if w <= t => {}
            _ => wake = Some(t),
        };
        // Deferred cache-bank work. Each source checks for "busy right now"
        // before folding the next: a step is already unavoidable then, and
        // the remaining scans would only be thrown away.
        if let Some(Reverse(w)) = self.work.peek() {
            if w.ready <= now {
                return Some(now);
            }
            fold(w.ready);
        }
        // Network: packets anywhere in the injectors, routers or wires.
        if let Some(t) = self.net.next_event(now) {
            if t == now {
                return Some(now);
            }
            fold(t);
        }
        // Cores: dispatch opportunity or the head's completion time.
        for c in &self.cores {
            if let Some(t) = c.next_wake(now) {
                if t == now {
                    return Some(now);
                }
                fold(t);
            }
        }
        // Controllers: command scheduling and refresh.
        for mc in &self.mcs {
            let t = mc.ctrl.next_event(now);
            if t == now {
                return Some(now);
            }
            fold(t);
        }
        // Policy layer: scheduled threshold broadcasts.
        if let Some(t) = self.resp_policy.next_update() {
            fold(t.max(now));
        }
        // Watchdog: the deadlock deadline, so a trip is detected — and
        // time-stamped — exactly when a cycle-driven run detects it.
        if self.watchdog.enabled() {
            if let Some(t) = self.watchdog.next_deadlock_check(self.txns.len()) {
                fold(t.max(now));
            }
        }
        // Per-transaction timeout backstop scan.
        if self.cfg.recovery.enabled && !self.txns.is_empty() {
            fold(now + (TIMEOUT_SCAN_PERIOD - 1 - now % TIMEOUT_SCAN_PERIOD));
        }
        wake
    }

    /// Fast-forwards from `self.now` to `to` without stepping: every
    /// component proved it cannot act before `to`, so the span's per-cycle
    /// effects — the cores' idle accounting, the watchdog's progress clock,
    /// idleness samples and polled scans — are replayed in bulk.
    fn skip_to(&mut self, to: Cycle) {
        debug_assert!(to > self.now, "skip must move forward");
        let from = self.now;
        let span = to - from;
        for c in &mut self.cores {
            c.account_idle(span);
        }
        // Idleness samples due inside the span: bank queues only change when
        // a controller ticks or a request arrives, and neither can happen in
        // a skipped cycle, so every sample sees the same frozen idle vector —
        // at the exact cycle per-cycle stepping would have recorded it.
        for i in 0..self.mcs.len() {
            if self.mcs[i].monitor.next_sample_at() < to {
                let idle = self.mcs[i].ctrl.idle_banks();
                self.mcs[i].monitor.replay_idle_span(from, to, &idle);
            }
        }
        if self.watchdog.enabled() {
            // Polled scans due inside the span, each at its scheduled cycle:
            // their inputs (router buffers, network counters) are equally
            // frozen, so only the first can record anything new — but *it*
            // must carry the cycle number a per-cycle run would stamp.
            while self.watchdog.next_poll_at() < to {
                let at = self.watchdog.next_poll_at().max(from);
                let due = self.watchdog.poll_due(at);
                debug_assert!(due, "replayed poll must be due");
                self.poll_scan(at);
            }
            self.watchdog.observe_idle_span(to, self.txns.len());
        }
        self.now = to;
    }

    /// Runs `cycles` of warmup, then clears all measurement state (core
    /// commit statistics, latency tracker, idleness monitors) while keeping
    /// caches, queues and schemes warm.
    pub fn warm_up(&mut self, cycles: Cycle) {
        self.tracker.disable();
        self.run(cycles);
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.tracker.reset();
        self.tracker.enable();
        self.trace.clear();
        for mc in &mut self.mcs {
            mc.monitor = IdlenessMonitor::new(
                self.cfg.mem.banks_per_controller,
                self.cfg.idleness_sample_period,
                10_000,
            );
        }
    }

    /// Registry name of the active request-injection policy.
    #[must_use]
    pub fn request_policy_name(&self) -> &'static str {
        self.req_policy.name()
    }

    /// Registry name of the active response-injection policy.
    #[must_use]
    pub fn response_policy_name(&self) -> &'static str {
        self.resp_policy.name()
    }

    /// Attaches an observer to the per-hop, per-controller-dequeue and
    /// per-retirement probe points. Probes only watch; they cannot change
    /// timing or priorities. With none attached the system takes the plain
    /// monomorphized network path, so the hooks cost nothing.
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.probes.push(probe);
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.tick_cores(now);
        self.policy_updates(now);
        if self.probes.is_empty() {
            self.net.tick(now);
        } else {
            let System { net, probes, .. } = self;
            net.tick_with(now, &mut |hop| {
                for p in probes.iter_mut() {
                    p.on_hop(hop);
                }
            });
        }
        self.handle_drops(now);
        self.handle_deliveries(now);
        self.process_work(now);
        self.tick_mcs(now);
        self.audit(now);
        self.now += 1;
    }

    fn push_work(&mut self, ready: Cycle, action: Action) {
        self.work_seq += 1;
        self.work.push(Reverse(WorkItem {
            ready,
            seq: self.work_seq,
            action,
        }));
    }

    #[allow(clippy::too_many_arguments)]
    fn inject(
        &mut self,
        src: usize,
        dest: usize,
        vnet: VNet,
        priority: Priority,
        flits: u8,
        age: u32,
        msg: MemMsg,
        now: Cycle,
    ) {
        // The system only builds packets between nodes it owns, so a
        // rejection here is a wiring bug, not a runtime condition.
        self.net
            .inject(
                NodeId(src as u16),
                NodeId(dest as u16),
                vnet,
                priority,
                flits,
                age,
                msg,
                now,
            )
            .expect("system injections are admissible");
    }

    /// Collects packets the network dropped this cycle and schedules their
    /// re-injection (bounded retries with exponential backoff). With
    /// recovery disabled the drops are only counted; the timeout backstop
    /// and watchdog surface the consequences.
    fn handle_drops(&mut self, now: Cycle) {
        for (meta, msg) in self.net.take_dropped() {
            if !self.cfg.recovery.enabled {
                continue;
            }
            let key = retry_key(&msg);
            let attempts = self.retry_attempts.entry(key).or_insert(0);
            *attempts += 1;
            let attempt = *attempts;
            if attempt > self.cfg.recovery.max_retries {
                if let RetryKey::Txn(txn) = key {
                    self.lose_txn(txn, now);
                }
                continue;
            }
            self.robust.retries += 1;
            let backoff = RETRY_BACKOFF_BASE << (attempt - 1).min(16);
            if let RetryKey::Txn(txn) = key {
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.touched = now + backoff;
                }
            }
            self.push_work(
                now + backoff,
                Action::Reinject {
                    src: meta.src.index(),
                    dest: meta.dest.index(),
                    vnet: meta.vnet,
                    priority: meta.priority,
                    flits: meta.num_flits,
                    msg,
                },
            );
        }
    }

    /// Abandons a transaction whose packets cannot be recovered: records a
    /// [`LivenessViolation::Lost`], releases controller- and cache-side
    /// bookkeeping, and wakes the cores waiting on it so the simulation
    /// degrades instead of wedging.
    fn lose_txn(&mut self, txn: TxnId, now: Cycle) {
        let Some(t) = self.txns.remove(&txn) else {
            return;
        };
        self.robust.lost_txns += 1;
        let snapshot = self.snapshot(now);
        self.watchdog.record(LivenessViolation::Lost {
            txn: Some(txn),
            count: 1,
            snapshot,
        });
        self.timed_out.remove(&txn);
        self.retry_attempts.remove(&RetryKey::Txn(txn));
        for mc in &mut self.mcs {
            mc.pending.remove(&txn);
        }
        // Release the L2 MSHR entry; merged waiters on the same line go
        // down with the primary (their fill will never arrive either).
        let bank = self.snuca.bank_of(t.line);
        let mut casualties = vec![t.core];
        if self.l2_mshrs[bank].contains(t.line) {
            for waiter in self.l2_mshrs[bank].complete(t.line) {
                if waiter == txn {
                    continue;
                }
                if let Some(w) = self.txns.remove(&waiter) {
                    self.timed_out.remove(&waiter);
                    casualties.push(w.core);
                }
            }
        }
        for core in casualties {
            for token in self.l1_mshrs[core].complete(t.line) {
                self.cores[core].complete(token, now);
            }
        }
    }

    /// Watchdog checks and the per-transaction timeout backstop.
    fn audit(&mut self, now: Cycle) {
        if self.cfg.recovery.enabled && now % TIMEOUT_SCAN_PERIOD == TIMEOUT_SCAN_PERIOD - 1 {
            self.timeout_scan(now);
        }
        if !self.watchdog.enabled() {
            return;
        }
        let rc = self.net.router_counters();
        if let Some(quiet_for) =
            self.watchdog
                .observe_progress(now, rc.flits_traversed, self.txns.len())
        {
            let snapshot = self.snapshot(now);
            self.watchdog.record(LivenessViolation::Deadlock {
                quiet_for,
                snapshot,
            });
        }
        if !self.watchdog.poll_due(now) {
            return;
        }
        self.poll_scan(now);
    }

    /// The expensive polled liveness scans (starvation, age saturation,
    /// packet conservation), run when [`Watchdog::poll_due`] fires — from
    /// [`System::audit`] on a stepped cycle, or replayed at the same cycle
    /// by [`System::skip_to`] when the poll lands inside a skipped span.
    fn poll_scan(&mut self, now: Cycle) {
        let rc = self.net.router_counters();
        let wait = self.net.max_buffered_wait(now);
        if let Some(limit) = self.watchdog.observe_wait(wait.map(|(_, w)| w)) {
            let (node, waited) = wait.expect("a wait tripped the limit");
            let snapshot = self.snapshot(now);
            self.watchdog.record(LivenessViolation::Starvation {
                node: node.0,
                waited,
                limit,
                snapshot,
            });
        }
        if let Some(saturations) = self.watchdog.observe_saturations(rc.age_saturations) {
            let snapshot = self.snapshot(now);
            self.watchdog.record(LivenessViolation::AgeOverflow {
                saturations,
                snapshot,
            });
        }
        let ns = self.net.stats();
        let injected = ns.packets_injected.get();
        let accounted = ns.packets_delivered.get()
            + ns.packets_dropped.get()
            + self.net.packets_in_flight() as u64;
        if let Some(delta) = self.watchdog.observe_conservation(injected, accounted) {
            let snapshot = self.snapshot(now);
            self.watchdog.record(if delta < 0 {
                LivenessViolation::Lost {
                    txn: None,
                    count: delta.unsigned_abs(),
                    snapshot,
                }
            } else {
                LivenessViolation::Duplicated {
                    count: delta.unsigned_abs(),
                    snapshot,
                }
            });
        }
    }

    /// Flags transactions with no progress for longer than the recovery
    /// timeout; past the full retry budget they are abandoned as lost.
    fn timeout_scan(&mut self, now: Cycle) {
        let timeout = self.cfg.recovery.timeout;
        let give_up = timeout.saturating_mul(Cycle::from(self.cfg.recovery.max_retries) + 1);
        let mut stuck: Vec<TxnId> = Vec::new();
        let mut lost: Vec<TxnId> = Vec::new();
        for (&txn, t) in &self.txns {
            // Merged transactions ride on their primary's packets; the
            // primary's fate decides theirs.
            if t.merged {
                continue;
            }
            let idle = now.saturating_sub(t.touched);
            if idle > timeout {
                stuck.push(txn);
            }
            if idle > give_up {
                lost.push(txn);
            }
        }
        for txn in stuck {
            if self.timed_out.insert(txn) {
                self.robust.timeouts += 1;
            }
        }
        for txn in lost {
            self.lose_txn(txn, now);
        }
    }

    fn tick_cores(&mut self, now: Cycle) {
        let mut outbox: Vec<(usize, PortMsg)> = Vec::new();
        {
            let System {
                cores,
                streams,
                l1s,
                l1_mshrs,
                next_txn,
                txns,
                addr_map,
                cfg,
                ..
            } = self;
            for (i, core) in cores.iter_mut().enumerate() {
                let mut port = TilePort {
                    core: i,
                    l1: &mut l1s[i],
                    mshr: &mut l1_mshrs[i],
                    next_txn: &mut *next_txn,
                    txns: &mut *txns,
                    out: &mut outbox,
                    map: *addr_map,
                    l1_latency: cfg.l1.latency,
                };
                core.tick(now, &mut streams[i], &mut port);
            }
        }
        let l1_age = self.cfg.l1.latency as u32;
        for (core, msg) in outbox {
            match msg {
                PortMsg::L2Req { txn, line } => {
                    let bank = self.snuca.bank_of(line);
                    self.inject(
                        core,
                        bank,
                        VNet::Request,
                        Priority::Normal,
                        1,
                        l1_age,
                        MemMsg::L2Req { txn, line },
                        now,
                    );
                }
                PortMsg::L1Writeback { line } => {
                    let bank = self.snuca.bank_of(line);
                    let flits = self.data_flits;
                    self.inject(
                        core,
                        bank,
                        VNet::Request,
                        Priority::Normal,
                        flits,
                        0,
                        MemMsg::L1Writeback { line },
                        now,
                    );
                }
            }
        }
    }

    /// Broadcasts whatever threshold updates the response policy wants to
    /// send this cycle (Scheme-1's periodic `factor × Delay_avg` messages;
    /// an empty poll — the common case — costs one virtual call).
    fn policy_updates(&mut self, now: Cycle) {
        let updates = self.resp_policy.poll_updates(now);
        if updates.is_empty() {
            return;
        }
        let mc_nodes: Vec<usize> = self.mcs.iter().map(|m| m.node).collect();
        for (core, threshold) in updates {
            for &mc_node in &mc_nodes {
                // Threshold updates are themselves prioritized (Section 3.1).
                self.inject(
                    core,
                    mc_node,
                    VNet::Request,
                    Priority::High,
                    1,
                    0,
                    MemMsg::ThresholdUpdate { core, threshold },
                    now,
                );
            }
        }
    }

    fn handle_deliveries(&mut self, now: Cycle) {
        let l2_latency = self.cfg.l2.latency;
        let l1_latency = self.cfg.l1.latency;
        for node in 0..self.cores.len() {
            for d in self.net.take_delivered(NodeId(node as u16)) {
                match d.payload {
                    MemMsg::L2Req { txn, .. } => {
                        if let Some(t) = self.txns.get_mut(&txn) {
                            t.at_l2 = now;
                            t.touched = now;
                        }
                        self.push_work(
                            now + l2_latency,
                            Action::L2Request {
                                node,
                                txn,
                                age: d.final_age,
                            },
                        );
                    }
                    MemMsg::L1Writeback { line } => {
                        self.push_work(now + l2_latency, Action::L2Writeback { node, line });
                    }
                    MemMsg::MemReq { txn, line } => {
                        let mc_idx = self.mc_at_node[node]
                            .expect("MemReq delivered to a non-controller node");
                        // A request for an abandoned transaction (timed out
                        // while this packet crawled through a faulty mesh)
                        // has nobody waiting: drop it at the controller door.
                        let Some(t) = self.txns.get_mut(&txn) else {
                            continue;
                        };
                        let core = t.core;
                        t.at_mc = now;
                        t.touched = now;
                        let decoded = self.addr_map.decode(line);
                        debug_assert_eq!(decoded.controller, mc_idx, "MC interleaving mismatch");
                        let mc = &mut self.mcs[mc_idx];
                        mc.pending.insert(
                            txn,
                            McPending {
                                age_at_arrival: d.final_age,
                                l2_bank: d.meta.src.index(),
                                core,
                                line,
                            },
                        );
                        mc.ctrl
                            .enqueue(txn, decoded.bank, decoded.row, false, now)
                            .expect("decoded bank is in range");
                    }
                    MemMsg::MemWriteback { line } => {
                        let mc_idx = self.mc_at_node[node]
                            .expect("MemWriteback delivered to a non-controller node");
                        let decoded = self.addr_map.decode(line);
                        self.next_wb_token += 1;
                        let token = WB_FLAG | self.next_wb_token;
                        self.mcs[mc_idx]
                            .ctrl
                            .enqueue(token, decoded.bank, decoded.row, true, now)
                            .expect("decoded bank is in range");
                    }
                    MemMsg::MemResp { txn, line } => {
                        if let Some(t) = self.txns.get_mut(&txn) {
                            t.back_at_l2 = now;
                            t.touched = now;
                        }
                        self.push_work(
                            now + l2_latency,
                            Action::L2Fill {
                                node,
                                txn,
                                line,
                                age: d.final_age,
                                high: d.meta.priority == Priority::High,
                            },
                        );
                    }
                    MemMsg::L2Resp { txn, line } => {
                        self.push_work(
                            now + l1_latency,
                            Action::CoreFill {
                                core: node,
                                txn,
                                line,
                                age: d.final_age,
                                high: d.meta.priority == Priority::High,
                            },
                        );
                    }
                    MemMsg::ThresholdUpdate { core, threshold } => {
                        let mc_idx = self.mc_at_node[node]
                            .expect("ThresholdUpdate delivered to a non-controller node");
                        self.resp_policy.install_threshold(mc_idx, core, threshold);
                    }
                }
            }
        }
    }

    fn process_work(&mut self, now: Cycle) {
        while self.work.peek().is_some_and(|Reverse(w)| w.ready <= now) {
            let Reverse(item) = self.work.pop().expect("checked peek");
            match item.action {
                Action::L2Request { node, txn, age } => self.l2_request(node, txn, age, now),
                Action::L2Writeback { node, line } => self.l2_writeback(node, line, now),
                Action::L2Fill {
                    node,
                    txn,
                    line,
                    age,
                    high,
                } => self.l2_fill(node, txn, line, age, high, now),
                Action::CoreFill {
                    core,
                    txn,
                    line,
                    age,
                    high,
                } => self.core_fill(core, txn, line, age, high, now),
                Action::Reinject {
                    src,
                    dest,
                    vnet,
                    priority,
                    flits,
                    msg,
                } => {
                    // Restart the age field: the paper's so-far delay rides
                    // in the dropped header and is gone with it.
                    self.inject(src, dest, vnet, priority, flits, 0, msg, now);
                }
            }
        }
    }

    fn l2_request(&mut self, node: usize, txn: TxnId, age: u32, now: Cycle) {
        // The transaction may have been abandoned while this request was
        // queued at the bank; there is nobody left to answer.
        let Some(t) = self.txns.get(&txn) else {
            return;
        };
        let (line, core) = (t.line, t.core);
        let l2_latency = self.cfg.l2.latency as u32;
        // Merge with an in-flight fill before consulting the tag array (the
        // tag is already allocated while the fill is outstanding).
        if self.l2_mshrs[node].contains(line) {
            self.l2_mshrs[node].alloc(line, txn);
            if let Some(t) = self.txns.get_mut(&txn) {
                t.offchip = true;
                t.merged = true;
            }
            return;
        }
        // No MSHR free: retry shortly (models bank-side back-pressure); the
        // wait is part of the access's so-far delay.
        if self.l2_mshrs[node].len() == self.l2_mshrs[node].capacity() {
            let age = accumulate_age(age, MSHR_RETRY_DELAY, 1, self.cfg.noc.max_age());
            self.push_work(now + MSHR_RETRY_DELAY, Action::L2Request { node, txn, age });
            return;
        }
        match self.l2_banks[node].access(line, false) {
            L2Access::Hit => {
                let flits = self.data_flits;
                self.inject(
                    node,
                    core,
                    VNet::Response,
                    Priority::Normal,
                    flits,
                    accumulate_age(age, self.cfg.l2.latency, 1, self.cfg.noc.max_age()),
                    MemMsg::L2Resp { txn, line },
                    now,
                );
            }
            L2Access::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.send_mem_writeback(node, victim, now);
                }
                self.l2_mshrs[node].alloc(line, txn);
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.offchip = true;
                }
                let bank = self.addr_map.global_bank(line);
                // Decision point 1: the request policy picks the priority
                // this miss rides to the controller with.
                let priority = self.req_policy.request_priority(node, bank, core, age, now);
                let mc_node = self.mcs[self.addr_map.decode(line).controller].node;
                self.inject(
                    node,
                    mc_node,
                    VNet::Request,
                    priority,
                    1,
                    age.saturating_add(l2_latency).min(self.cfg.noc.max_age()),
                    MemMsg::MemReq { txn, line },
                    now,
                );
            }
        }
    }

    fn l2_writeback(&mut self, node: usize, line: u64, now: Cycle) {
        // Write-allocate the dirty line; a displaced dirty victim goes to
        // memory. No fill from memory is needed (the writeback carries the
        // whole line).
        if let L2Access::Miss {
            writeback: Some(victim),
        } = self.l2_banks[node].access(line, true)
        {
            self.send_mem_writeback(node, victim, now);
        }
    }

    fn send_mem_writeback(&mut self, node: usize, line: u64, now: Cycle) {
        let mc_node = self.mcs[self.addr_map.decode(line).controller].node;
        let flits = self.data_flits;
        self.inject(
            node,
            mc_node,
            VNet::Request,
            Priority::Normal,
            flits,
            0,
            MemMsg::MemWriteback { line },
            now,
        );
    }

    fn l2_fill(&mut self, node: usize, txn: TxnId, line: u64, age: u32, high: bool, now: Cycle) {
        // A fill for an abandoned transaction finds no waiters: the MSHR
        // entry was already torn down when the transaction was lost.
        let waiters = self.l2_mshrs[node].complete(line);
        debug_assert!(
            waiters.contains(&txn) || !self.txns.contains_key(&txn),
            "fill for a live transaction with no matching MSHR entry"
        );
        let flits = self.data_flits;
        let out_age = accumulate_age(age, self.cfg.l2.latency, 1, self.cfg.noc.max_age());
        let priority = if high {
            Priority::High
        } else {
            Priority::Normal
        };
        for waiter in waiters {
            let Some(t) = self.txns.get(&waiter) else {
                continue;
            };
            let core = t.core;
            self.inject(
                node,
                core,
                VNet::Response,
                priority,
                flits,
                out_age,
                MemMsg::L2Resp { txn: waiter, line },
                now,
            );
        }
    }

    fn core_fill(&mut self, core: usize, txn: TxnId, line: u64, age: u32, high: bool, now: Cycle) {
        for token in self.l1_mshrs[core].complete(line) {
            self.cores[core].complete(token, now);
        }
        if let Some(t) = self.txns.remove(&txn) {
            self.timed_out.remove(&txn);
            self.retry_attempts.remove(&RetryKey::Txn(txn));
            if t.offchip {
                if !t.merged {
                    self.tracker
                        .record_return_leg(high, now.saturating_sub(t.mc_done));
                    let times = TxnTimes {
                        issued: t.issued,
                        at_l2: t.at_l2,
                        at_mc: t.at_mc,
                        mc_done: t.mc_done,
                        back_at_l2: t.back_at_l2,
                        done: now,
                    };
                    self.tracker.record_completion(core, &times);
                    self.trace.offer(TxnRecord {
                        core,
                        line: t.line,
                        times,
                    });
                }
                // The paper reads the round-trip delay from the age field
                // of the returning message, so `Delay_avg` and the so-far
                // comparison at the controller share units.
                let final_age = accumulate_age(age, self.cfg.l1.latency, 1, self.cfg.noc.max_age());
                self.resp_policy.record_round_trip(core, final_age);
            }
            if !self.probes.is_empty() {
                let ev = Retire {
                    core,
                    line: t.line,
                    offchip: t.offchip,
                    merged: t.merged,
                    total_latency: now.saturating_sub(t.issued),
                    cycle: now,
                };
                for p in &mut self.probes {
                    p.on_retire(&ev);
                }
            }
        }
    }

    fn tick_mcs(&mut self, now: Cycle) {
        for m in 0..self.mcs.len() {
            if self.mcs[m].monitor.due(now) {
                let idle = self.mcs[m].ctrl.idle_banks();
                self.mcs[m].monitor.sample(now, &idle);
            }
            let completions = self.mcs[m].ctrl.tick(now);
            for c in completions {
                if c.req.token & WB_FLAG != 0 {
                    continue; // writebacks need no response
                }
                let txn = c.req.token;
                // The transaction may have been abandoned while the access
                // was queued in DRAM; its completion needs no response.
                let Some(pending) = self.mcs[m].pending.remove(&txn) else {
                    continue;
                };
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.mc_done = now;
                    t.touched = now;
                }
                let age = accumulate_age(
                    pending.age_at_arrival,
                    c.controller_delay,
                    1,
                    self.cfg.noc.max_age(),
                );
                self.tracker.record_so_far(pending.core, age);
                // Decision point 2: the response policy picks the priority
                // of the reply's whole return path.
                let priority = self
                    .resp_policy
                    .response_priority(m, pending.core, age, now);
                if !self.probes.is_empty() {
                    let ev = McDequeue {
                        mc: m,
                        core: pending.core,
                        so_far_delay: age,
                        queued_for: c.controller_delay,
                        priority,
                        cycle: now,
                    };
                    for p in &mut self.probes {
                        p.on_mc_dequeue(&ev);
                    }
                }
                let line = pending.line;
                let mc_node = self.mcs[m].node;
                let flits = self.data_flits;
                self.inject(
                    mc_node,
                    pending.l2_bank,
                    VNet::Response,
                    priority,
                    flits,
                    age,
                    MemMsg::MemResp { txn, line },
                    now,
                );
            }
        }
    }
}
