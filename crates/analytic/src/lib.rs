//! Closed-form analytical estimator of end-to-end memory-access latency.
//!
//! The cycle simulator answers "what is the latency of configuration X"
//! exactly, in minutes; sweep grids (fabric × MC placement × scheme × size)
//! need that answer *approximately, in microseconds*, to decide which cells
//! are worth simulating at all. This crate provides that fast path: an
//! M/G/1-style nonpreemptive priority-queueing model in the spirit of
//! Mandal et al. ("Analytical Performance Models for NoCs with Multiple
//! Priority Traffic Classes", "... under Priority Arbitration and Bursty
//! Traffic" — see `PAPERS.md`), specialized to this simulator's round trip:
//!
//! ```text
//! core --1 flit--> L2 bank --1 flit--> MC --5 flits--> L2 bank --5 flits--> core
//!        (request vnet)      (request)       (response)         (response)
//! ```
//!
//! The model (full derivation in `DESIGN.md` §14):
//!
//! * **Rates.** Each core's open-loop demand comes from its profile's
//!   [`TrafficRate`] (misses per instruction, MLP); a memory-stall IPC
//!   model converts it to packets/cycle. [`AnalyticModel::evaluate`]
//!   closes the loop: injection rate and latency are solved to a fixed
//!   point by bisection, because cores with finite MLP self-throttle.
//! * **Contention.** Every (router, out-port) channel's utilization is
//!   accumulated exactly from deterministic route walks
//!   ([`Topology::route_channels`]) of all four legs over all
//!   (core, bank, controller) pairs — this is where the per-topology
//!   terms come from (wraparound shortens torus walks, concentration
//!   merges cmesh channels, express links skip routers). Waiting per
//!   channel is nonpreemptive-priority M/G/1: `W_H = R/(1-ρ_H)`,
//!   `W_L = R/((1-ρ_H)(1-ρ))` with residual `R` inflated by a batch
//!   (burstiness) coefficient per the second Mandal model.
//! * **Priority classes.** Scheme 1 promotes a fraction of *responses*
//!   (so-far delay above `threshold_factor × mean`, ≈ the exponential tail
//!   `e^{-factor}`); Scheme 2 promotes *memory requests* that find their
//!   bank idle (≈ `1 - ρ_bank`). The class split changes per-class
//!   latency; by the conservation law it barely moves the mean, so the
//!   schemes' measured mean-latency gains enter as small calibrated
//!   multipliers on the queueing delay ([`Coefficients`]).
//! * **Stability.** With no measurement horizon, offered load beyond any
//!   channel's or controller's capacity is [`Stability::Unstable`] and the
//!   open-loop latency diverges. With a horizon `W` (a real run's measure
//!   window), an unstable cell's *measured* latency is window-limited:
//!   requests sampled inside the window waited on average about half of
//!   it, so the estimate saturates at `sat_fill × W + L0` and the verdict
//!   reports the window as the binding constraint.

use noclat_noc::topology::{Dir, NodeId, Topology};
use noclat_sim::config::{ConfigError, SystemConfig};
use noclat_sim::Cycle;
use noclat_workloads::SpecApp;

/// Calibrated coefficients of the model. Structural terms (hop counts,
/// service times, utilizations) are computed exactly from the
/// configuration; these coefficients absorb what a closed form cannot
/// capture — burst clustering, hot-bank imbalance, and the schemes'
/// measured effect on the *mean* (which pure priority queueing conserves).
///
/// Defaults are calibrated against the pinned golden results
/// (`tests/golden_results.rs`); `tests/analytic_validation.rs` holds the
/// calibration to a ≤ 15% mean relative error band and proves the band
/// catches a broken coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Batch-arrival inflation of every queueing residual (the bursty
    /// traffic correction of the second Mandal model): off-chip accesses
    /// arrive in MLP-length bursts, not Poisson-spread.
    pub burstiness: f64,
    /// Scales network (per-channel) waiting.
    pub contention: f64,
    /// Scales memory-controller waiting (bank pool + data bus).
    pub mc_pressure: f64,
    /// Hot-phase spatial concentration: multiplies effective per-bank load
    /// (phased apps hammer a window of rows, not the whole bank pool).
    pub bank_concentration: f64,
    /// Non-memory CPI floor added to `1/issue_width` in the IPC model.
    pub base_cpi: f64,
    /// Effective-MLP multiplier over the profile's mean burst length (the
    /// OoO window overlaps more than one burst).
    pub mlp_factor: f64,
    /// Fractional reduction of total queueing delay when Scheme 1
    /// (late-response expediting) is active.
    pub scheme1_gain: f64,
    /// Fractional reduction of total queueing delay when Scheme 2
    /// (idle-bank request expediting) is active.
    pub scheme2_gain: f64,
    /// Mean fraction of the measurement window a request sampled inside a
    /// saturated (unstable) run spends queued: the window-limited latency
    /// estimate is `sat_fill × measure + L0`.
    pub sat_fill: f64,
}

impl Default for Coefficients {
    fn default() -> Self {
        Coefficients {
            burstiness: 4.0,
            contention: 1.0,
            mc_pressure: 2.0,
            bank_concentration: 2.0,
            base_cpi: 0.3,
            mlp_factor: 1.5,
            scheme1_gain: 0.012,
            scheme2_gain: 0.105,
            sat_fill: 0.444,
        }
    }
}

/// Utilization of one (router, out-port) channel at the operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelUtil {
    /// Router the channel leaves.
    pub router: NodeId,
    /// Out-port ([`Dir::Local`] is the ejection channel).
    pub port: Dir,
    /// Flit-cycles per cycle demanded of the channel (ρ).
    pub utilization: f64,
}

/// What limits throughput when a cell is not stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bottleneck {
    /// A network channel saturates first.
    Channel {
        /// Router the channel leaves.
        router: NodeId,
        /// Saturated out-port.
        port: Dir,
    },
    /// A memory controller's bank pool / data bus saturates first.
    Controller {
        /// Controller index.
        index: usize,
    },
    /// Offered load exceeds what the measurement window can drain: the
    /// run never reaches steady state and its measured latency is
    /// window-limited.
    Window,
}

/// The model's stability verdict for a configuration at its offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stability {
    /// A steady state exists inside the capacity region.
    Stable {
        /// `1 - max ρ` over all channels and controllers at the
        /// operating point.
        margin: f64,
    },
    /// No steady state: queues grow for as long as the run lasts.
    Unstable {
        /// The binding constraint.
        bottleneck: Bottleneck,
        /// Utilization demanded of the bottleneck (> 1, or the horizon
        /// fill for [`Bottleneck::Window`]).
        utilization: f64,
    },
}

impl Stability {
    /// Whether the verdict is [`Stability::Stable`].
    #[must_use]
    pub fn is_stable(&self) -> bool {
        matches!(self, Stability::Stable { .. })
    }
}

/// Estimated per-priority-class end-to-end latency (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassLatency {
    /// Packets riding the high-priority class (scheme-expedited).
    pub high: f64,
    /// Normal-priority packets.
    pub low: f64,
}

/// Everything the model estimates for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticReport {
    /// Expected end-to-end memory-access latency in cycles (L1 miss to
    /// data back at the core), mean over all off-chip accesses.
    pub mean_latency: f64,
    /// Per-priority-class end-to-end latency.
    pub class_latency: ClassLatency,
    /// Deterministic zero-load round-trip latency.
    pub zero_load_latency: f64,
    /// Per-channel utilization at the operating point, one entry per
    /// (router, out-port) with nonzero load.
    pub channel_utilization: Vec<ChannelUtil>,
    /// Largest entry of `channel_utilization`.
    pub max_channel_utilization: f64,
    /// Data-bus utilization of one memory controller (they are symmetric
    /// under uniform interleaving).
    pub mc_utilization: f64,
    /// Total off-chip packets/cycle injected at the operating point.
    pub offered_load: f64,
    /// Stability verdict.
    pub stability: Stability,
}

/// Per-channel load basis at unit rate scale. Loads are linear in the
/// injection-rate vector, so route walks run once and every operating
/// point is a scalar multiple.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelUnit {
    /// Packet arrivals per cycle.
    lam: f64,
    /// Flit-cycles per cycle (ρ).
    rho: f64,
    /// Σ λ·E[S²] (second service moment, for the M/G/1 residual).
    m2: f64,
    /// ρ from response packets (Scheme-1 promotable).
    rho_resp: f64,
    /// ρ from memory-request packets (Scheme-2 promotable).
    rho_memreq: f64,
    /// Expected crossings per read request: core→bank leg (never high).
    w_req1: f64,
    /// Expected crossings per read request: bank→MC leg (Scheme-2 class).
    w_req2: f64,
    /// Expected crossings per read request: response legs (Scheme-1 class).
    w_resp: f64,
}

/// One core's open-loop demand parameters.
#[derive(Debug, Clone, Copy)]
struct CoreDemand {
    /// Off-chip accesses per instruction.
    mpi: f64,
    /// Effective memory-level parallelism.
    mlp: f64,
    /// Write-back fraction.
    wf: f64,
    /// Base injection rate (packets/cycle) at zero-load latency.
    lam0: f64,
}

/// The estimator: build once per configuration, then query.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    cfg: SystemConfig,
    topo: Topology,
    apps: Vec<SpecApp>,
    demands: Vec<CoreDemand>,
    channels: Vec<ChannelUnit>,
    ports: usize,
    coeffs: Coefficients,
    rate_scale: f64,
    warmup: Option<Cycle>,
    measure: Option<Cycle>,
    /// Deterministic zero-load round trip.
    l0: f64,
    /// DRAM row-access service time (core cycles).
    s_bank: f64,
    /// Data-bus occupancy per access (core cycles).
    s_bus: f64,
    /// Total base read-request rate Σ lam0 (unit scale).
    lam_total: f64,
    /// Total base write-back rate (unit scale).
    lam_wb_total: f64,
}

impl AnalyticModel {
    /// Builds the estimator for a configuration and its per-core
    /// application placement (`apps[i]` runs on tile `i`, exactly as
    /// `run_mix` assigns them). Validates the configuration first.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] of [`SystemConfig::validate`] if the
    /// configuration is not simulable (the estimator must never rank a
    /// cell the cycle pool would reject).
    pub fn new(cfg: &SystemConfig, apps: &[SpecApp]) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let topo = Topology::from_config(&cfg.topology);
        let n = topo.num_nodes();
        assert_eq!(
            apps.len(),
            n,
            "placement must cover every tile: {} apps for {n} tiles",
            apps.len()
        );
        let coeffs = Coefficients::default();
        let mut model = AnalyticModel {
            cfg: cfg.clone(),
            topo,
            apps: apps.to_vec(),
            demands: Vec::new(),
            channels: Vec::new(),
            ports: 0,
            coeffs,
            rate_scale: 1.0,
            warmup: None,
            measure: None,
            l0: 0.0,
            s_bank: 0.0,
            s_bus: 0.0,
            lam_total: 0.0,
            lam_wb_total: 0.0,
        };
        model.build(apps);
        Ok(model)
    }

    /// Replaces the calibrated coefficients (perturbation tests, sweeps)
    /// and rebuilds the load basis, which depends on them through the base
    /// injection rates.
    #[must_use]
    pub fn with_coefficients(mut self, coeffs: Coefficients) -> Self {
        self.coeffs = coeffs;
        let apps = self.apps.clone();
        self.build(&apps);
        self
    }

    /// Multiplies every core's offered injection rate (property tests,
    /// load sweeps). `1.0` is the profile-derived demand.
    #[must_use]
    pub fn with_rate_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0 && scale.is_finite());
        self.rate_scale = scale;
        self
    }

    /// Supplies the run lengths of the cycle run being estimated. The
    /// measure window caps unstable-cell latency (a sim can only observe
    /// window-limited waits); warmup+measure gates Scheme 1, whose first
    /// threshold update only fires after `scheme1.update_period` cycles.
    #[must_use]
    pub fn with_lengths(mut self, warmup: Cycle, measure: Cycle) -> Self {
        self.warmup = Some(warmup);
        self.measure = Some(measure);
        self
    }

    /// The calibrated coefficients in use.
    #[must_use]
    pub fn coefficients(&self) -> Coefficients {
        self.coeffs
    }

    /// Deterministic zero-load end-to-end latency (cycles).
    #[must_use]
    pub fn zero_load_latency(&self) -> f64 {
        self.l0
    }

    // -- construction -----------------------------------------------------

    fn build(&mut self, apps: &[SpecApp]) {
        let per_hop = self.per_hop_cycles();
        let (req_flits, resp_flits) = self.flit_counts();

        // Zero-load round trip: average hop counts over the uniform
        // (core, bank, controller) traffic pattern.
        let topo = &self.topo;
        let n = topo.num_nodes() as f64;
        let mcs = topo.mc_nodes(self.cfg.topology.mc_placement, self.cfg.mem.num_controllers);
        let m = mcs.len() as f64;
        let mut h_core_bank = 0.0;
        let mut h_bank_mc = 0.0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                h_core_bank += f64::from(topo.hop_distance(a, b));
            }
            for &mc in &mcs {
                h_bank_mc += f64::from(topo.hop_distance(a, mc));
            }
        }
        h_core_bank /= n * n;
        h_bank_mc /= n * m;

        let ser_req = f64::from(req_flits) - 1.0;
        let ser_resp = f64::from(resp_flits) - 1.0;
        let dram = self.dram_service(apps);
        self.s_bank = dram.0;
        self.s_bus = dram.1;
        let l1 = self.cfg.l1.latency as f64;
        let l2 = self.cfg.l2.latency as f64;
        let ctl = self.cfg.mem.ctl_latency as f64;
        // Four network legs (each: hops × per-hop + serialization of the
        // tail), two L2 touches, controller pipeline and one DRAM access.
        self.l0 = l1
            + (h_core_bank + 1.0) * per_hop
            + ser_req
            + l2
            + (h_bank_mc + 1.0) * per_hop
            + ser_req
            + ctl
            + self.s_bank
            + self.s_bus
            + (h_bank_mc + 1.0) * per_hop
            + ser_resp
            + l2
            + (h_core_bank + 1.0) * per_hop
            + ser_resp;

        // Per-core open-loop demands at the zero-load operating point.
        self.demands = apps
            .iter()
            .map(|a| {
                let r = a.profile().traffic_rate();
                CoreDemand {
                    mpi: r.offchip_per_instr,
                    mlp: r.mlp * self.coeffs.mlp_factor,
                    wf: r.write_fraction,
                    lam0: 0.0,
                }
            })
            .collect();
        self.recompute_base_rates();
        self.accumulate_channels(&mcs, req_flits, resp_flits);
    }

    fn recompute_base_rates(&mut self) {
        let issue = self.cfg.cpu.issue_width as f64;
        let cpi0 = 1.0 / issue + self.coeffs.base_cpi;
        let l0 = self.l0;
        self.lam_total = 0.0;
        self.lam_wb_total = 0.0;
        for d in &mut self.demands {
            let ipc0 = 1.0 / (cpi0 + d.mpi * l0 / d.mlp);
            d.lam0 = d.mpi * ipc0;
            self.lam_total += d.lam0;
            self.lam_wb_total += d.lam0 * d.wf;
        }
    }

    /// Cycles one hop costs a head flit: router traversal plus the link.
    fn per_hop_cycles(&self) -> f64 {
        self.cfg.noc.pipeline.min_residency() as f64 + self.cfg.noc.link_latency as f64
    }

    fn flit_counts(&self) -> (u8, u8) {
        let req = 1u8;
        let bits = self.cfg.l2.line_bytes * 8;
        let resp = 1 + (bits.div_ceil(self.cfg.noc.flit_bits)) as u8;
        (req, resp)
    }

    /// `(row access, data-bus occupancy)` in core cycles, rate-weighted
    /// over the placed applications' row localities.
    fn dram_service(&self, apps: &[SpecApp]) -> (f64, f64) {
        let mult = self.cfg.mem.bus_multiplier as f64;
        let mut wsum = 0.0;
        let mut hit = 0.0;
        for a in apps {
            let p = a.profile();
            let w = p.traffic_rate().offchip_per_instr;
            wsum += w;
            hit += w * p.row_locality;
        }
        let p_hit = if wsum > 0.0 { hit / wsum } else { 0.5 };
        let row = p_hit * f64::from(self.cfg.mem.row_hit_latency)
            + (1.0 - p_hit) * self.cfg.mem.bank_busy as f64;
        (row * mult, f64::from(self.cfg.mem.burst_latency) * mult)
    }

    /// Accumulates the unit-scale load basis: every channel's packet rate,
    /// utilization and second service moment from exact route walks of all
    /// four legs (plus write-back traffic on the request legs).
    fn accumulate_channels(&mut self, mcs: &[NodeId], req_flits: u8, resp_flits: u8) {
        self.ports = self.topo.num_ports();
        let mut chans = vec![ChannelUnit::default(); self.topo.num_routers() * self.ports];
        let algo = self.cfg.noc.routing;
        let topo = self.topo;
        let n = topo.num_nodes() as f64;
        let m = mcs.len() as f64;
        let fr = f64::from(req_flits);
        let fd = f64::from(resp_flits);

        let mut add = |path: &[(NodeId, Dir)],
                       rate: f64,
                       flits: f64,
                       resp: bool,
                       memreq: bool,
                       w1: f64,
                       w2: f64,
                       wr: f64| {
            for &(router, port) in path {
                let c = &mut chans[router.index() * self.ports + port.index()];
                c.lam += rate;
                c.rho += rate * flits;
                c.m2 += rate * flits * flits;
                if resp {
                    c.rho_resp += rate * flits;
                }
                if memreq {
                    c.rho_memreq += rate * flits;
                }
                c.w_req1 += w1;
                c.w_req2 += w2;
                c.w_resp += wr;
            }
        };

        let lam_total = self.lam_total;
        // Legs that depend on the individual core: core→bank requests and
        // L1 write-backs (leg 1), bank→core responses (leg 4).
        for (i, d) in self.demands.iter().enumerate() {
            let core = NodeId(i as u16);
            let rate = d.lam0 / n;
            let wb = d.lam0 * d.wf / n;
            let w = if lam_total > 0.0 {
                rate / lam_total
            } else {
                0.0
            };
            for bank in topo.nodes() {
                let out = topo.route_channels(algo, core, bank);
                add(&out, rate, fr, false, false, w, 0.0, 0.0);
                if wb > 0.0 {
                    add(&out, wb, fd, false, false, 0.0, 0.0, 0.0);
                }
                let back = topo.route_channels(algo, bank, core);
                add(&back, rate, fd, true, false, 0.0, 0.0, w);
            }
        }
        // Aggregate legs: bank→MC memory requests and L2 write-backs
        // (leg 2), MC→bank responses (leg 3). Uniform over (bank, MC).
        let rate = self.lam_total / (n * m);
        let wb = self.lam_wb_total / (n * m);
        let w = if lam_total > 0.0 {
            rate / lam_total
        } else {
            0.0
        };
        for bank in topo.nodes() {
            for &mc in mcs {
                let out = topo.route_channels(algo, bank, mc);
                add(&out, rate, fr, false, true, 0.0, w, 0.0);
                if wb > 0.0 {
                    add(&out, wb, fd, false, false, 0.0, 0.0, 0.0);
                }
                let back = topo.route_channels(algo, mc, bank);
                add(&back, rate, fd, true, false, 0.0, 0.0, w);
            }
        }
        self.channels = chans;
    }

    // -- operating-point queries ------------------------------------------

    /// Scheme-1 activity: enabled and the run long enough for the first
    /// periodic threshold update to fire.
    fn scheme1_active(&self) -> bool {
        if !self.cfg.scheme1.enabled {
            return false;
        }
        match (self.warmup, self.measure) {
            (Some(w), Some(m)) => w + m >= self.cfg.scheme1.update_period,
            _ => true,
        }
    }

    /// Fraction of responses promoted by Scheme 1 (exponential so-far
    /// delay tail above `threshold_factor × mean`).
    fn p_high_resp(&self) -> f64 {
        if self.scheme1_active() {
            (-self.cfg.scheme1.threshold_factor).exp()
        } else {
            0.0
        }
    }

    /// Effective per-bank utilization at scale `s`, including hot-phase
    /// concentration.
    fn bank_rho(&self, s: f64) -> f64 {
        let banks = self.cfg.mem.banks_per_controller as f64;
        let m = self.cfg.mem.num_controllers as f64;
        let lam_mc = s * (self.lam_total + self.lam_wb_total) / m;
        lam_mc * self.s_bank / banks * self.coeffs.bank_concentration
    }

    /// Fraction of memory requests promoted by Scheme 2 (probability the
    /// target bank looks idle in the history window).
    fn p_high_req(&self, s: f64) -> f64 {
        if self.cfg.scheme2.enabled {
            (1.0 - self.bank_rho(s)).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Data-bus utilization of one controller at scale `s`.
    fn mc_rho(&self, s: f64) -> f64 {
        let m = self.cfg.mem.num_controllers as f64;
        s * (self.lam_total + self.lam_wb_total) / m * self.s_bus
    }

    /// Network + controller queueing delay per read request at scale `s`,
    /// split by priority class. Returns `(mean, high, low)`; infinite when
    /// any ρ ≥ 1.
    fn queueing(&self, s: f64) -> (f64, f64, f64) {
        let p1 = self.p_high_resp();
        let p2 = self.p_high_req(s);
        let burst = self.coeffs.burstiness;

        let mut mean = 0.0;
        let mut high = 0.0;
        let mut low = 0.0;
        for c in &self.channels {
            if c.lam <= 0.0 {
                continue;
            }
            let rho = s * c.rho;
            if rho >= 1.0 {
                return (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            }
            let rho_h = s * (c.rho_resp * p1 + c.rho_memreq * p2);
            let r = burst * s * c.m2 / 2.0;
            let w_h = r / (1.0 - rho_h);
            let w_l = r / ((1.0 - rho_h) * (1.0 - rho));
            // Crossing-weighted contribution to the end-to-end path.
            mean += c.w_req1 * w_l
                + c.w_req2 * (p2 * w_h + (1.0 - p2) * w_l)
                + c.w_resp * (p1 * w_h + (1.0 - p1) * w_l);
            high += (c.w_req1 + c.w_req2 + c.w_resp) * w_h;
            low += (c.w_req1 + c.w_req2 + c.w_resp) * w_l;
        }
        mean *= self.coeffs.contention;
        high *= self.coeffs.contention;
        low *= self.coeffs.contention;

        // Memory controller: bank pool then the shared data bus.
        let rho_bus = self.mc_rho(s);
        if rho_bus >= 1.0 {
            return (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        }
        let rho_bank = self.bank_rho(s).min(0.999);
        let w_bank = rho_bank / (1.0 - rho_bank) * self.s_bank / 2.0;
        let r_bus = burst * rho_bus * self.s_bus / 2.0;
        let rho_bus_h = rho_bus * p2;
        let bus_h = r_bus / (1.0 - rho_bus_h);
        let bus_l = r_bus / ((1.0 - rho_bus_h) * (1.0 - rho_bus));
        let mc = self.coeffs.mc_pressure;
        mean += mc * (w_bank + p2 * bus_h + (1.0 - p2) * bus_l);
        high += mc * (w_bank + bus_h);
        low += mc * (w_bank + bus_l);
        (mean, high, low)
    }

    /// Largest utilization demanded anywhere at scale `s`, with its
    /// location.
    fn max_rho(&self, s: f64) -> (f64, Bottleneck) {
        let mut best = (
            self.mc_rho(s),
            Bottleneck::Controller {
                index: 0, // symmetric under uniform interleaving
            },
        );
        for (slot, c) in self.channels.iter().enumerate() {
            let rho = s * c.rho;
            if rho > best.0 {
                let router = NodeId((slot / self.ports) as u16);
                let port = port_from_index(slot % self.ports);
                best = (rho, Bottleneck::Channel { router, port });
            }
        }
        best
    }

    /// The rate-scale multiplier at which the first channel or controller
    /// saturates: `open_loop_latency` is finite strictly below this and
    /// infinite at or above it.
    #[must_use]
    pub fn stability_boundary(&self) -> f64 {
        let (rho, _) = self.max_rho(1.0);
        if rho > 0.0 {
            1.0 / rho
        } else {
            f64::INFINITY
        }
    }

    /// Open-loop mean end-to-end latency at `scale ×` the profile-derived
    /// injection rates (Mandal-style: rates are held fixed, nothing
    /// self-throttles). Monotone non-decreasing in `scale`; infinite at
    /// and beyond [`AnalyticModel::stability_boundary`].
    #[must_use]
    pub fn open_loop_latency(&self, scale: f64) -> f64 {
        assert!(scale >= 0.0);
        let (mean, _, _) = self.queueing(scale);
        self.l0 + mean
    }

    /// Closed-loop demand at end-to-end latency `l`: each core's rate
    /// follows from the memory-stall IPC model, summed and expressed as a
    /// multiple of the base (zero-load) rates.
    fn demand_scale(&self, l: f64) -> f64 {
        if self.lam_total <= 0.0 {
            return 0.0;
        }
        let issue = self.cfg.cpu.issue_width as f64;
        let cpi0 = 1.0 / issue + self.coeffs.base_cpi;
        let mut lam = 0.0;
        for d in &self.demands {
            lam += d.mpi / (cpi0 + d.mpi * l / d.mlp);
        }
        self.rate_scale * lam / self.lam_total
    }

    /// Full estimate at the configured operating point: closed-loop fixed
    /// point of rate and latency, scheme gains applied to the queueing
    /// delay, horizon cap for window-limited (unstable) cells.
    #[must_use]
    pub fn evaluate(&self) -> AnalyticReport {
        // g(l) = l0 + W(demand(l)) - l is strictly decreasing in l:
        // bisection on [l0, lmax] finds the unique fixed point.
        let lmax = 1e9;
        let mut lo = self.l0;
        let mut hi = lmax;
        let g = |l: f64| {
            let (mean, _, _) = self.queueing(self.demand_scale(l));
            self.l0 + mean - l
        };
        if g(lo) > 0.0 {
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if g(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        } else {
            hi = lo;
        }
        let l_star = 0.5 * (lo + hi);
        let s = self.demand_scale(l_star);
        let (q_mean, q_high, q_low) = self.queueing(s);

        // Scheme gains on the queueing delay (conservation: priorities
        // redistribute, the measured mean effect is a small calibrated
        // fraction).
        let mut gain = 1.0;
        if self.scheme1_active() {
            gain *= 1.0 - self.coeffs.scheme1_gain;
        }
        if self.cfg.scheme2.enabled {
            gain *= 1.0 - self.coeffs.scheme2_gain;
        }
        let mut q = q_mean * gain;

        // Horizon cap: a run measuring for `measure` cycles can only
        // observe window-limited waits.
        let mut window_limited = false;
        if let Some(measure) = self.measure {
            let cap = self.coeffs.sat_fill * measure as f64 * gain;
            if !q.is_finite() || q > cap {
                q = cap;
                window_limited = true;
            }
        }
        let mean_latency = self.l0 + q;
        // Per-class latencies keep the M/G/1 high/low ratio around the
        // calibrated mean.
        let (high, low) = if q_mean.is_finite() && q_mean > 0.0 {
            (q * q_high / q_mean, q * q_low / q_mean)
        } else {
            (q, q)
        };
        let class_latency = ClassLatency {
            high: self.l0 + high,
            low: self.l0 + low,
        };

        let (rho_max, bottleneck) = self.max_rho(s);
        let stability = if window_limited {
            Stability::Unstable {
                bottleneck: Bottleneck::Window,
                utilization: rho_max.max(1.0),
            }
        } else if rho_max >= 1.0 || !q_mean.is_finite() {
            Stability::Unstable {
                bottleneck,
                utilization: rho_max,
            }
        } else {
            Stability::Stable {
                margin: 1.0 - rho_max,
            }
        };

        let mut channel_utilization = Vec::new();
        let mut max_channel_utilization: f64 = 0.0;
        for (slot, c) in self.channels.iter().enumerate() {
            if c.lam <= 0.0 {
                continue;
            }
            let rho = s * c.rho;
            max_channel_utilization = max_channel_utilization.max(rho);
            channel_utilization.push(ChannelUtil {
                router: NodeId((slot / self.ports) as u16),
                port: port_from_index(slot % self.ports),
                utilization: rho,
            });
        }

        AnalyticReport {
            mean_latency,
            class_latency,
            zero_load_latency: self.l0,
            channel_utilization,
            max_channel_utilization,
            mc_utilization: self.mc_rho(s),
            offered_load: s * (self.lam_total + self.lam_wb_total),
            stability,
        }
    }
}

fn port_from_index(i: usize) -> Dir {
    Dir::EXPRESS_ALL[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::TopologyOverride;
    use noclat_workloads::workload;

    fn mesh_model() -> AnalyticModel {
        let cfg = SystemConfig::baseline_32();
        let apps = workload(2).apps();
        AnalyticModel::new(&cfg, &apps).unwrap()
    }

    #[test]
    fn zero_load_latency_is_sane() {
        let m = mesh_model();
        // A few network legs, an L2 and a DRAM access: well over the raw
        // DRAM latency, well under a congested round trip.
        assert!(m.zero_load_latency() > 60.0, "{}", m.zero_load_latency());
        assert!(m.zero_load_latency() < 400.0, "{}", m.zero_load_latency());
    }

    #[test]
    fn open_loop_latency_is_monotone_and_diverges() {
        let m = mesh_model();
        let b = m.stability_boundary();
        assert!(b.is_finite() && b > 0.0);
        let mut prev = 0.0;
        for step in 1..=20 {
            let scale = b * 0.999 * f64::from(step) / 20.0;
            let l = m.open_loop_latency(scale);
            assert!(l.is_finite(), "finite below the boundary (scale {scale})");
            assert!(l >= prev, "monotone at scale {scale}: {l} < {prev}");
            prev = l;
        }
        assert!(m.open_loop_latency(b * 1.001).is_infinite());
        assert!(prev > 3.0 * m.open_loop_latency(b * 0.05));
    }

    #[test]
    fn evaluate_reports_positive_utilizations() {
        let r = mesh_model().evaluate();
        assert!(r.mean_latency > r.zero_load_latency);
        assert!(r.max_channel_utilization > 0.0);
        assert!(r.mc_utilization > 0.0);
        assert!(!r.channel_utilization.is_empty());
        assert!(r.offered_load > 0.0);
        // Ejection channels at the corner MCs carry the response stream.
        assert!(r
            .channel_utilization
            .iter()
            .any(|c| c.port == Dir::Local && c.utilization > 0.0));
    }

    #[test]
    fn torus_with_short_window_is_window_limited() {
        let mut cfg = SystemConfig::baseline_256();
        TopologyOverride::parse("torus").unwrap().apply(&mut cfg);
        let apps = workload(2).apps_for(cfg.num_cores());
        let m = AnalyticModel::new(&cfg, &apps)
            .unwrap()
            .with_lengths(200, 4_000);
        let r = m.evaluate();
        assert!(matches!(
            r.stability,
            Stability::Unstable {
                bottleneck: Bottleneck::Window,
                ..
            }
        ));
        // Window-limited latency sits near half the measure window.
        assert!(r.mean_latency > 1_000.0 && r.mean_latency < 4_000.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SystemConfig::baseline_32();
        cfg.mem.num_controllers = 3;
        let apps = workload(2).apps();
        assert!(AnalyticModel::new(&cfg, &apps).is_err());
    }

    #[test]
    fn scheme2_lowers_the_mean_estimate() {
        let cfg = SystemConfig::baseline_32();
        let apps = workload(2).apps();
        let base = AnalyticModel::new(&cfg, &apps)
            .unwrap()
            .with_lengths(300, 12_000)
            .evaluate();
        let s2 = AnalyticModel::new(&cfg.clone().with_scheme2(), &apps)
            .unwrap()
            .with_lengths(300, 12_000)
            .evaluate();
        assert!(s2.mean_latency < base.mean_latency);
        // And the expedited class beats the normal class.
        assert!(s2.class_latency.high <= s2.class_latency.low);
    }
}
