//! Property-based tests of the analytic latency model: the closed-form
//! estimator must behave like a queueing model (monotone in load, divergent
//! at the stability boundary) and its stability verdict must agree with the
//! cycle simulator's liveness watchdog on real configurations.

use noclat::{run_mix, RunLengths, SystemConfig, TopologyOverride};
use noclat_analytic::AnalyticModel;
use noclat_sim::check::{self, pick, range_f64, range_u64};
use noclat_sim::rng::SimRng;
use noclat_workloads::workload;

/// A random golden-adjacent model instance: random baseline size, workload,
/// scheme combo and (for the 16×16 grids) fabric override.
fn random_model(rng: &mut SimRng) -> AnalyticModel {
    let size = pick(rng, &[16usize, 32, 256]);
    let mut cfg = match size {
        16 => SystemConfig::baseline_16(),
        32 => SystemConfig::baseline_32(),
        _ => SystemConfig::baseline_256(),
    };
    cfg = match range_u64(rng, 0, 4) {
        0 => cfg,
        1 => cfg.with_scheme1(),
        2 => cfg.with_scheme2(),
        _ => cfg.with_both_schemes(),
    };
    if size == 256 {
        let spec = pick(rng, &["mesh", "torus", "cmesh:c=4", "express:skip=2"]);
        TopologyOverride::parse(spec)
            .expect("static spec parses")
            .apply(&mut cfg);
    }
    let wl = range_u64(rng, 1, 19) as usize;
    let apps = workload(wl).apps_for(cfg.num_cores());
    AnalyticModel::new(&cfg, &apps).expect("baseline configs validate")
}

/// Open-loop latency is monotone non-decreasing in the injection-rate
/// scale: more offered load can never make the estimated latency drop.
#[test]
fn open_loop_latency_is_monotone_in_offered_load() {
    check::cases(60, |rng| {
        let model = random_model(rng);
        let boundary = model.stability_boundary();
        assert!(
            boundary.is_finite() && boundary > 0.0,
            "boundary must be positive and finite, got {boundary}"
        );
        let mut a = range_f64(rng, 0.01, 0.99) * boundary;
        let mut b = range_f64(rng, 0.01, 0.99) * boundary;
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let (la, lb) = (model.open_loop_latency(a), model.open_loop_latency(b));
        assert!(
            la <= lb + 1e-9,
            "latency dropped with load: L({a:.4}) = {la:.3} > L({b:.4}) = {lb:.3}"
        );
    });
}

/// Approaching the stability boundary the open-loop latency diverges, and
/// at or beyond the boundary it is infinite.
#[test]
fn open_loop_latency_diverges_at_the_stability_boundary() {
    check::cases(40, |rng| {
        let model = random_model(rng);
        let boundary = model.stability_boundary();
        let low = model.open_loop_latency(0.05 * boundary);
        let near = model.open_loop_latency(0.9999 * boundary);
        assert!(
            low.is_finite() && near.is_finite(),
            "latency below the boundary must stay finite (low {low}, near {near})"
        );
        assert!(
            near > 20.0 * low,
            "no divergence: L(0.9999b) = {near:.1} vs L(0.05b) = {low:.1}"
        );
        let over = range_f64(rng, 1.0, 2.0) * boundary;
        assert!(
            model.open_loop_latency(over).is_infinite(),
            "latency at {over:.4} (>= boundary {boundary:.4}) must be infinite"
        );
    });
}

/// The model's stability verdict must agree with the watchdog: a config the
/// model calls stable may not deadlock or starve in a short cycle sim. The
/// sub-grid is sampled small (16/32 cores) so the sim side stays cheap.
#[test]
fn model_stable_cells_pass_the_watchdog() {
    check::cases(6, |rng| {
        let mut cfg = if rng.chance(0.5) {
            SystemConfig::baseline_16()
        } else {
            SystemConfig::baseline_32()
        };
        cfg = match range_u64(rng, 0, 4) {
            0 => cfg,
            1 => cfg.with_scheme1(),
            2 => cfg.with_scheme2(),
            _ => cfg.with_both_schemes(),
        };
        let wl = range_u64(rng, 1, 19) as usize;
        let apps = workload(wl).apps_for(cfg.num_cores());
        let lengths = RunLengths {
            warmup: 200,
            measure: 2_000,
        };
        let report = AnalyticModel::new(&cfg, &apps)
            .expect("baseline configs validate")
            .with_lengths(lengths.warmup, lengths.measure)
            .evaluate();
        if !report.stability.is_stable() {
            // The watchdog only refutes *stable* verdicts; an unstable
            // verdict makes no liveness claim about the short window.
            return;
        }
        let r = run_mix(&cfg, &apps, lengths);
        let fatal: Vec<_> = r
            .system
            .violations()
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    noclat::LivenessViolation::Deadlock { .. }
                        | noclat::LivenessViolation::Starvation { .. }
                )
            })
            .collect();
        assert!(
            fatal.is_empty(),
            "model called workload-{wl} on {} cores stable, watchdog saw {fatal:?}",
            cfg.num_cores()
        );
    });
}

/// Estimated latency is monotone under the closed-loop evaluation too:
/// uniformly scaling every core's demand up cannot lower the estimate.
#[test]
fn closed_loop_estimate_is_monotone_in_demand() {
    check::cases(30, |rng| {
        let model = random_model(rng);
        let lo = range_f64(rng, 0.2, 0.8);
        let hi = range_f64(rng, 1.0, 1.5);
        let la = model
            .clone()
            .with_rate_scale(lo)
            .with_lengths(200, 4_000)
            .evaluate()
            .mean_latency;
        let lb = model
            .clone()
            .with_rate_scale(hi)
            .with_lengths(200, 4_000)
            .evaluate()
            .mean_latency;
        assert!(
            la <= lb + 1e-6,
            "estimate dropped with demand: L({lo:.2}x) = {la:.3} > L({hi:.2}x) = {lb:.3}"
        );
    });
}
