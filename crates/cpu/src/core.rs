//! The out-of-order core model (Section 2.3).
//!
//! Each core has a 128-entry instruction window and a 64-entry load/store
//! queue (Table 1). Instructions dispatch into the window in program order;
//! memory operations issue to the hierarchy immediately at dispatch, so up
//! to `lsq_size` accesses can be outstanding at once (memory-level
//! parallelism). Completion may be out of order, but commit is strictly
//! in order — a single late load at the window head blocks everything
//! behind it, which is precisely the bottleneck the paper's Scheme-1
//! targets.

use std::collections::VecDeque;

use noclat_sim::config::CpuConfig;
use noclat_sim::Cycle;

use crate::instr::{Instr, InstrStream, MemAccess, MemToken, MemoryPort};

#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    /// Cycle the instruction finishes executing; `None` while a memory
    /// access is outstanding.
    done_at: Option<Cycle>,
    /// Token of the outstanding access, if any.
    token: Option<MemToken>,
    /// Whether the entry holds an LSQ slot.
    is_mem: bool,
}

/// Commit-side statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions committed since the last [`OooCore::reset_stats`].
    pub committed: u64,
    /// Cycles elapsed since the last reset.
    pub cycles: u64,
    /// Cycles in which nothing committed because the window head was an
    /// incomplete memory operation.
    pub mem_stall_cycles: u64,
    /// Memory operations dispatched.
    pub mem_ops: u64,
    /// Memory operations that left the tile (L1 misses).
    pub offchip_ops: u64,
}

impl CoreStats {
    /// Instructions per cycle since the last reset.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// An out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    cfg: CpuConfig,
    window: VecDeque<WindowEntry>,
    lsq_used: usize,
    stats: CoreStats,
}

impl OooCore {
    /// Creates an idle core.
    #[must_use]
    pub fn new(cfg: CpuConfig) -> Self {
        OooCore {
            window: VecDeque::with_capacity(cfg.window_size),
            lsq_used: 0,
            stats: CoreStats::default(),
            cfg,
        }
    }

    /// Statistics since the last reset.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Clears commit statistics (end of warmup) without disturbing
    /// microarchitectural state.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Window occupancy.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Outstanding memory operations holding LSQ slots.
    #[must_use]
    pub fn lsq_used(&self) -> usize {
        self.lsq_used
    }

    /// Reports completion of the access identified by `token`.
    ///
    /// Unknown tokens are ignored (the access may belong to an entry already
    /// squashed by a stats reset — they never are in this simulator, but the
    /// interface stays total).
    pub fn complete(&mut self, token: MemToken, now: Cycle) {
        if let Some(e) = self.window.iter_mut().find(|e| e.token == Some(token)) {
            e.done_at = Some(now);
            e.token = None;
        }
    }

    /// Advances the core one cycle: commit (in order), then dispatch/issue.
    pub fn tick<S: InstrStream, M: MemoryPort>(&mut self, now: Cycle, stream: &mut S, mem: &mut M) {
        self.stats.cycles += 1;
        self.commit(now);
        self.dispatch(now, stream, mem);
    }

    /// The next cycle at which [`OooCore::tick`] could do anything beyond
    /// stall accounting: `Some(now)` when the core can commit or dispatch
    /// this cycle, `Some(t)` when the window head completes at a known
    /// future cycle, and `None` when the head is an outstanding memory
    /// access — the core sleeps until [`OooCore::complete`] is called.
    ///
    /// This is the core's wake-up contract with the event kernel: a cycle
    /// `t < next_wake` changes nothing but `cycles` (and `mem_stall_cycles`
    /// when the head is memory), which [`OooCore::account_idle`] replays in
    /// bulk.
    #[must_use]
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        let Some(head) = self.window.front() else {
            // Empty window: dispatch draws instructions immediately.
            return Some(now);
        };
        if self.window.len() < self.cfg.window_size && self.lsq_used < self.cfg.lsq_size {
            // Dispatch has room: it draws from the stream every cycle.
            return Some(now);
        }
        head.done_at.map(|t| t.max(now))
    }

    /// Replays `cycles` blocked cycles at once: exactly what per-cycle
    /// ticking would have recorded for a core whose wake-up lies beyond the
    /// span (commit blocked, dispatch full).
    pub fn account_idle(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
        if self.window.front().is_some_and(|h| h.is_mem) {
            self.stats.mem_stall_cycles += cycles;
        }
    }

    fn commit(&mut self, now: Cycle) {
        let mut committed = 0;
        while committed < self.cfg.commit_width {
            let Some(head) = self.window.front() else {
                break;
            };
            match head.done_at {
                Some(t) if t <= now => {
                    let e = self.window.pop_front().expect("head exists");
                    if e.is_mem {
                        self.lsq_used -= 1;
                    }
                    self.stats.committed += 1;
                    committed += 1;
                }
                _ => {
                    if committed == 0 && head.is_mem {
                        self.stats.mem_stall_cycles += 1;
                    }
                    break;
                }
            }
        }
    }

    fn dispatch<S: InstrStream, M: MemoryPort>(&mut self, now: Cycle, stream: &mut S, mem: &mut M) {
        for _ in 0..self.cfg.issue_width {
            if self.window.len() >= self.cfg.window_size {
                break;
            }
            // Peek-free streams: we must know whether the next instruction
            // needs an LSQ slot before taking it, so streams are infinite
            // and we only draw when we can place any instruction. If the
            // LSQ is full and the next instruction is memory, we put it
            // back conceptually by stopping dispatch for this cycle.
            if self.lsq_used >= self.cfg.lsq_size {
                // Conservative: stall dispatch entirely rather than
                // reordering around a possibly-memory instruction.
                break;
            }
            let instr = stream.next_instr();
            let entry = match instr {
                Instr::Compute { latency } => WindowEntry {
                    done_at: Some(now + Cycle::from(latency.max(1))),
                    token: None,
                    is_mem: false,
                },
                Instr::Load { addr } | Instr::Store { addr } => {
                    let is_write = matches!(instr, Instr::Store { .. });
                    self.stats.mem_ops += 1;
                    self.lsq_used += 1;
                    match mem.access(addr, is_write, now) {
                        MemAccess::Done { latency } => WindowEntry {
                            done_at: Some(now + latency),
                            token: None,
                            is_mem: true,
                        },
                        MemAccess::Pending { token } => {
                            self.stats.offchip_ops += 1;
                            WindowEntry {
                                done_at: None,
                                token: Some(token),
                                is_mem: true,
                            }
                        }
                    }
                }
            };
            self.window.push_back(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noclat_sim::config::SystemConfig;
    use std::collections::VecDeque;

    fn cfg() -> CpuConfig {
        SystemConfig::baseline_32().cpu
    }

    /// Repeats a fixed instruction pattern forever.
    struct PatternStream {
        pattern: Vec<Instr>,
        pos: usize,
    }

    impl PatternStream {
        fn new(pattern: Vec<Instr>) -> Self {
            PatternStream { pattern, pos: 0 }
        }
    }

    impl InstrStream for PatternStream {
        fn next_instr(&mut self) -> Instr {
            let i = self.pattern[self.pos % self.pattern.len()];
            self.pos += 1;
            i
        }
    }

    /// Memory port with fixed hit latency, or pending completions the test
    /// drives by hand.
    struct FakeMem {
        hit_latency: Cycle,
        pending_after: Option<u64>, // every Nth access goes pending
        next_token: u64,
        issued: VecDeque<(MemToken, Cycle)>,
        count: u64,
    }

    impl FakeMem {
        fn hits(latency: Cycle) -> Self {
            FakeMem {
                hit_latency: latency,
                pending_after: None,
                next_token: 0,
                issued: VecDeque::new(),
                count: 0,
            }
        }

        fn pending_every(n: u64, hit_latency: Cycle) -> Self {
            FakeMem {
                hit_latency,
                pending_after: Some(n),
                next_token: 0,
                issued: VecDeque::new(),
                count: 0,
            }
        }
    }

    impl MemoryPort for FakeMem {
        fn access(&mut self, _addr: u64, _is_write: bool, now: Cycle) -> MemAccess {
            self.count += 1;
            if let Some(n) = self.pending_after {
                if self.count.is_multiple_of(n) {
                    let token = MemToken(self.next_token);
                    self.next_token += 1;
                    self.issued.push_back((token, now));
                    return MemAccess::Pending { token };
                }
            }
            MemAccess::Done {
                latency: self.hit_latency,
            }
        }
    }

    #[test]
    fn compute_only_reaches_commit_width_ipc() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1 }]);
        let mut mem = FakeMem::hits(3);
        for t in 0..10_000 {
            core.tick(t, &mut stream, &mut mem);
        }
        let ipc = core.stats().ipc();
        assert!(
            (3.5..=4.0).contains(&ipc),
            "single-cycle compute should saturate commit width, got {ipc}"
        );
    }

    #[test]
    fn l1_hits_sustain_high_ipc() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![
            Instr::Compute { latency: 1 },
            Instr::Load { addr: 64 },
            Instr::Compute { latency: 1 },
            Instr::Compute { latency: 1 },
        ]);
        let mut mem = FakeMem::hits(3);
        for t in 0..10_000 {
            core.tick(t, &mut stream, &mut mem);
        }
        let ipc = core.stats().ipc();
        assert!(
            ipc > 3.0,
            "L1-resident workload should stay fast, got {ipc}"
        );
    }

    #[test]
    fn pending_load_at_head_blocks_commit() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Load { addr: 0 }]);
        let mut mem = FakeMem::pending_every(1, 3); // everything goes off-chip
        for t in 0..100 {
            core.tick(t, &mut stream, &mut mem);
        }
        assert_eq!(core.stats().committed, 0, "nothing can commit");
        assert!(core.stats().mem_stall_cycles > 0);
        // LSQ must cap outstanding accesses.
        assert_eq!(core.lsq_used(), cfg().lsq_size);
        // Complete everything: commits flow again.
        let tokens: Vec<MemToken> = mem.issued.iter().map(|&(t, _)| t).collect();
        for tok in tokens {
            core.complete(tok, 100);
        }
        for t in 101..104 {
            core.tick(t, &mut stream, &mut mem);
        }
        assert!(core.stats().committed > 0);
    }

    #[test]
    fn mlp_overlaps_misses() {
        // Two interleaved patterns: all-miss loads with compute between.
        // With MLP, N outstanding misses complete together; IPC must beat
        // the serial one-miss-at-a-time bound.
        let latency = 300u64;
        let period = 10u64;
        let mut core = OooCore::new(cfg());
        let mut pattern = vec![Instr::Load { addr: 0 }];
        pattern.extend(std::iter::repeat_n(
            Instr::Compute { latency: 1 },
            period as usize - 1,
        ));
        let mut stream = PatternStream::new(pattern);
        let mut mem = FakeMem::pending_every(1, 3);
        let horizon = 30_000u64;
        for t in 0..horizon {
            // Complete accesses after `latency` cycles.
            while mem.issued.front().is_some_and(|&(_, at)| at + latency <= t) {
                let (tok, _) = mem.issued.pop_front().unwrap();
                core.complete(tok, t);
            }
            core.tick(t, &mut stream, &mut mem);
        }
        let ipc = core.stats().ipc();
        // Serial bound: `period` instructions per `latency` cycles.
        let serial = period as f64 / latency as f64;
        assert!(
            ipc > 3.0 * serial,
            "expected MLP to overlap misses: ipc {ipc} vs serial {serial}"
        );
    }

    #[test]
    fn commit_width_bounds_per_cycle_commits() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1 }]);
        let mut mem = FakeMem::hits(3);
        let mut last = 0;
        for t in 0..500 {
            core.tick(t, &mut stream, &mut mem);
            let committed = core.stats().committed;
            assert!(
                committed - last <= cfg().commit_width as u64,
                "committed {} in one cycle",
                committed - last
            );
            last = committed;
        }
    }

    #[test]
    fn issue_width_bounds_dispatch_rate() {
        // With an empty window and an all-compute stream, occupancy can grow
        // by at most `issue_width` per cycle.
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1000 }]);
        let mut mem = FakeMem::hits(3);
        let mut last = 0;
        for t in 0..10 {
            core.tick(t, &mut stream, &mut mem);
            assert!(core.window_len() - last <= cfg().issue_width);
            last = core.window_len();
        }
    }

    #[test]
    fn window_size_bounds_occupancy() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1000 }]);
        let mut mem = FakeMem::hits(3);
        for t in 0..200 {
            core.tick(t, &mut stream, &mut mem);
        }
        assert_eq!(core.window_len(), cfg().window_size);
    }

    #[test]
    fn reset_stats_preserves_state() {
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1 }]);
        let mut mem = FakeMem::hits(3);
        for t in 0..100 {
            core.tick(t, &mut stream, &mut mem);
        }
        let occupancy = core.window_len();
        core.reset_stats();
        assert_eq!(core.stats().committed, 0);
        assert_eq!(core.window_len(), occupancy);
    }

    #[test]
    fn unknown_completion_token_is_ignored() {
        let mut core = OooCore::new(cfg());
        core.complete(MemToken(12345), 0); // must not panic
        assert_eq!(core.stats().committed, 0);
    }

    #[test]
    fn next_wake_reflects_dispatch_and_head_state() {
        let mut core = OooCore::new(cfg());
        // Empty window: busy immediately.
        assert_eq!(core.next_wake(5), Some(5));
        // Fill the window with long compute; once full, the wake is the
        // head's completion cycle.
        let mut stream = PatternStream::new(vec![Instr::Compute { latency: 1000 }]);
        let mut mem = FakeMem::hits(3);
        let mut t = 0;
        while core.window_len() < cfg().window_size {
            core.tick(t, &mut stream, &mut mem);
            t += 1;
        }
        assert_eq!(core.next_wake(t), Some(1000), "head dispatched at cycle 0");
        // A head blocked on memory sleeps until complete().
        let mut core = OooCore::new(cfg());
        let mut stream = PatternStream::new(vec![Instr::Load { addr: 0 }]);
        let mut mem = FakeMem::pending_every(1, 3);
        for t in 0..100 {
            core.tick(t, &mut stream, &mut mem);
        }
        assert_eq!(core.lsq_used(), cfg().lsq_size, "LSQ full");
        assert_eq!(core.next_wake(100), None);
    }

    #[test]
    fn account_idle_matches_per_cycle_ticking() {
        // Two identical cores blocked on a pending head: ticking one for N
        // cycles and bulk-accounting the other must agree bit for bit.
        let build = || {
            let mut core = OooCore::new(cfg());
            let mut stream = PatternStream::new(vec![Instr::Load { addr: 0 }]);
            let mut mem = FakeMem::pending_every(1, 3);
            for t in 0..100 {
                core.tick(t, &mut stream, &mut mem);
            }
            (core, stream, mem)
        };
        let (mut ticked, mut stream, mut mem) = build();
        let (mut bulk, _, _) = build();
        for t in 100..600 {
            assert_eq!(ticked.next_wake(t), None, "core must stay blocked");
            ticked.tick(t, &mut stream, &mut mem);
        }
        bulk.account_idle(500);
        assert_eq!(ticked.stats(), bulk.stats());
        assert_eq!(ticked.window_len(), bulk.window_len());
    }
}
