//! Instructions and the stream/memory interfaces the core model consumes.

use noclat_sim::Cycle;

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Non-memory work that completes a fixed number of cycles after issue.
    Compute {
        /// Execution latency in cycles (≥ 1).
        latency: u32,
    },
    /// A load from `addr`.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to `addr`.
    Store {
        /// Byte address.
        addr: u64,
    },
}

impl Instr {
    /// Whether this instruction accesses memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

/// Addresses an application expects to be cache-resident after a long
/// fast-forward (used to pre-warm tag arrays, standing in for the paper's
/// 1 B-cycle fast-forward phase).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidentSet {
    /// Line addresses resident in the private L1 (also resident in L2).
    pub l1: Vec<u64>,
    /// Line addresses resident in the shared L2 only.
    pub l2: Vec<u64>,
}

/// An endless supply of dynamic instructions for one core (the synthetic
/// stand-in for a SPEC CPU2006 trace).
pub trait InstrStream {
    /// Produces the next instruction.
    fn next_instr(&mut self) -> Instr;

    /// Lines that would be cache-resident after a long fast-forward.
    /// Defaults to none (cold start).
    fn resident_lines(&self) -> ResidentSet {
        ResidentSet::default()
    }
}

impl<S: InstrStream + ?Sized> InstrStream for Box<S> {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }

    fn resident_lines(&self) -> ResidentSet {
        (**self).resident_lines()
    }
}

/// Identifies an outstanding memory access issued by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemToken(pub u64);

/// Outcome of handing a memory access to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess {
    /// The access completes after a known latency (e.g. an L1 hit).
    Done {
        /// Total access latency in cycles.
        latency: Cycle,
    },
    /// The access left the tile; completion arrives asynchronously via
    /// [`crate::core::OooCore::complete`] with this token.
    Pending {
        /// Token the hierarchy will report completion with.
        token: MemToken,
    },
}

/// The memory hierarchy as seen by one core.
pub trait MemoryPort {
    /// Issues an access; called at dispatch (the core issues memory
    /// operations as soon as they enter the window, giving memory-level
    /// parallelism up to the LSQ size).
    fn access(&mut self, addr: u64, is_write: bool, now: Cycle) -> MemAccess;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_mem_predicate() {
        assert!(Instr::Load { addr: 0 }.is_mem());
        assert!(Instr::Store { addr: 0 }.is_mem());
        assert!(!Instr::Compute { latency: 1 }.is_mem());
    }
}
