//! Out-of-order core model for the MICRO 2012 end-to-end-latency
//! reproduction.
//!
//! Models the paper's Table-1 processors: a 128-entry instruction window,
//! 64-entry load/store queue, memory operations issued at dispatch (so
//! misses overlap — memory-level parallelism), and strictly in-order commit,
//! which makes a single late memory access a whole-application bottleneck
//! (the phenomenon of Figure 3 that motivates Scheme-1).
//!
//! The core is driven by an [`InstrStream`] (the synthetic application) and
//! a [`MemoryPort`] (the cache/NoC/DRAM hierarchy assembled in the `noclat`
//! crate).

pub mod core;
pub mod instr;

pub use crate::core::{CoreStats, OooCore};
pub use instr::{Instr, InstrStream, MemAccess, MemToken, MemoryPort, ResidentSet};
