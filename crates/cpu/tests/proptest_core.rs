//! Property-based tests of the out-of-order core: in-order commit, bounded
//! structures, and completion-order independence.

use noclat_cpu::{Instr, InstrStream, MemAccess, MemToken, MemoryPort, OooCore};
use noclat_sim::check::{self, range_u64};
use noclat_sim::config::SystemConfig;
use noclat_sim::rng::SimRng;
use std::collections::VecDeque;

/// A scripted stream.
struct Script {
    instrs: Vec<Instr>,
    pos: usize,
}

impl InstrStream for Script {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos % self.instrs.len()];
        self.pos += 1;
        i
    }
}

/// Memory that makes everything pending and completes in a caller-chosen
/// order after caller-chosen delays.
struct ScriptedMem {
    next: u64,
    issued: VecDeque<(MemToken, u64)>,
}

impl MemoryPort for ScriptedMem {
    fn access(&mut self, _addr: u64, _w: bool, now: u64) -> MemAccess {
        let t = MemToken(self.next);
        self.next += 1;
        self.issued.push_back((t, now));
        MemAccess::Pending { token: t }
    }
}

fn random_instr(rng: &mut SimRng) -> Instr {
    match rng.index(3) {
        0 => Instr::Compute {
            latency: range_u64(rng, 1, 4) as u32,
        },
        1 => Instr::Load {
            addr: rng.below(1 << 20) * 64,
        },
        _ => Instr::Store {
            addr: rng.below(1 << 20) * 64,
        },
    }
}

#[test]
fn structures_stay_bounded_and_commits_flow() {
    check::cases(48, |rng| {
        let pattern: Vec<Instr> = (0..range_u64(rng, 1, 40))
            .map(|_| random_instr(rng))
            .collect();
        let latency = range_u64(rng, 1, 400);
        let horizon = range_u64(rng, 2_000, 6_000);
        let cfg = SystemConfig::baseline_32().cpu;
        let mut core = OooCore::new(cfg);
        let mut stream = Script {
            instrs: pattern,
            pos: 0,
        };
        let mut mem = ScriptedMem {
            next: 0,
            issued: VecDeque::new(),
        };
        for t in 0..horizon {
            while mem.issued.front().is_some_and(|&(_, at)| at + latency <= t) {
                let (tok, _) = mem.issued.pop_front().unwrap();
                core.complete(tok, t);
            }
            core.tick(t, &mut stream, &mut mem);
            assert!(core.window_len() <= cfg.window_size);
            assert!(core.lsq_used() <= cfg.lsq_size);
        }
        // With finite completion latency the core must make progress.
        assert!(core.stats().committed > 0, "core never committed");
        // Commit accounting is consistent.
        let s = core.stats();
        assert!(s.offchip_ops <= s.mem_ops);
        assert_eq!(s.cycles, horizon);
    });
}

#[test]
fn out_of_order_completion_still_commits_in_order() {
    check::cases(48, |rng| {
        let wanted = range_u64(rng, 8, 32) as usize;
        // All-load stream; complete loads in reverse order of issue and
        // check that committed count only advances once the OLDEST is done.
        let cfg = SystemConfig::baseline_32().cpu;
        let mut core = OooCore::new(cfg);
        let mut stream = Script {
            instrs: vec![Instr::Load { addr: 64 }],
            pos: 0,
        };
        let mut mem = ScriptedMem {
            next: 0,
            issued: VecDeque::new(),
        };
        // Fill the window.
        for t in 0..40 {
            core.tick(t, &mut stream, &mut mem);
        }
        let n = wanted.min(mem.issued.len());
        if n < 4 {
            return; // not enough in-flight loads for the property to bite
        }
        // Complete tokens 1..n (all but the oldest) at t=100.
        let tokens: Vec<MemToken> = mem.issued.iter().map(|&(t, _)| t).collect();
        for &tok in tokens.iter().take(n).skip(1) {
            core.complete(tok, 100);
        }
        core.tick(100, &mut stream, &mut mem);
        core.tick(101, &mut stream, &mut mem);
        assert_eq!(
            core.stats().committed,
            0,
            "committed past an incomplete head"
        );
        // Now complete the oldest; commits must flow.
        core.complete(tokens[0], 102);
        for t in 103..130 {
            core.tick(t, &mut stream, &mut mem);
        }
        assert!(
            core.stats().committed >= n as u64,
            "head completion must unblock"
        );
    });
}
