//! Property-based tests of the out-of-order core: in-order commit, bounded
//! structures, and completion-order independence.

use noclat_cpu::{Instr, InstrStream, MemAccess, MemToken, MemoryPort, OooCore};
use noclat_sim::config::SystemConfig;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A scripted stream.
struct Script {
    instrs: Vec<Instr>,
    pos: usize,
}

impl InstrStream for Script {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos % self.instrs.len()];
        self.pos += 1;
        i
    }
}

/// Memory that makes everything pending and completes in a caller-chosen
/// order after caller-chosen delays.
struct ScriptedMem {
    next: u64,
    issued: VecDeque<(MemToken, u64)>,
}

impl MemoryPort for ScriptedMem {
    fn access(&mut self, _addr: u64, _w: bool, now: u64) -> MemAccess {
        let t = MemToken(self.next);
        self.next += 1;
        self.issued.push_back((t, now));
        MemAccess::Pending { token: t }
    }
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (1u32..4).prop_map(|latency| Instr::Compute { latency }),
        (0u64..1 << 20).prop_map(|l| Instr::Load { addr: l * 64 }),
        (0u64..1 << 20).prop_map(|l| Instr::Store { addr: l * 64 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structures_stay_bounded_and_commits_flow(
        pattern in prop::collection::vec(instr_strategy(), 1..40),
        latency in 1u64..400,
        horizon in 2_000u64..6_000,
    ) {
        let cfg = SystemConfig::baseline_32().cpu;
        let mut core = OooCore::new(cfg);
        let mut stream = Script { instrs: pattern, pos: 0 };
        let mut mem = ScriptedMem { next: 0, issued: VecDeque::new() };
        for t in 0..horizon {
            while mem.issued.front().is_some_and(|&(_, at)| at + latency <= t) {
                let (tok, _) = mem.issued.pop_front().unwrap();
                core.complete(tok, t);
            }
            core.tick(t, &mut stream, &mut mem);
            prop_assert!(core.window_len() <= cfg.window_size);
            prop_assert!(core.lsq_used() <= cfg.lsq_size);
        }
        // With finite completion latency the core must make progress.
        prop_assert!(core.stats().committed > 0, "core never committed");
        // Commit accounting is consistent.
        let s = core.stats();
        prop_assert!(s.offchip_ops <= s.mem_ops);
        prop_assert_eq!(s.cycles, horizon);
    }

    #[test]
    fn out_of_order_completion_still_commits_in_order(
        delays in prop::collection::vec(5u64..300, 8..32),
    ) {
        // All-load stream; complete loads in reverse order of issue and
        // check that committed count only advances once the OLDEST is done.
        let cfg = SystemConfig::baseline_32().cpu;
        let mut core = OooCore::new(cfg);
        let mut stream = Script { instrs: vec![Instr::Load { addr: 64 }], pos: 0 };
        let mut mem = ScriptedMem { next: 0, issued: VecDeque::new() };
        // Fill the window.
        for t in 0..40 {
            core.tick(t, &mut stream, &mut mem);
        }
        let n = delays.len().min(mem.issued.len());
        prop_assume!(n >= 4);
        // Complete tokens 1..n (all but the oldest) at t=100.
        let tokens: Vec<MemToken> = mem.issued.iter().map(|&(t, _)| t).collect();
        for &tok in tokens.iter().take(n).skip(1) {
            core.complete(tok, 100);
        }
        core.tick(100, &mut stream, &mut mem);
        core.tick(101, &mut stream, &mut mem);
        prop_assert_eq!(core.stats().committed, 0, "committed past an incomplete head");
        // Now complete the oldest; commits must flow.
        core.complete(tokens[0], 102);
        for t in 103..130 {
            core.tick(t, &mut stream, &mut mem);
        }
        prop_assert!(core.stats().committed >= n as u64, "head completion must unblock");
    }
}
