//! Shared harness plumbing for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They all honor a `quick` command-line
//! argument (or `NOCLAT_QUICK=1`) that shrinks the simulation windows for
//! smoke-testing the harness itself.

use std::collections::HashMap;

use noclat::{
    alone_ipc, run_mix, weighted_speedup_of, MixResult, RouterPipeline, RunLengths, SystemConfig,
};
use noclat_sim::stats::Histogram;
use noclat_workloads::{workload, SpecApp, Workload};

pub mod sweep;

/// Simulation windows selected from the command line (`quick` argument or
/// `NOCLAT_QUICK=1` environment variable shrink them).
#[must_use]
pub fn lengths_from_args() -> RunLengths {
    let quick = std::env::args().any(|a| a == "quick" || a == "--quick")
        || std::env::var("NOCLAT_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    if quick {
        RunLengths {
            warmup: 5_000,
            measure: 40_000,
        }
    } else {
        RunLengths::standard()
    }
}

/// Prints the standard harness header.
pub fn banner(artifact: &str, what: &str) {
    println!("==============================================================");
    println!("{artifact}");
    println!("{what}");
    println!("==============================================================");
}

/// An alone-IPC table shared across scheme variants of the same hardware
/// (alone runs are scheme-independent by construction).
#[derive(Debug, Default)]
pub struct AloneTable {
    cache: HashMap<(u16, u16, usize, RouterPipeline, SpecApp), f64>,
}

impl AloneTable {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Alone IPC of `app` on the hardware described by `cfg` (cached).
    pub fn get(&mut self, cfg: &SystemConfig, app: SpecApp, lengths: RunLengths) -> f64 {
        let key = (
            cfg.topology.width,
            cfg.topology.height,
            cfg.mem.num_controllers,
            cfg.noc.pipeline,
            app,
        );
        *self
            .cache
            .entry(key)
            .or_insert_with(|| alone_ipc(cfg, app, lengths))
    }

    /// Alone IPCs for every distinct app of a workload.
    pub fn table(
        &mut self,
        cfg: &SystemConfig,
        apps: &[SpecApp],
        lengths: RunLengths,
    ) -> HashMap<SpecApp, f64> {
        apps.iter()
            .map(|&a| (a, self.get(cfg, a, lengths)))
            .collect()
    }
}

/// Runs one workload under a configuration and returns `(result, WS)`.
pub fn run_with_ws(
    cfg: &SystemConfig,
    apps: &[SpecApp],
    alone: &HashMap<SpecApp, f64>,
    lengths: RunLengths,
) -> (MixResult, f64) {
    let r = run_mix(cfg, apps, lengths);
    let ws = weighted_speedup_of(&r, alone);
    (r, ws)
}

/// Normalized weighted speedups of scheme variants against the baseline,
/// for one workload on one hardware configuration.
#[derive(Debug, Clone, Copy)]
pub struct NormalizedWs {
    /// Baseline (no prioritization) absolute WS.
    pub base: f64,
    /// Scheme-1 WS normalized to baseline.
    pub s1: f64,
    /// Scheme-1 + Scheme-2 WS normalized to baseline.
    pub both: f64,
}

/// Runs baseline / Scheme-1 / Scheme-1+2 for a workload and normalizes.
pub fn normalized_ws(
    hw: &SystemConfig,
    w: &Workload,
    alone: &mut AloneTable,
    lengths: RunLengths,
) -> NormalizedWs {
    let apps = w.apps();
    let table = alone.table(hw, &apps, lengths);
    let (_, base) = run_with_ws(hw, &apps, &table, lengths);
    let (_, s1) = run_with_ws(&hw.clone().with_scheme1(), &apps, &table, lengths);
    let (_, both) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
    NormalizedWs {
        base,
        s1: s1 / base,
        both: both / base,
    }
}

/// Merged round-trip latency histogram across all applications of a run.
#[must_use]
pub fn merged_latency_histogram(result: &MixResult) -> Histogram {
    let mut h = Histogram::new(25, 4000);
    for c in 0..result.per_app.len() {
        h.merge(&result.system.tracker().app(c).total);
    }
    h
}

/// Core index of the first instance of `app` in a mix result.
#[must_use]
pub fn core_of(result: &MixResult, app: SpecApp) -> Option<usize> {
    result.per_app.iter().find(|a| a.app == app).map(|a| a.core)
}

/// Convenience: the paper's workload-N.
#[must_use]
pub fn w(n: usize) -> Workload {
    workload(n)
}

/// Formats a fraction as a percent delta ("+3.4%").
#[must_use]
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Minimal timing harness backing the `benches/` targets (`harness = false`
/// binaries; the offline toolchain carries no external bench framework).
///
/// Runs `f` once untimed to warm caches, then `iters` timed repetitions,
/// and prints the best and mean wall-clock time per repetition together
/// with the final result (which also keeps the work observable).
pub fn bench_loop<R: std::fmt::Debug>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    assert!(iters > 0, "bench_loop needs at least one iteration");
    let _ = f();
    let mut best = std::time::Duration::MAX;
    let mut total = std::time::Duration::ZERO;
    let mut last = None;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        let r = f();
        let dt = t0.elapsed();
        best = best.min(dt);
        total += dt;
        last = Some(r);
    }
    println!(
        "{name}: best {best:?}, mean {:?} over {iters} iters (result {last:?})",
        total / iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.034), "+3.4%");
        assert_eq!(pct(0.99), "-1.0%");
    }

    #[test]
    fn alone_table_caches() {
        // Cache key ignores schemes (alone runs are scheme-independent).
        let mut t = AloneTable::new();
        let cfg = SystemConfig::baseline_32();
        let lengths = RunLengths {
            warmup: 500,
            measure: 3_000,
        };
        let a = t.get(&cfg, SpecApp::Gamess, lengths);
        let b = t.get(&cfg.clone().with_both_schemes(), SpecApp::Gamess, lengths);
        assert_eq!(a, b);
        assert_eq!(t.cache.len(), 1);
    }
}
