//! Ablation — FR-FCFS vs FCFS memory scheduling under the combined schemes.
//!
//! FR-FCFS is the paper's (and industry's) baseline; FCFS destroys row
//! locality and shows how much the schemes depend on a competent scheduler
//! downstream.
//!
//! Two parallel phases: alone-IPC denominators (one hardware point per
//! scheduler — the schedulers genuinely differ even alone), then the
//! 2 × 2 cell grid.

use noclat::{run_mix, weighted_speedup_of, MemSchedPolicy, SystemConfig};
use noclat_bench::{banner, pct, w};
use noclat_engine::{self as sweep, AloneMap, Job, Json, Obj, SweepArgs};

const SCHEDS: [MemSchedPolicy; 2] = [MemSchedPolicy::FrFcfs, MemSchedPolicy::Fcfs];

fn hw_with_sched(seed: u64, sched: MemSchedPolicy) -> SystemConfig {
    let mut hw = SystemConfig::baseline_32();
    hw.seed = seed;
    hw.mem.scheduler = sched;
    hw
}

fn main() {
    let args = SweepArgs::parse(&format!("ablation_memsched {}", sweep::SWEEP_USAGE));
    banner(
        "Ablation: FR-FCFS vs FCFS memory scheduling (workload-8)",
        "Baseline WS and Scheme-1+2 gains per scheduler.",
    );
    let lengths = args.lengths;
    let apps = w(8).apps();

    let requests: Vec<_> = SCHEDS
        .iter()
        .map(|&s| (hw_with_sched(args.seed, s), apps.clone()))
        .collect();
    let alone = AloneMap::compute(&args, &requests);

    let mut jobs = Vec::new();
    for &sched in &SCHEDS {
        let hw = hw_with_sched(args.seed, sched);
        let table = alone.table(&hw, &apps);
        for both in [false, true] {
            let mut cfg = if both {
                hw.clone().with_both_schemes()
            } else {
                hw.clone()
            };
            args.apply_policy(&mut cfg);
            let apps = apps.clone();
            let table = table.clone();
            let label = if both { "both" } else { "base" };
            jobs.push(Job::new(format!("memsched/{sched:?}/{label}"), move || {
                let r = run_mix(&cfg, &apps, lengths);
                let ws = weighted_speedup_of(&r, &table);
                let hit_rate: f64 = (0..r.system.num_controllers())
                    .map(|m| r.system.controller_stats(m).row_hit_rate())
                    .sum::<f64>()
                    / r.system.num_controllers() as f64;
                (ws, hit_rate)
            }));
        }
    }
    let results = sweep::run_grid(&args, jobs);

    let mut rows_json = Vec::new();
    for (k, &sched) in SCHEDS.iter().enumerate() {
        let (base, hit_rate) = results[k * 2];
        let (both, _) = results[k * 2 + 1];
        println!(
            "{sched:?}: base WS {base:.3}, row-hit rate {hit_rate:.2}, Scheme-1+2 {}",
            pct(both / base)
        );
        rows_json.push(
            Obj::new()
                .field("scheduler", format!("{sched:?}"))
                .field("base_ws", base)
                .field("row_hit_rate", hit_rate)
                .field("both_over_base", both / base)
                .build(),
        );
    }

    let json = sweep::report(
        "ablation_memsched",
        &args,
        Obj::new()
            .field("workload", 8u64)
            .field("schedulers", Json::Arr(rows_json))
            .build(),
    );
    sweep::finish(&args, &json);
}
