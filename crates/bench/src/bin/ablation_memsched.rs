//! Ablation — FR-FCFS vs FCFS memory scheduling under the combined schemes.
//!
//! FR-FCFS is the paper's (and industry's) baseline; FCFS destroys row
//! locality and shows how much the schemes depend on a competent scheduler
//! downstream.

use noclat::{MemSchedPolicy, SystemConfig};
use noclat_bench::{banner, lengths_from_args, pct, run_with_ws, w, AloneTable};

fn main() {
    banner(
        "Ablation: FR-FCFS vs FCFS memory scheduling (workload-8)",
        "Baseline WS and Scheme-1+2 gains per scheduler.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    let apps = w(8).apps();
    for sched in [MemSchedPolicy::FrFcfs, MemSchedPolicy::Fcfs] {
        let mut hw = SystemConfig::baseline_32();
        hw.mem.scheduler = sched;
        let table = alone.table(&hw, &apps, lengths);
        let (rb, base) = run_with_ws(&hw, &apps, &table, lengths);
        let (_, both) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
        let hit_rate: f64 = (0..rb.system.num_controllers())
            .map(|m| rb.system.controller_stats(m).row_hit_rate())
            .sum::<f64>()
            / rb.system.num_controllers() as f64;
        println!(
            "{sched:?}: base WS {base:.3}, row-hit rate {:.2}, Scheme-1+2 {}",
            hit_rate,
            pct(both / base)
        );
    }
}
