//! Figure 17 — the combined schemes on 2-stage vs 5-stage router pipelines,
//! workloads 1-6.
//!
//! Paper shape to reproduce: gains persist with 2-stage routers but shrink
//! by 25-40% (shallower pipelines leave less network latency to save, and
//! pipeline bypassing has nothing left to skip).

use noclat::{RouterPipeline, SystemConfig};
use noclat_bench::{banner, lengths_from_args, run_with_ws, w, AloneTable};
use noclat_sim::stats::geomean;

fn main() {
    banner(
        "Figure 17: 5-stage vs 2-stage router pipelines (workloads 1-6, Scheme-1+2)",
        "Normalized WS per pipeline depth.",
    );
    let lengths = lengths_from_args();
    let mut alone = AloneTable::new();
    println!("{:>12} {:>9} {:>9}", "workload", "5-stage", "2-stage");
    let mut cols: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for i in 1..=6 {
        let apps = w(i).apps();
        let mut row = Vec::new();
        for (k, pipe) in [RouterPipeline::FiveStage, RouterPipeline::TwoStage]
            .into_iter()
            .enumerate()
        {
            let mut hw = SystemConfig::baseline_32();
            hw.noc.pipeline = pipe;
            let table = alone.table(&hw, &apps, lengths);
            let (_, base) = run_with_ws(&hw, &apps, &table, lengths);
            let (_, ws) = run_with_ws(&hw.clone().with_both_schemes(), &apps, &table, lengths);
            row.push(ws / base);
            cols[k].push(ws / base);
        }
        println!("{:>12} {:>9.3} {:>9.3}", w(i).name(), row[0], row[1]);
    }
    let g5 = geomean(&cols[0]).unwrap_or(1.0);
    let g2 = geomean(&cols[1]).unwrap_or(1.0);
    println!("{:>12} {:>9.3} {:>9.3}", "geomean", g5, g2);
    if g5 > 1.0 {
        println!(
            "\n2-stage gains are {:.0}% of the 5-stage gains (paper: 60-75%)",
            (g2 - 1.0) / (g5 - 1.0) * 100.0
        );
    }
}
